//! `XZIP`: a member-table archive format for the compressed-file extractor.
//!
//! Layout: `b"XZIP"` · `u32le member_count` · per member:
//! `u16le name_len` · name bytes (UTF-8) · `u64le stored_size` ·
//! `u64le original_size`.
//!
//! The extractor reports the member census (names, sizes, compression
//! ratio) without decompressing — exactly the metadata a listing of a real
//! zip/tar provides.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use xtract_types::XtractError;

/// One archive member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Member path within the archive.
    pub name: String,
    /// Compressed (stored) size.
    pub stored_size: u64,
    /// Uncompressed size.
    pub original_size: u64,
}

/// A parsed archive listing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Archive {
    /// Members in stored order.
    pub members: Vec<Member>,
}

impl Archive {
    /// Total stored bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.members.iter().map(|m| m.stored_size).sum()
    }

    /// Total original bytes.
    pub fn original_bytes(&self) -> u64 {
        self.members.iter().map(|m| m.original_size).sum()
    }

    /// Compression ratio (original / stored), `None` when empty.
    pub fn ratio(&self) -> Option<f64> {
        let stored = self.stored_bytes();
        (stored > 0).then(|| self.original_bytes() as f64 / stored as f64)
    }
}

fn fail(reason: impl Into<String>) -> XtractError {
    XtractError::ExtractorFailed {
        extractor: "xzip-codec".to_string(),
        path: String::new(),
        reason: reason.into(),
    }
}

/// Encodes an archive listing.
pub fn encode(archive: &Archive) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(b"XZIP");
    buf.put_u32_le(archive.members.len() as u32);
    for m in &archive.members {
        buf.put_u16_le(m.name.len() as u16);
        buf.put_slice(m.name.as_bytes());
        buf.put_u64_le(m.stored_size);
        buf.put_u64_le(m.original_size);
    }
    buf.freeze()
}

/// Parses an archive listing.
pub fn parse(bytes: &[u8]) -> Result<Archive, XtractError> {
    let mut cur = bytes;
    if cur.len() < 8 || &cur[..4] != b"XZIP" {
        return Err(fail("missing XZIP magic"));
    }
    cur.advance(4);
    let count = cur.get_u32_le() as usize;
    if count > 1_000_000 {
        return Err(fail("implausible member count"));
    }
    let mut members = Vec::with_capacity(count.min(4096));
    for i in 0..count {
        if cur.len() < 2 {
            return Err(fail(format!("truncated at member {i}")));
        }
        let name_len = cur.get_u16_le() as usize;
        if cur.len() < name_len + 16 {
            return Err(fail(format!("truncated name/sizes at member {i}")));
        }
        let name = std::str::from_utf8(&cur[..name_len])
            .map_err(|_| fail(format!("member {i} name is not UTF-8")))?
            .to_string();
        cur.advance(name_len);
        let stored_size = cur.get_u64_le();
        let original_size = cur.get_u64_le();
        members.push(Member {
            name,
            stored_size,
            original_size,
        });
    }
    if !cur.is_empty() {
        return Err(fail("trailing bytes after member table"));
    }
    Ok(Archive { members })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Archive {
        Archive {
            members: vec![
                Member {
                    name: "data/run1.csv".into(),
                    stored_size: 1200,
                    original_size: 4800,
                },
                Member {
                    name: "README".into(),
                    stored_size: 300,
                    original_size: 640,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let bytes = encode(&a);
        assert_eq!(&bytes[..4], b"XZIP");
        assert_eq!(parse(&bytes).unwrap(), a);
    }

    #[test]
    fn aggregates() {
        let a = sample();
        assert_eq!(a.stored_bytes(), 1500);
        assert_eq!(a.original_bytes(), 5440);
        let ratio = a.ratio().unwrap();
        assert!((ratio - 5440.0 / 1500.0).abs() < 1e-12);
        assert_eq!(Archive::default().ratio(), None);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(parse(b"PK..").is_err());
        assert!(parse(b"XZIP").is_err());
        let mut bytes = encode(&sample()).to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(parse(&bytes).is_err());
        bytes.extend_from_slice(&[0; 40]); // wrong length now
        assert!(parse(&bytes).is_err());
    }

    #[test]
    fn empty_archive_is_legal() {
        let empty = Archive::default();
        assert_eq!(parse(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn implausible_count_rejected_before_allocation() {
        let mut bytes = Vec::from(&b"XZIP"[..]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(parse(&bytes).is_err());
    }
}
