//! Materials-science formats for the MaterialsIO extractor set (§4.2):
//! VASP-style atomistic simulation files (INCAR / POSCAR / OUTCAR) and
//! CIF crystal structures.
//!
//! "Since many file types generally used in materials science are
//! processed in groups (e.g., VASP files generated from atomistic
//! simulations), we have written a grouping function that executes at
//! crawl-time and matches groups of files to a MaterialsIO extractor."
//!
//! These parsers cover exactly the fields the extractor reports: run
//! parameters from INCAR, composition and lattice from POSCAR, convergence
//! and final energy from OUTCAR, cell parameters from CIF.

use std::collections::BTreeMap;
use xtract_types::XtractError;

fn fail(which: &str, reason: impl Into<String>) -> XtractError {
    XtractError::ExtractorFailed {
        extractor: format!("matio-{which}"),
        path: String::new(),
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// INCAR
// ---------------------------------------------------------------------------

/// Parsed INCAR: `KEY = value` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Incar {
    /// Raw parameters.
    pub params: BTreeMap<String, String>,
}

impl Incar {
    /// Plane-wave cutoff, if present.
    pub fn encut(&self) -> Option<f64> {
        self.params.get("ENCUT").and_then(|v| v.parse().ok())
    }
}

/// Parses an INCAR file.
pub fn parse_incar(text: &str) -> Result<Incar, XtractError> {
    let mut params = BTreeMap::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(fail("incar", format!("not a KEY = value line: {line:?}")));
        };
        params.insert(k.trim().to_uppercase(), v.trim().to_string());
    }
    if params.is_empty() {
        return Err(fail("incar", "no parameters"));
    }
    Ok(Incar { params })
}

// ---------------------------------------------------------------------------
// POSCAR
// ---------------------------------------------------------------------------

/// Parsed POSCAR: comment, scaled lattice, species and counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Poscar {
    /// First comment line (often the system name).
    pub comment: String,
    /// 3×3 lattice vectors (already scaled).
    pub lattice: [[f64; 3]; 3],
    /// Species symbols.
    pub species: Vec<String>,
    /// Atom counts per species.
    pub counts: Vec<u32>,
}

impl Poscar {
    /// Total atoms.
    pub fn total_atoms(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Reduced chemical formula string, e.g. "Si8 O16".
    pub fn formula(&self) -> String {
        self.species
            .iter()
            .zip(&self.counts)
            .map(|(s, c)| format!("{s}{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Cell volume from the scalar triple product.
    pub fn volume(&self) -> f64 {
        let [a, b, c] = self.lattice;
        let cross = [
            b[1] * c[2] - b[2] * c[1],
            b[2] * c[0] - b[0] * c[2],
            b[0] * c[1] - b[1] * c[0],
        ];
        (a[0] * cross[0] + a[1] * cross[1] + a[2] * cross[2]).abs()
    }
}

/// Parses a POSCAR file.
pub fn parse_poscar(text: &str) -> Result<Poscar, XtractError> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() < 8 {
        return Err(fail("poscar", "too few lines"));
    }
    let comment = lines[0].trim().to_string();
    let scale: f64 = lines[1]
        .trim()
        .parse()
        .map_err(|_| fail("poscar", "bad scale factor"))?;
    let mut lattice = [[0.0; 3]; 3];
    for (i, row) in lattice.iter_mut().enumerate() {
        let vals: Vec<f64> = lines[2 + i]
            .split_whitespace()
            .map(|t| t.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| fail("poscar", format!("bad lattice row {i}")))?;
        if vals.len() != 3 {
            return Err(fail("poscar", format!("lattice row {i} needs 3 values")));
        }
        for (j, v) in vals.into_iter().enumerate() {
            row[j] = v * scale;
        }
    }
    let species: Vec<String> = lines[5].split_whitespace().map(str::to_string).collect();
    let counts: Vec<u32> = lines[6]
        .split_whitespace()
        .map(|t| t.parse::<u32>())
        .collect::<Result<_, _>>()
        .map_err(|_| fail("poscar", "bad species counts"))?;
    if species.is_empty() || species.len() != counts.len() {
        return Err(fail("poscar", "species/count mismatch"));
    }
    Ok(Poscar {
        comment,
        lattice,
        species,
        counts,
    })
}

// ---------------------------------------------------------------------------
// OUTCAR
// ---------------------------------------------------------------------------

/// Parsed OUTCAR summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcar {
    /// Electronic-step energies, in order.
    pub energies: Vec<f64>,
    /// Whether the run reached the required accuracy.
    pub converged: bool,
}

impl Outcar {
    /// Final free energy, if any steps were recorded.
    pub fn final_energy(&self) -> Option<f64> {
        self.energies.last().copied()
    }
}

/// Parses an OUTCAR file: lines of the form
/// `free energy TOTEN = -123.456 eV`, and the convergence marker
/// `reached required accuracy`.
pub fn parse_outcar(text: &str) -> Result<Outcar, XtractError> {
    let mut energies = Vec::new();
    let mut converged = false;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("free energy TOTEN =") {
            let v: f64 = rest
                .trim()
                .trim_end_matches("eV")
                .trim()
                .parse()
                .map_err(|_| fail("outcar", format!("bad energy line {line:?}")))?;
            energies.push(v);
        } else if line.contains("reached required accuracy") {
            converged = true;
        }
    }
    if energies.is_empty() {
        return Err(fail("outcar", "no TOTEN lines"));
    }
    Ok(Outcar {
        energies,
        converged,
    })
}

// ---------------------------------------------------------------------------
// CIF
// ---------------------------------------------------------------------------

/// Parsed CIF cell summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Cif {
    /// `data_` block name.
    pub name: String,
    /// a, b, c cell lengths (Å).
    pub cell_lengths: [f64; 3],
    /// Chemical formula if declared.
    pub formula: Option<String>,
}

/// Parses a (minimal) CIF file.
pub fn parse_cif(text: &str) -> Result<Cif, XtractError> {
    let mut name = None;
    let mut lengths = [None::<f64>; 3];
    let mut formula = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(n) = line.strip_prefix("data_") {
            name = Some(n.to_string());
        } else if let Some((key, value)) = line.split_once(char::is_whitespace) {
            let value = value.trim().trim_matches('\'').trim_matches('"');
            match key {
                "_cell_length_a" => lengths[0] = value.parse().ok(),
                "_cell_length_b" => lengths[1] = value.parse().ok(),
                "_cell_length_c" => lengths[2] = value.parse().ok(),
                "_chemical_formula_sum" => formula = Some(value.to_string()),
                _ => {}
            }
        }
    }
    let name = name.ok_or_else(|| fail("cif", "missing data_ block"))?;
    let cell_lengths = match lengths {
        [Some(a), Some(b), Some(c)] => [a, b, c],
        _ => return Err(fail("cif", "incomplete cell lengths")),
    };
    Ok(Cif {
        name,
        cell_lengths,
        formula,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const INCAR: &str = "ENCUT = 520\nISMEAR = 0 # gaussian smearing\nSIGMA = 0.05\n";
    const POSCAR: &str = "cubic Si\n1.0\n5.43 0.0 0.0\n0.0 5.43 0.0\n0.0 0.0 5.43\nSi O\n8 16\nDirect\n0.0 0.0 0.0\n";
    const OUTCAR: &str = "iteration 1\nfree energy TOTEN = -100.5 eV\niteration 2\nfree energy TOTEN = -102.25 eV\nreached required accuracy\n";
    const CIF: &str = "data_quartz\n_cell_length_a 4.913\n_cell_length_b 4.913\n_cell_length_c 5.405\n_chemical_formula_sum 'Si O2'\n";

    #[test]
    fn incar_parses_params_and_strips_comments() {
        let i = parse_incar(INCAR).unwrap();
        assert_eq!(i.encut(), Some(520.0));
        assert_eq!(i.params["ISMEAR"], "0");
        assert_eq!(i.params.len(), 3);
    }

    #[test]
    fn incar_rejects_prose() {
        assert!(parse_incar("this is not an incar\n").is_err());
        assert!(parse_incar("").is_err());
    }

    #[test]
    fn poscar_parses_lattice_and_formula() {
        let p = parse_poscar(POSCAR).unwrap();
        assert_eq!(p.comment, "cubic Si");
        assert_eq!(p.total_atoms(), 24);
        assert_eq!(p.formula(), "Si8 O16");
        assert!((p.volume() - 5.43f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn poscar_scale_multiplies_lattice() {
        let scaled = POSCAR.replacen("1.0", "2.0", 1);
        let p = parse_poscar(&scaled).unwrap();
        assert!((p.lattice[0][0] - 10.86).abs() < 1e-9);
    }

    #[test]
    fn poscar_rejects_mismatched_species() {
        let bad = POSCAR.replace("8 16", "8");
        assert!(parse_poscar(&bad).is_err());
        assert!(parse_poscar("short\n").is_err());
    }

    #[test]
    fn outcar_tracks_convergence() {
        let o = parse_outcar(OUTCAR).unwrap();
        assert_eq!(o.energies.len(), 2);
        assert_eq!(o.final_energy(), Some(-102.25));
        assert!(o.converged);
    }

    #[test]
    fn outcar_without_convergence_marker() {
        let o = parse_outcar("free energy TOTEN = -1.0 eV\n").unwrap();
        assert!(!o.converged);
        assert!(parse_outcar("nothing here").is_err());
    }

    #[test]
    fn cif_parses_cell() {
        let c = parse_cif(CIF).unwrap();
        assert_eq!(c.name, "quartz");
        assert_eq!(c.cell_lengths, [4.913, 4.913, 5.405]);
        assert_eq!(c.formula.as_deref(), Some("Si O2"));
    }

    #[test]
    fn cif_requires_complete_cell() {
        assert!(parse_cif("data_x\n_cell_length_a 1.0\n").is_err());
        assert!(parse_cif("_cell_length_a 1.0\n").is_err());
    }
}
