//! The MaterialsIO extractor set (§4.2): parses VASP-style atomistic
//! simulation groups (INCAR / POSCAR / OUTCAR), CIF crystal structures,
//! and electron-microscopy outputs. Group-aware by design: "many file
//! types generally used in materials science are processed in groups".

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use crate::formats::materials;
use serde_json::json;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

/// The MaterialsIO parser set.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaterialsIoExtractor;

fn file_role(path: &str) -> Option<&'static str> {
    let name = path.rsplit('/').next().unwrap_or(path).to_ascii_lowercase();
    let base = name.split('.').next().unwrap_or(&name);
    Some(match base {
        "incar" => "incar",
        "poscar" | "contcar" => "poscar",
        "outcar" => "outcar",
        _ if name == "vasprun.xml" => "vasprun",
        _ if name.ends_with(".cif") => "cif",
        _ if name.ends_with(".dm3") || name.ends_with(".dm4") || name.ends_with(".emd") => "em",
        _ => return None,
    })
}

impl Extractor for MaterialsIoExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::MaterialsIo
    }

    fn accepts(&self, t: FileType) -> bool {
        t.is_materials()
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        let mut fam = Metadata::new();
        let mut parsed_roles: Vec<&'static str> = Vec::new();
        for file in family
            .files
            .iter()
            .filter(|f| self.accepts(f.hint) || file_role(&f.path).is_some())
        {
            let Some(role) = file_role(&file.path) else {
                continue;
            };
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            md.insert("role", role);
            let text = std::str::from_utf8(&bytes).unwrap_or("");
            match role {
                "incar" => match materials::parse_incar(text) {
                    Ok(incar) => {
                        if let Some(encut) = incar.encut() {
                            fam.insert("encut", encut);
                        }
                        md.insert("parameters", json!(incar.params));
                    }
                    Err(e) => md.insert("error", e.to_string()),
                },
                "poscar" => match materials::parse_poscar(text) {
                    Ok(p) => {
                        fam.insert("formula", p.formula());
                        fam.insert("total_atoms", p.total_atoms());
                        fam.insert("cell_volume", p.volume());
                        md.insert("comment", p.comment);
                        md.insert("species", json!(p.species));
                    }
                    Err(e) => md.insert("error", e.to_string()),
                },
                "outcar" => match materials::parse_outcar(text) {
                    Ok(o) => {
                        fam.insert("final_energy_ev", o.final_energy());
                        fam.insert("converged", o.converged);
                        md.insert("scf_steps", o.energies.len());
                    }
                    Err(e) => md.insert("error", e.to_string()),
                },
                "vasprun" => {
                    // Structural sanity only; the OUTCAR carries energies.
                    md.insert("xml_bytes", bytes.len());
                }
                "cif" => match materials::parse_cif(text) {
                    Ok(c) => {
                        md.insert("structure", c.name);
                        md.insert("cell_lengths", json!(c.cell_lengths));
                        if let Some(f) = c.formula {
                            fam.insert("formula", f);
                        }
                    }
                    Err(e) => md.insert("error", e.to_string()),
                },
                "em" => {
                    // Electron-microscopy binaries: size-only summary (the
                    // paper's EM parsers read instrument headers we have no
                    // analogue for).
                    md.insert("em_bytes", bytes.len());
                }
                _ => unreachable!(),
            }
            if !md.contains("error") {
                parsed_roles.push(role);
            }
            out.per_file.push((file.path.clone(), md));
        }
        parsed_roles.sort_unstable();
        parsed_roles.dedup();
        fam.insert("parsed_roles", json!(parsed_roles));
        fam.insert(
            "complete_vasp_run",
            ["incar", "poscar", "outcar"]
                .iter()
                .all(|r| parsed_roles.contains(r)),
        );
        out.family_metadata = fam;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(paths: &[&str]) -> Family {
        let files: Vec<FileRecord> = paths
            .iter()
            .map(|p| FileRecord::new(*p, 0, EndpointId::new(0), xtract_types::sniff_path(p)))
            .collect();
        let g = Group::new(
            GroupId::new(0),
            files.iter().map(|f| f.path.clone()).collect(),
        );
        Family::new(FamilyId::new(0), files, vec![g], EndpointId::new(0))
    }

    fn vasp_source() -> MapSource {
        let mut src = MapSource::new();
        src.insert("/run/INCAR", b"ENCUT = 520\nISMEAR = 0\n".to_vec());
        src.insert(
            "/run/POSCAR",
            b"si bulk\n1.0\n5.4 0 0\n0 5.4 0\n0 0 5.4\nSi\n8\nDirect\n0 0 0\n".to_vec(),
        );
        src.insert(
            "/run/OUTCAR",
            b"free energy TOTEN = -43.1 eV\nfree energy TOTEN = -43.9 eV\nreached required accuracy\n".to_vec(),
        );
        src
    }

    #[test]
    fn complete_vasp_run_is_synthesized() {
        let src = vasp_source();
        let fam = family(&["/run/INCAR", "/run/POSCAR", "/run/OUTCAR"]);
        let out = MaterialsIoExtractor.extract(&fam, &src).unwrap();
        let md = &out.family_metadata;
        assert_eq!(md.get("encut").unwrap(), 520.0);
        assert_eq!(md.get("formula").unwrap(), "Si8");
        assert_eq!(md.get("final_energy_ev").unwrap(), -43.9);
        assert_eq!(md.get("converged").unwrap(), true);
        assert_eq!(md.get("complete_vasp_run").unwrap(), true);
        assert_eq!(out.per_file.len(), 3);
    }

    #[test]
    fn partial_run_is_flagged_incomplete() {
        let src = vasp_source();
        let fam = family(&["/run/INCAR", "/run/POSCAR"]);
        let out = MaterialsIoExtractor.extract(&fam, &src).unwrap();
        assert_eq!(out.family_metadata.get("complete_vasp_run").unwrap(), false);
    }

    #[test]
    fn cif_contributes_formula() {
        let mut src = MapSource::new();
        src.insert(
            "/x/quartz.cif",
            b"data_quartz\n_cell_length_a 4.9\n_cell_length_b 4.9\n_cell_length_c 5.4\n_chemical_formula_sum 'Si O2'\n".to_vec(),
        );
        let fam = family(&["/x/quartz.cif"]);
        let out = MaterialsIoExtractor.extract(&fam, &src).unwrap();
        assert_eq!(out.family_metadata.get("formula").unwrap(), "Si O2");
        assert_eq!(out.per_file[0].1.get("structure").unwrap(), "quartz");
    }

    #[test]
    fn corrupt_member_recorded_not_fatal() {
        let mut src = vasp_source();
        src.insert("/run/INCAR", b"garbage without equals\n".to_vec());
        let fam = family(&["/run/INCAR", "/run/OUTCAR"]);
        let out = MaterialsIoExtractor.extract(&fam, &src).unwrap();
        assert!(out.per_file[0].1.contains("error"));
        assert_eq!(out.family_metadata.get("final_energy_ev").unwrap(), -43.9);
        let roles = out.family_metadata.get("parsed_roles").unwrap();
        assert_eq!(roles, &json!(["outcar"]));
    }

    #[test]
    fn em_files_get_size_summary() {
        let mut src = MapSource::new();
        src.insert("/em/scan.dm3", vec![0u8; 2048]);
        let mut fam = family(&["/em/scan.dm3"]);
        fam.files[0].hint = FileType::ElectronMicroscopy;
        let out = MaterialsIoExtractor.extract(&fam, &src).unwrap();
        assert_eq!(out.per_file[0].1.get("em_bytes").unwrap(), 2048);
    }
}
