//! The image extractors (§4.2).
//!
//! * [`ImageSortExtractor`] — the stand-alone five-way classifier used in
//!   the §5.2 scaling study.
//! * [`ImagenetExtractor`] — object labels for photographs (our
//!   dominant-color/texture labeler standing in for a CNN).
//! * [`ImagesExtractor`] — the full dynamic workflow: classify first, then
//!   route photographs to the ImageNet stage and geographic maps to a
//!   location tagger ("If the figure is a map, we apply OCR ... to
//!   determine its geographic coordinates, and return location tags").
//!   OCR substitution: land-blob centroids map to compass-quadrant
//!   location tags with synthetic lat/lon — same metadata shape.

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use crate::formats::image::{self, Image, ImageClass};
use serde_json::json;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

fn decode_file(bytes: &[u8]) -> std::result::Result<Image, String> {
    Image::decode(bytes).map_err(|e| e.to_string())
}

/// The five-way classifier alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImageSortExtractor;

impl Extractor for ImageSortExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::ImageSort
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::Image
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        let mut counts = std::collections::BTreeMap::<&str, u64>::new();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            match decode_file(&bytes) {
                Ok(img) => {
                    let class = image::classify(&img);
                    *counts.entry(class.label()).or_insert(0) += 1;
                    md.insert("class", class.label());
                    md.insert("width", img.width);
                    md.insert("height", img.height);
                }
                Err(e) => {
                    md.insert("error", e);
                }
            }
            out.per_file.push((file.path.clone(), md));
        }
        let mut fam = Metadata::new();
        fam.insert("class_counts", json!(counts));
        out.family_metadata = fam;
        Ok(out)
    }
}

/// Object recognition for photographs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImagenetExtractor;

impl Extractor for ImagenetExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::ImageNet
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::Image
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            match decode_file(&bytes) {
                Ok(img) => md.insert("objects", json!(image::dominant_labels(&img))),
                Err(e) => md.insert("error", e),
            }
            out.per_file.push((file.path.clone(), md));
        }
        Ok(out)
    }
}

/// Compass-quadrant location tags from land-blob centroids — the OCR
/// substitution for geographic maps.
fn location_tags(img: &Image) -> Vec<serde_json::Value> {
    // Centroid of "land" pixels (green-dominant).
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut n = 0u64;
    for y in 0..img.height {
        for x in 0..img.width {
            let [r, g, b] = img.get(x, y);
            if g > r && g > b {
                sx += x as f64;
                sy += y as f64;
                n += 1;
            }
        }
    }
    if n == 0 {
        return vec![];
    }
    let cx = sx / n as f64 / img.width as f64;
    let cy = sy / n as f64 / img.height as f64;
    let ns = if cy < 0.5 { "north" } else { "south" };
    let ew = if cx < 0.5 { "west" } else { "east" };
    // Pixel space → a synthetic lat/lon graticule.
    let lat = 90.0 - cy * 180.0;
    let lon = cx * 360.0 - 180.0;
    vec![json!({
        "tag": format!("{ns}{ew}-region"),
        "lat": (lat * 100.0).round() / 100.0,
        "lon": (lon * 100.0).round() / 100.0,
    })]
}

/// The full image workflow: classify, then route per class.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImagesExtractor;

impl Extractor for ImagesExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Images
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::Image
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            match decode_file(&bytes) {
                Ok(img) => {
                    let class = image::classify(&img);
                    md.insert("class", class.label());
                    md.insert("width", img.width);
                    md.insert("height", img.height);
                    let f = image::features(&img);
                    md.insert(
                        "features",
                        json!({
                            "white_frac": f.white_frac,
                            "saturation": f.saturation,
                            "color_entropy": f.color_entropy,
                            "edge_density": f.edge_density,
                        }),
                    );
                    match class {
                        ImageClass::Photograph => {
                            md.insert("objects", json!(image::dominant_labels(&img)));
                        }
                        ImageClass::GeographicMap => {
                            md.insert("locations", json!(location_tags(&img)));
                        }
                        _ => {}
                    }
                }
                Err(e) => {
                    md.insert("error", e);
                }
            }
            out.per_file.push((file.path.clone(), md));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(paths: &[&str]) -> Family {
        let files: Vec<FileRecord> = paths
            .iter()
            .map(|p| FileRecord::new(*p, 0, EndpointId::new(0), FileType::Image))
            .collect();
        let g = Group::new(
            GroupId::new(0),
            files.iter().map(|f| f.path.clone()).collect(),
        );
        Family::new(FamilyId::new(0), files, vec![g], EndpointId::new(0))
    }

    fn encoded(class: ImageClass, seed: u64) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(seed);
        image::generate(class, 64, 64, &mut rng).encode().to_vec()
    }

    #[test]
    fn imagesort_classifies_and_counts() {
        let mut src = MapSource::new();
        src.insert("/a.ximg", encoded(ImageClass::Plot, 1));
        src.insert("/b.ximg", encoded(ImageClass::Plot, 2));
        src.insert("/c.ximg", encoded(ImageClass::Diagram, 3));
        let fam = family(&["/a.ximg", "/b.ximg", "/c.ximg"]);
        let out = ImageSortExtractor.extract(&fam, &src).unwrap();
        assert_eq!(out.per_file[0].1.get("class").unwrap(), "plot");
        let counts = out.family_metadata.get("class_counts").unwrap();
        assert_eq!(counts["plot"], 2);
        assert_eq!(counts["diagram"], 1);
    }

    #[test]
    fn photographs_get_objects() {
        let mut src = MapSource::new();
        src.insert("/photo.ximg", encoded(ImageClass::Photograph, 9));
        let fam = family(&["/photo.ximg"]);
        let out = ImagesExtractor.extract(&fam, &src).unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("class").unwrap(), "photograph");
        assert!(md.contains("objects"));
        assert!(!md.contains("locations"));
    }

    #[test]
    fn maps_get_location_tags() {
        let mut src = MapSource::new();
        src.insert("/map.ximg", encoded(ImageClass::GeographicMap, 4));
        let fam = family(&["/map.ximg"]);
        let out = ImagesExtractor.extract(&fam, &src).unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("class").unwrap(), "geographic-map");
        let locs = md.get("locations").unwrap().as_array().unwrap();
        assert_eq!(locs.len(), 1);
        let tag = locs[0]["tag"].as_str().unwrap();
        assert!(tag.ends_with("-region"), "tag {tag}");
        let lat = locs[0]["lat"].as_f64().unwrap();
        assert!((-90.0..=90.0).contains(&lat));
    }

    #[test]
    fn corrupt_image_is_recorded() {
        let mut src = MapSource::new();
        src.insert("/broken.ximg", b"XIMGxx".to_vec());
        let fam = family(&["/broken.ximg"]);
        for out in [
            ImagesExtractor.extract(&fam, &src).unwrap(),
            ImageSortExtractor.extract(&fam, &src).unwrap(),
            ImagenetExtractor.extract(&fam, &src).unwrap(),
        ] {
            assert!(out.per_file[0].1.contains("error"));
        }
    }

    #[test]
    fn imagenet_labels_photographs() {
        let mut src = MapSource::new();
        src.insert("/p.ximg", encoded(ImageClass::Photograph, 11));
        let fam = family(&["/p.ximg"]);
        let out = ImagenetExtractor.extract(&fam, &src).unwrap();
        let objects = out.per_file[0]
            .1
            .get("objects")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(!objects.is_empty());
    }
}
