//! The hierarchical extractor (§4.2): "hierarchical for NetCDF and HDF
//! files" — walks the container's group/dataset tree and reports its
//! structure, dimensions, and attributes.

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use crate::formats::hdf;
use serde_json::json;
use std::collections::BTreeMap;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

/// Structure census over XHDF containers.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchicalExtractor;

impl Extractor for HierarchicalExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Hierarchical
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::Hierarchical
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            let parsed = std::str::from_utf8(&bytes)
                .map_err(|e| e.to_string())
                .and_then(|t| hdf::parse(t).map_err(|e| e.to_string()));
            match parsed {
                Ok(c) => {
                    md.insert("groups", c.groups.len());
                    md.insert("datasets", c.datasets.len());
                    md.insert("max_depth", c.max_depth());
                    md.insert("payload_bytes", c.total_bytes());
                    let mut dtypes: BTreeMap<&str, u64> = BTreeMap::new();
                    for ds in c.datasets.values() {
                        *dtypes.entry(ds.dtype.name()).or_insert(0) += 1;
                    }
                    md.insert("dtypes", json!(dtypes));
                    md.insert(
                        "datasets_index",
                        json!(c
                            .datasets
                            .values()
                            .map(|d| json!({
                                "path": d.path,
                                "shape": d.shape,
                                "dtype": d.dtype.name(),
                            }))
                            .collect::<Vec<_>>()),
                    );
                    // Root/group attributes often carry the dataset's
                    // provenance (institution, conventions).
                    let root_attrs: BTreeMap<&String, &String> = c
                        .attrs
                        .iter()
                        .filter(|(path, _)| c.groups.contains(*path))
                        .flat_map(|(_, kv)| kv.iter())
                        .collect();
                    md.insert("group_attributes", json!(root_attrs));
                }
                Err(e) => {
                    md.insert("error", e);
                }
            }
            out.per_file.push((file.path.clone(), md));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(path: &str) -> Family {
        let f = FileRecord::new(path, 0, EndpointId::new(0), FileType::Hierarchical);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        Family::new(FamilyId::new(0), vec![f], vec![g], EndpointId::new(0))
    }

    const SAMPLE: &str = "XHDF\ngroup /obs\nattr /obs institution \"NOAA\"\ndataset /obs/t shape=10x2 dtype=f64\ndataset /obs/q shape=10 dtype=i32\n";

    #[test]
    fn reports_structure() {
        let mut src = MapSource::new();
        src.insert("/c.xhdf", SAMPLE.as_bytes().to_vec());
        let out = HierarchicalExtractor
            .extract(&family("/c.xhdf"), &src)
            .unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("groups").unwrap(), 2);
        assert_eq!(md.get("datasets").unwrap(), 2);
        assert_eq!(md.get("payload_bytes").unwrap(), 10 * 2 * 8 + 10 * 4);
        assert_eq!(md.get("dtypes").unwrap()["f64"], 1);
        assert_eq!(md.get("group_attributes").unwrap()["institution"], "NOAA");
    }

    #[test]
    fn corrupt_container_is_recorded() {
        let mut src = MapSource::new();
        src.insert(
            "/bad.xhdf",
            b"XHDF\ndataset /orphan/x shape=1 dtype=f32\n".to_vec(),
        );
        let out = HierarchicalExtractor
            .extract(&family("/bad.xhdf"), &src)
            .unwrap();
        assert!(out.per_file[0].1.contains("error"));
    }
}
