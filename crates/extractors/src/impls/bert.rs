//! The entity extractor (§4.2): "BERT to extract key entities from text."
//!
//! Substitution: a gazetteer + capitalization tagger. It recognizes three
//! entity classes the scientific corpora care about — locations, chemical
//! elements, and organizations — plus capitalized multi-word spans as
//! generic named entities. Same output shape as a transformer NER head
//! (typed spans), none of the weights.

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use serde_json::json;
use std::collections::BTreeSet;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

const LOCATIONS: &[&str] = &[
    "antarctica",
    "argonne",
    "arctic",
    "atlantic",
    "australia",
    "brazil",
    "california",
    "chicago",
    "china",
    "europe",
    "germany",
    "greenland",
    "hawaii",
    "india",
    "japan",
    "minnesota",
    "pacific",
    "siberia",
    "texas",
    "tibet",
    "virginia",
];

const ORGANIZATIONS: &[&str] = &[
    "anl", "cdiac", "cern", "doe", "epa", "mdf", "nasa", "ncsa", "nist", "noaa", "nsf", "ornl",
    "uchicago", "usgs",
];

const ELEMENTS: &[&str] = &[
    "hydrogen",
    "helium",
    "lithium",
    "carbon",
    "nitrogen",
    "oxygen",
    "silicon",
    "iron",
    "nickel",
    "copper",
    "gallium",
    "arsenic",
    "cadmium",
    "tellurium",
    "lead",
    "uranium",
    "titanium",
    "perovskite", // honorary member: ubiquitous in MDF
];

/// Gazetteer entity tagger.
#[derive(Debug, Clone, Default)]
pub struct BertExtractor {
    /// Maximum generic named-entity spans to keep per document.
    pub max_spans: usize,
}

impl BertExtractor {
    fn max_spans(&self) -> usize {
        if self.max_spans == 0 {
            12
        } else {
            self.max_spans
        }
    }
}

/// Capitalized multi-word spans ("Materials Data Facility") that do not
/// start a sentence.
fn capitalized_spans(text: &str, limit: usize) -> Vec<String> {
    let mut spans = BTreeSet::new();
    for line in text.lines() {
        let words: Vec<&str> = line.split_whitespace().collect();
        let mut i = 1; // skip sentence-initial word
        while i < words.len() {
            let is_cap = |w: &str| {
                w.chars().next().is_some_and(char::is_uppercase)
                    && w.chars().skip(1).any(char::is_lowercase)
            };
            if is_cap(words[i]) {
                let mut j = i;
                while j + 1 < words.len() && is_cap(words[j + 1]) {
                    j += 1;
                }
                if j > i {
                    let span: String = words[i..=j]
                        .iter()
                        .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()))
                        .collect::<Vec<_>>()
                        .join(" ");
                    spans.insert(span);
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }
        if spans.len() >= limit {
            break;
        }
    }
    spans.into_iter().take(limit).collect()
}

impl Extractor for BertExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Bert
    }

    fn accepts(&self, t: FileType) -> bool {
        matches!(t, FileType::FreeText | FileType::Presentation)
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            let Ok(text) = std::str::from_utf8(&bytes) else {
                md.insert("error", "not UTF-8");
                out.per_file.push((file.path.clone(), md));
                continue;
            };
            let lower = text.to_lowercase();
            let hit = |gazetteer: &[&str]| -> Vec<String> {
                gazetteer
                    .iter()
                    .filter(|term| {
                        lower
                            .split(|c: char| !c.is_alphanumeric())
                            .any(|w| w == **term)
                    })
                    .map(|s| s.to_string())
                    .collect()
            };
            md.insert("locations", json!(hit(LOCATIONS)));
            md.insert("organizations", json!(hit(ORGANIZATIONS)));
            md.insert("elements", json!(hit(ELEMENTS)));
            md.insert(
                "named_spans",
                json!(capitalized_spans(text, self.max_spans())),
            );
            out.per_file.push((file.path.clone(), md));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(path: &str) -> Family {
        let f = FileRecord::new(path, 0, EndpointId::new(0), FileType::FreeText);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        Family::new(FamilyId::new(0), vec![f], vec![g], EndpointId::new(0))
    }

    #[test]
    fn gazetteer_entities_are_found() {
        let text = "Emissions data from CDIAC cover Siberia and the Pacific. \
                    Samples contained carbon and uranium traces, says NOAA.";
        let mut src = MapSource::new();
        src.insert("/doc.txt", text.as_bytes().to_vec());
        let out = BertExtractor::default()
            .extract(&family("/doc.txt"), &src)
            .unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("locations").unwrap(), &json!(["pacific", "siberia"]));
        assert_eq!(md.get("organizations").unwrap(), &json!(["cdiac", "noaa"]));
        assert_eq!(md.get("elements").unwrap(), &json!(["carbon", "uranium"]));
    }

    #[test]
    fn capitalized_spans_are_tagged() {
        let text = "We deposited data in the Materials Data Facility yesterday.";
        let mut src = MapSource::new();
        src.insert("/d.txt", text.as_bytes().to_vec());
        let out = BertExtractor::default()
            .extract(&family("/d.txt"), &src)
            .unwrap();
        let spans = out.per_file[0]
            .1
            .get("named_spans")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(
            spans.iter().any(|s| s == "Materials Data Facility"),
            "{spans:?}"
        );
    }

    #[test]
    fn substring_matches_do_not_count() {
        // "carbonate" must not match the element "carbon".
        let mut src = MapSource::new();
        src.insert("/d.txt", b"carbonate minerals only".to_vec());
        let out = BertExtractor::default()
            .extract(&family("/d.txt"), &src)
            .unwrap();
        assert_eq!(out.per_file[0].1.get("elements").unwrap(), &json!([]));
    }

    #[test]
    fn span_limit_is_enforced() {
        let text = "x Alpha Beta y Gamma Delta z Epsilon Zeta w Eta Theta";
        let mut src = MapSource::new();
        src.insert("/d.txt", text.as_bytes().to_vec());
        let out = BertExtractor { max_spans: 2 }
            .extract(&family("/d.txt"), &src)
            .unwrap();
        let spans = out.per_file[0]
            .1
            .get("named_spans")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(spans.len(), 2);
    }
}
