//! The null-value extractor (§4.2): "null-value to determine null-values
//! in tabular data" — empty cells, NA/NaN markers, and sentinel codes
//! (-999 and friends are ubiquitous in climate archives like CDIAC).

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use crate::formats::table;
use serde_json::json;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

/// Null-value census over tabular data.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullValueExtractor;

impl Extractor for NullValueExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::NullValue
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::Tabular
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        let mut family_nulls = 0u64;
        let mut family_cells = 0u64;
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            let parsed = std::str::from_utf8(&bytes)
                .ok()
                .and_then(|t| table::parse(t).ok());
            let Some(t) = parsed else {
                md.insert("error", "not parseable as a table");
                out.per_file.push((file.path.clone(), md));
                continue;
            };
            let stats = table::column_stats(&t);
            let nulls: u64 = stats.iter().map(|s| s.null_count as u64).sum();
            let cells = (t.rows.len() * t.header.len()) as u64;
            family_nulls += nulls;
            family_cells += cells;
            md.insert("null_cells", nulls);
            md.insert("total_cells", cells);
            md.insert(
                "null_fraction",
                if cells > 0 {
                    nulls as f64 / cells as f64
                } else {
                    0.0
                },
            );
            md.insert(
                "columns_with_nulls",
                json!(stats
                    .iter()
                    .filter(|s| s.null_count > 0)
                    .map(|s| json!({"name": s.name, "nulls": s.null_count}))
                    .collect::<Vec<_>>()),
            );
            out.per_file.push((file.path.clone(), md));
        }
        let mut fam = Metadata::new();
        fam.insert("null_cells", family_nulls);
        fam.insert("total_cells", family_cells);
        out.family_metadata = fam;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(paths: &[(&str, FileType)]) -> Family {
        let files: Vec<FileRecord> = paths
            .iter()
            .map(|(p, t)| FileRecord::new(*p, 0, EndpointId::new(0), *t))
            .collect();
        let g = Group::new(
            GroupId::new(0),
            files.iter().map(|f| f.path.clone()).collect(),
        );
        Family::new(FamilyId::new(0), files, vec![g], EndpointId::new(0))
    }

    #[test]
    fn counts_nulls_and_sentinels() {
        let mut src = MapSource::new();
        src.insert(
            "/obs.csv",
            b"station,temp\nmlo,14.2\nbrw,\nspo,-999\n".to_vec(),
        );
        let fam = family(&[("/obs.csv", FileType::Tabular)]);
        let out = NullValueExtractor.extract(&fam, &src).unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("null_cells").unwrap(), 2);
        assert_eq!(md.get("total_cells").unwrap(), 6);
        let frac = md.get("null_fraction").unwrap().as_f64().unwrap();
        assert!((frac - 2.0 / 6.0).abs() < 1e-12);
        let cols = md.get("columns_with_nulls").unwrap().as_array().unwrap();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0]["name"], "temp");
    }

    #[test]
    fn clean_table_reports_zero() {
        let mut src = MapSource::new();
        src.insert("/clean.csv", b"a,b\n1,2\n3,4\n".to_vec());
        let fam = family(&[("/clean.csv", FileType::Tabular)]);
        let out = NullValueExtractor.extract(&fam, &src).unwrap();
        assert_eq!(out.per_file[0].1.get("null_cells").unwrap(), 0);
        assert_eq!(out.family_metadata.get("null_cells").unwrap(), 0);
    }

    #[test]
    fn unparseable_records_error() {
        let mut src = MapSource::new();
        src.insert("/junk.csv", b"free prose here\nno structure\n".to_vec());
        let fam = family(&[("/junk.csv", FileType::Tabular)]);
        let out = NullValueExtractor.extract(&fam, &src).unwrap();
        assert!(out.per_file[0].1.contains("error"));
    }
}
