//! The tabular extractor (§4.2): header, dimensions, and per-column
//! aggregates ("Aggregate column-level metadata (e.g., mean and maximum)
//! often provide useful insights").

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use crate::formats::table;
use serde_json::json;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

/// Column statistics over row/column data.
#[derive(Debug, Clone, Copy, Default)]
pub struct TabularExtractor;

impl Extractor for TabularExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Tabular
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::Tabular
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        let mut tables = 0usize;
        let mut total_rows = 0u64;
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            let text = match std::str::from_utf8(&bytes) {
                Ok(t) => t,
                Err(_) => {
                    md.insert("error", "not UTF-8 text");
                    out.per_file.push((file.path.clone(), md));
                    continue;
                }
            };
            match table::parse(text) {
                Ok(t) => {
                    tables += 1;
                    total_rows += t.rows.len() as u64;
                    md.insert("rows", t.rows.len());
                    md.insert("columns", t.header.len());
                    md.insert("has_header", t.has_header);
                    md.insert("delimiter", t.delimiter.to_string());
                    md.insert("header", json!(t.header));
                    let stats = table::column_stats(&t);
                    md.insert(
                        "column_stats",
                        json!(stats
                            .iter()
                            .map(|s| json!({
                                "name": s.name,
                                "numeric": s.numeric_count,
                                "text": s.text_count,
                                "nulls": s.null_count,
                                "mean": s.mean,
                                "min": s.min,
                                "max": s.max,
                            }))
                            .collect::<Vec<_>>()),
                    );
                }
                Err(e) => {
                    // A tabular-hinted file that fails to parse as a table
                    // is likely free text: feed the planner.
                    md.insert("error", e.to_string());
                    out.discovered.push((file.path.clone(), FileType::FreeText));
                }
            }
            out.per_file.push((file.path.clone(), md));
        }
        let mut fam = Metadata::new();
        fam.insert("tables", tables);
        fam.insert("total_rows", total_rows);
        out.family_metadata = fam;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(paths: &[(&str, FileType)]) -> Family {
        let files: Vec<FileRecord> = paths
            .iter()
            .map(|(p, t)| FileRecord::new(*p, 0, EndpointId::new(0), *t))
            .collect();
        let g = Group::new(
            GroupId::new(0),
            files.iter().map(|f| f.path.clone()).collect(),
        );
        Family::new(FamilyId::new(0), files, vec![g], EndpointId::new(0))
    }

    #[test]
    fn extracts_dimensions_and_stats() {
        let mut src = MapSource::new();
        src.insert(
            "/t.csv",
            b"year,temp\n2000,14.3\n2001,14.5\n2002,14.9\n".to_vec(),
        );
        let fam = family(&[("/t.csv", FileType::Tabular)]);
        let out = TabularExtractor.extract(&fam, &src).unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("rows").unwrap(), 3);
        assert_eq!(md.get("columns").unwrap(), 2);
        assert_eq!(md.get("has_header").unwrap(), true);
        let stats = md.get("column_stats").unwrap().as_array().unwrap();
        assert_eq!(stats[1]["name"], "temp");
        let mean = stats[1]["mean"].as_f64().unwrap();
        assert!((mean - (14.3 + 14.5 + 14.9) / 3.0).abs() < 1e-9);
        assert_eq!(out.family_metadata.get("total_rows").unwrap(), 3);
    }

    #[test]
    fn unparseable_table_discovers_free_text() {
        let mut src = MapSource::new();
        src.insert(
            "/notes.csv",
            b"this file is actually prose\nnot a table at all\n".to_vec(),
        );
        let fam = family(&[("/notes.csv", FileType::Tabular)]);
        let out = TabularExtractor.extract(&fam, &src).unwrap();
        assert!(out.per_file[0].1.contains("error"));
        assert_eq!(
            out.discovered,
            vec![("/notes.csv".to_string(), FileType::FreeText)]
        );
    }

    #[test]
    fn only_tabular_files_are_touched() {
        let mut src = MapSource::new();
        src.insert("/t.csv", b"a,b\n1,2\n".to_vec());
        let fam = family(&[
            ("/t.csv", FileType::Tabular),
            ("/x.txt", FileType::FreeText),
        ]);
        let out = TabularExtractor.extract(&fam, &src).unwrap();
        assert_eq!(out.per_file.len(), 1);
        assert_eq!(out.family_metadata.get("tables").unwrap(), 1);
    }
}
