//! The keyword extractor (§4.2): "identifies uniquely descriptive words in
//! unstructured free text documents ... It uses word embeddings to curate
//! a list of the top-n keywords in a file, and an associated weight
//! corresponding to the relative relevance of a given keyword."
//!
//! Substitution: TF × rarity scoring (see [`super::text_util`]) instead of
//! embeddings — same output shape (ranked keywords with weights), same
//! role in the pipeline.
//!
//! Dynamic planning hook (§3): while reading a "free text" file, the
//! extractor notices consistent delimiter structure and reports a
//! discovered [`FileType::Tabular`], which makes the planner append the
//! tabular and null-value extractors (§5.8.2: "some files are processed by
//! multiple extractors: for example, when a text file contains both free
//! text and tabular content").

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use crate::formats::table;
use crate::impls::text_util::{rarity_weight, tokenize};
use serde_json::json;
use std::collections::HashMap;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

/// Keyword extraction over free text.
#[derive(Debug, Clone)]
pub struct KeywordExtractor {
    /// How many keywords to keep (paper: "top-n").
    pub top_n: usize,
}

impl Default for KeywordExtractor {
    fn default() -> Self {
        Self { top_n: 10 }
    }
}

impl Extractor for KeywordExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Keyword
    }

    fn accepts(&self, t: FileType) -> bool {
        matches!(
            t,
            FileType::FreeText | FileType::Presentation | FileType::Unknown
        )
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        let mut family_counts: HashMap<String, u64> = HashMap::new();
        let mut docs = 0usize;
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            let Ok(text) = std::str::from_utf8(&bytes) else {
                md.insert("error", "not valid UTF-8 text");
                out.per_file.push((file.path.clone(), md));
                continue;
            };
            // Tabular-content detection: a "free text" file that parses as
            // a clean table gets routed onward.
            if file.hint != FileType::Tabular && table::parse(text).is_ok() {
                out.discovered.push((file.path.clone(), FileType::Tabular));
            }
            let tokens = tokenize(text);
            docs += 1;
            let mut counts: HashMap<&str, u64> = HashMap::new();
            for t in &tokens {
                *counts.entry(t.as_str()).or_insert(0) += 1;
            }
            let total = tokens.len().max(1) as f64;
            let mut scored: Vec<(&str, f64)> = counts
                .iter()
                .map(|(&w, &c)| (w, (c as f64 / total) * rarity_weight(w)))
                .filter(|(_, s)| *s > 0.0)
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
            scored.truncate(self.top_n);
            let norm: f64 = scored
                .iter()
                .map(|(_, s)| s)
                .sum::<f64>()
                .max(f64::MIN_POSITIVE);
            md.insert(
                "keywords",
                json!(scored
                    .iter()
                    .map(|(w, s)| json!({"word": w, "weight": s / norm}))
                    .collect::<Vec<_>>()),
            );
            md.insert("token_count", tokens.len());
            for (w, _) in &scored {
                *family_counts.entry((*w).to_string()).or_insert(0) += 1;
            }
            out.per_file.push((file.path.clone(), md));
        }
        let mut fam_md = Metadata::new();
        fam_md.insert("documents", docs);
        let mut shared: Vec<(&String, &u64)> =
            family_counts.iter().filter(|(_, &c)| c > 1).collect();
        shared.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        fam_md.insert(
            "shared_keywords",
            json!(shared
                .iter()
                .take(self.top_n)
                .map(|(w, _)| w)
                .collect::<Vec<_>>()),
        );
        out.family_metadata = fam_md;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(paths: &[(&str, FileType)]) -> Family {
        let files: Vec<FileRecord> = paths
            .iter()
            .map(|(p, t)| FileRecord::new(*p, 0, EndpointId::new(0), *t))
            .collect();
        let g = Group::new(
            GroupId::new(0),
            files.iter().map(|f| f.path.clone()).collect(),
        );
        Family::new(FamilyId::new(0), files, vec![g], EndpointId::new(0))
    }

    #[test]
    fn domain_terms_rank_first() {
        let text = "We study perovskite solar cells. The perovskite lattice \
                    exhibits remarkable photoluminescence. Perovskite synthesis \
                    used spin coating and the photoluminescence was measured.";
        let mut src = MapSource::new();
        src.insert("/abstract.txt", text.as_bytes().to_vec());
        let fam = family(&[("/abstract.txt", FileType::FreeText)]);
        let out = KeywordExtractor::default().extract(&fam, &src).unwrap();
        let (path, md) = &out.per_file[0];
        assert_eq!(path, "/abstract.txt");
        let kws = md.get("keywords").unwrap().as_array().unwrap();
        assert_eq!(kws[0]["word"], "perovskite");
        let w0 = kws[0]["weight"].as_f64().unwrap();
        let w_last = kws.last().unwrap()["weight"].as_f64().unwrap();
        assert!(w0 >= w_last);
        assert!((0.0..=1.0).contains(&w0));
    }

    #[test]
    fn tabular_content_is_discovered() {
        let mut src = MapSource::new();
        src.insert(
            "/data.txt",
            b"site,year,co2\nmlo,1990,354.2\nbrw,1990,352.9\n".to_vec(),
        );
        let fam = family(&[("/data.txt", FileType::FreeText)]);
        let out = KeywordExtractor::default().extract(&fam, &src).unwrap();
        assert_eq!(
            out.discovered,
            vec![("/data.txt".to_string(), FileType::Tabular)]
        );
    }

    #[test]
    fn binary_garbage_is_recorded_not_fatal() {
        let mut src = MapSource::new();
        src.insert("/weird.bin", vec![0xff, 0xfe, 0x80, 0x81]);
        src.insert("/fine.txt", b"excellent spectroscopy results".to_vec());
        let fam = family(&[
            ("/weird.bin", FileType::Unknown),
            ("/fine.txt", FileType::FreeText),
        ]);
        let out = KeywordExtractor::default().extract(&fam, &src).unwrap();
        assert_eq!(out.per_file.len(), 2);
        assert!(out.per_file[0].1.contains("error"));
        assert!(out.per_file[1].1.contains("keywords"));
    }

    #[test]
    fn non_text_files_are_skipped() {
        let mut src = MapSource::new();
        src.insert("/doc.txt", b"magnetometry data here".to_vec());
        let fam = family(&[
            ("/doc.txt", FileType::FreeText),
            ("/img.ximg", FileType::Image),
        ]);
        // The image file has no bytes in the source: if the extractor tried
        // to read it, this would fail.
        let out = KeywordExtractor::default().extract(&fam, &src).unwrap();
        assert_eq!(out.per_file.len(), 1);
    }

    #[test]
    fn missing_owned_file_aborts() {
        let src = MapSource::new();
        let fam = family(&[("/gone.txt", FileType::FreeText)]);
        assert!(KeywordExtractor::default().extract(&fam, &src).is_err());
    }

    #[test]
    fn shared_keywords_span_documents() {
        let mut src = MapSource::new();
        src.insert(
            "/a.txt",
            b"graphene conductivity measurements graphene".to_vec(),
        );
        src.insert("/b.txt", b"graphene bilayer stacking order".to_vec());
        let fam = family(&[
            ("/a.txt", FileType::FreeText),
            ("/b.txt", FileType::FreeText),
        ]);
        let out = KeywordExtractor::default().extract(&fam, &src).unwrap();
        let shared = out
            .family_metadata
            .get("shared_keywords")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(shared.iter().any(|w| w == "graphene"));
        assert_eq!(out.family_metadata.get("documents").unwrap(), 2);
    }

    #[test]
    fn top_n_is_respected() {
        let mut src = MapSource::new();
        src.insert(
            "/many.txt",
            b"alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo lima mike november".to_vec(),
        );
        let fam = family(&[("/many.txt", FileType::FreeText)]);
        let out = KeywordExtractor { top_n: 3 }.extract(&fam, &src).unwrap();
        let kws = out.per_file[0]
            .1
            .get("keywords")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(kws.len(), 3);
    }
}
