//! The semi-structured extractor (§4.2): "semi-structured for data in
//! .json and .xml formats" (plus YAML, common in MDF per Fig. 8).
//!
//! Reports structural summaries: depth, key/tag census, value-type mix —
//! enough to make a blob of JSON findable without schema knowledge.

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

/// Structural summaries of JSON/XML/YAML documents.
#[derive(Debug, Clone, Copy, Default)]
pub struct SemiStructuredExtractor;

fn json_depth(v: &Value) -> usize {
    match v {
        Value::Object(m) => 1 + m.values().map(json_depth).max().unwrap_or(0),
        Value::Array(a) => 1 + a.iter().map(json_depth).max().unwrap_or(0),
        _ => 0,
    }
}

fn json_census(
    v: &Value,
    keys: &mut BTreeMap<String, u64>,
    types: &mut BTreeMap<&'static str, u64>,
) {
    let label = match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    *types.entry(label).or_insert(0) += 1;
    match v {
        Value::Object(m) => {
            for (k, child) in m {
                *keys.entry(k.clone()).or_insert(0) += 1;
                json_census(child, keys, types);
            }
        }
        Value::Array(a) => {
            for child in a {
                json_census(child, keys, types);
            }
        }
        _ => {}
    }
}

/// A minimal XML walker: counts tags and tracks nesting depth. Not a
/// validating parser — mirrors Tika-style tolerant metadata extraction.
fn xml_summary(text: &str) -> std::result::Result<Metadata, String> {
    let mut tags: BTreeMap<String, u64> = BTreeMap::new();
    let mut depth = 0usize;
    let mut max_depth = 0usize;
    let mut pos = 0usize;
    let bytes = text.as_bytes();
    let mut saw_any = false;
    while let Some(open) = text[pos..].find('<') {
        let start = pos + open + 1;
        let Some(close) = text[start..].find('>') else {
            return Err("unterminated tag".to_string());
        };
        let tag_body = &text[start..start + close];
        pos = start + close + 1;
        if tag_body.starts_with('?') || tag_body.starts_with('!') {
            continue;
        }
        saw_any = true;
        if let Some(name) = tag_body.strip_prefix('/') {
            depth = depth.saturating_sub(1);
            let _ = name;
        } else {
            let name: String = tag_body
                .split_whitespace()
                .next()
                .unwrap_or("")
                .trim_end_matches('/')
                .to_string();
            if name.is_empty() {
                return Err("empty tag name".to_string());
            }
            *tags.entry(name).or_insert(0) += 1;
            if !tag_body.ends_with('/') {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
        }
    }
    if !saw_any {
        return Err("no XML tags found".to_string());
    }
    let _ = bytes;
    let mut md = Metadata::new();
    md.insert("format", "xml");
    md.insert("distinct_tags", tags.len());
    md.insert("total_tags", tags.values().sum::<u64>());
    md.insert("max_depth", max_depth);
    md.insert("tags", json!(tags));
    Ok(md)
}

/// Line-oriented YAML summary: top-level keys, list items, nesting by
/// indentation.
fn yaml_summary(text: &str) -> std::result::Result<Metadata, String> {
    let mut top_keys: Vec<String> = Vec::new();
    let mut list_items = 0u64;
    let mut max_indent = 0usize;
    let mut keyish_lines = 0u64;
    let mut lines = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() || line.trim_start().starts_with('#') || line.trim() == "---" {
            continue;
        }
        lines += 1;
        let indent = line.len() - line.trim_start().len();
        max_indent = max_indent.max(indent);
        let body = line.trim_start();
        if body.starts_with("- ") {
            list_items += 1;
            continue;
        }
        if let Some(colon) = body.find(':') {
            let key = &body[..colon];
            if !key.is_empty() && !key.contains(' ') {
                keyish_lines += 1;
                if indent == 0 {
                    top_keys.push(key.to_string());
                }
            }
        }
    }
    if lines == 0 || keyish_lines * 2 < lines {
        return Err("not YAML-shaped".to_string());
    }
    let mut md = Metadata::new();
    md.insert("format", "yaml");
    md.insert("top_level_keys", json!(top_keys));
    md.insert("list_items", list_items);
    md.insert("max_indent", max_indent);
    Ok(md)
}

impl Extractor for SemiStructuredExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::SemiStructured
    }

    fn accepts(&self, t: FileType) -> bool {
        matches!(t, FileType::Json | FileType::Xml | FileType::Yaml)
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            let text = match std::str::from_utf8(&bytes) {
                Ok(t) => t,
                Err(_) => {
                    md.insert("error", "not UTF-8");
                    out.per_file.push((file.path.clone(), md));
                    continue;
                }
            };
            let summary = match file.hint {
                FileType::Json => serde_json::from_str::<Value>(text)
                    .map_err(|e| e.to_string())
                    .map(|v| {
                        let mut keys = BTreeMap::new();
                        let mut types = BTreeMap::new();
                        json_census(&v, &mut keys, &mut types);
                        let mut m = Metadata::new();
                        m.insert("format", "json");
                        m.insert("max_depth", json_depth(&v));
                        m.insert("distinct_keys", keys.len());
                        m.insert("value_types", json!(types));
                        let mut top: Vec<(String, u64)> = keys.into_iter().collect();
                        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                        top.truncate(16);
                        m.insert(
                            "frequent_keys",
                            json!(top.iter().map(|(k, _)| k).collect::<Vec<_>>()),
                        );
                        m
                    }),
                FileType::Xml => xml_summary(text),
                FileType::Yaml => yaml_summary(text),
                _ => unreachable!("filtered by accepts"),
            };
            match summary {
                Ok(s) => md.merge(&s),
                Err(e) => md.insert("error", e),
            }
            out.per_file.push((file.path.clone(), md));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(path: &str, t: FileType) -> Family {
        let f = FileRecord::new(path, 0, EndpointId::new(0), t);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        Family::new(FamilyId::new(0), vec![f], vec![g], EndpointId::new(0))
    }

    #[test]
    fn json_summary() {
        let mut src = MapSource::new();
        src.insert(
            "/m.json",
            br#"{"sample": {"id": 1, "tags": ["a", "b"]}, "id": 2}"#.to_vec(),
        );
        let out = SemiStructuredExtractor
            .extract(&family("/m.json", FileType::Json), &src)
            .unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("format").unwrap(), "json");
        assert_eq!(md.get("max_depth").unwrap(), 3); // obj -> obj -> array
        assert_eq!(md.get("distinct_keys").unwrap(), 3); // sample, id, tags
        assert_eq!(md.get("value_types").unwrap()["string"], 2);
        let freq = md.get("frequent_keys").unwrap().as_array().unwrap();
        assert_eq!(freq[0], "id"); // appears twice
    }

    #[test]
    fn xml_summary_counts_tags() {
        let mut src = MapSource::new();
        src.insert(
            "/d.xml",
            b"<?xml version=\"1.0\"?><run><step n=\"1\"/><step n=\"2\"><out>3</out></step></run>"
                .to_vec(),
        );
        let out = SemiStructuredExtractor
            .extract(&family("/d.xml", FileType::Xml), &src)
            .unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("format").unwrap(), "xml");
        assert_eq!(md.get("tags").unwrap()["step"], 2);
        assert_eq!(md.get("max_depth").unwrap(), 3); // run > step > out
    }

    #[test]
    fn yaml_summary_reports_keys() {
        let mut src = MapSource::new();
        src.insert(
            "/c.yaml",
            b"---\nname: run42\nparams:\n  encut: 520\n  kpoints: 8\noutputs:\n  - energy\n  - forces\n".to_vec(),
        );
        let out = SemiStructuredExtractor
            .extract(&family("/c.yaml", FileType::Yaml), &src)
            .unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("format").unwrap(), "yaml");
        let keys = md.get("top_level_keys").unwrap().as_array().unwrap();
        assert_eq!(keys.len(), 3);
        assert_eq!(md.get("list_items").unwrap(), 2);
    }

    #[test]
    fn malformed_inputs_record_errors() {
        let mut src = MapSource::new();
        src.insert("/bad.json", b"{not json".to_vec());
        src.insert("/bad.xml", b"just text, no tags".to_vec());
        src.insert("/bad.yaml", b"prose line one\nprose line two\n".to_vec());
        for (path, t) in [
            ("/bad.json", FileType::Json),
            ("/bad.xml", FileType::Xml),
            ("/bad.yaml", FileType::Yaml),
        ] {
            let out = SemiStructuredExtractor
                .extract(&family(path, t), &src)
                .unwrap();
            assert!(out.per_file[0].1.contains("error"), "{path} should error");
        }
    }

    #[test]
    fn self_closing_and_declaration_tags() {
        let mut src = MapSource::new();
        src.insert("/s.xml", b"<!DOCTYPE x><a><b/><b/></a>".to_vec());
        let out = SemiStructuredExtractor
            .extract(&family("/s.xml", FileType::Xml), &src)
            .unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("tags").unwrap()["b"], 2);
        assert_eq!(md.get("max_depth").unwrap(), 1);
    }
}
