//! The thirteen extractor implementations (§4.2).
//!
//! Shared conventions:
//!
//! * An extractor processes the family files whose type hint (or path
//!   sniff) it [`Extractor::accepts`]; other files are skipped silently —
//!   a family routinely carries files for several extractors.
//! * **Parse** failures on owned files are recorded per-file under an
//!   `"error"` key and do not sink the family ("poisoned" files are a fact
//!   of life in uncurated repositories — CDIAC's debug logs, §2.3).
//!   **Read** failures (the data layer could not produce bytes) abort the
//!   invocation: that is an infrastructure fault the orchestrator must see.
//! * Family-level output is namespaced by extractor name when merged, so
//!   extractors compose (§5.8.2: files processed by up to five extractors).

mod bert;
mod ccode;
mod compressed;
mod hierarchical;
mod images;
mod keyword;
mod materialsio;
mod nullvalue;
mod python;
mod semistructured;
mod tabular;
pub(crate) mod text_util;

pub use bert::BertExtractor;
pub use ccode::CCodeExtractor;
pub use compressed::CompressedExtractor;
pub use hierarchical::HierarchicalExtractor;
pub use images::{ImageSortExtractor, ImagenetExtractor, ImagesExtractor};
pub use keyword::KeywordExtractor;
pub use materialsio::MaterialsIoExtractor;
pub use nullvalue::NullValueExtractor;
pub use python::PythonCodeExtractor;
pub use semistructured::SemiStructuredExtractor;
pub use tabular::TabularExtractor;

use crate::extractor::Extractor;
use std::collections::HashMap;
use std::sync::Arc;
use xtract_types::ExtractorKind;

/// Builds the full extractor library, keyed by kind.
pub fn library() -> HashMap<ExtractorKind, Arc<dyn Extractor>> {
    let all: Vec<Arc<dyn Extractor>> = vec![
        Arc::new(KeywordExtractor::default()),
        Arc::new(TabularExtractor),
        Arc::new(NullValueExtractor),
        Arc::new(ImagesExtractor),
        Arc::new(ImageSortExtractor),
        Arc::new(ImagenetExtractor),
        Arc::new(HierarchicalExtractor),
        Arc::new(SemiStructuredExtractor),
        Arc::new(PythonCodeExtractor),
        Arc::new(CCodeExtractor),
        Arc::new(BertExtractor::default()),
        Arc::new(MaterialsIoExtractor),
        Arc::new(CompressedExtractor),
    ];
    all.into_iter().map(|e| (e.kind(), e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_every_kind() {
        let lib = library();
        for kind in ExtractorKind::ALL {
            assert!(lib.contains_key(&kind), "missing extractor for {kind}");
            assert_eq!(lib[&kind].kind(), kind);
        }
        assert_eq!(lib.len(), ExtractorKind::ALL.len());
    }
}
