//! The C source extractor (§4.2): includes, function definitions, and
//! comment volume.

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use serde_json::json;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

/// Function/include/comment census over C sources.
#[derive(Debug, Clone, Copy, Default)]
pub struct CCodeExtractor;

/// Heuristic: a top-level function definition line looks like
/// `type name(args) {` or `type name(args)` followed by `{`.
fn function_name(line: &str) -> Option<String> {
    let line = line.trim();
    if line.starts_with('#')
        || line.starts_with("//")
        || line.starts_with('*')
        || line.starts_with('{')
    {
        return None;
    }
    let open = line.find('(')?;
    let before = line[..open].trim_end();
    let name = before
        .rsplit(|c: char| c.is_whitespace() || c == '*')
        .next()?;
    if name.is_empty() || !name.chars().next()?.is_ascii_alphabetic() && !name.starts_with('_') {
        return None;
    }
    // Must look like a definition: `{` later on the line or a bare `)` end
    // (K&R style picks up the `{` next line; we only accept same-line
    // braces to avoid counting prototypes).
    let after = &line[open..];
    if after.contains(';') {
        return None; // prototype or call statement
    }
    if !line.ends_with('{') && !after.ends_with(')') {
        return None;
    }
    // Needs a return type before the name.
    if before.len() == name.len() {
        return None;
    }
    Some(name.to_string())
}

impl Extractor for CCodeExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::CCode
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::CSource
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            let Ok(text) = std::str::from_utf8(&bytes) else {
                md.insert("error", "not UTF-8");
                out.per_file.push((file.path.clone(), md));
                continue;
            };
            let mut includes = Vec::new();
            let mut functions = Vec::new();
            let mut comment_lines = 0u64;
            let mut code_lines = 0u64;
            let mut in_block_comment = false;
            for line in text.lines() {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if in_block_comment {
                    comment_lines += 1;
                    if trimmed.contains("*/") {
                        in_block_comment = false;
                    }
                    continue;
                }
                if trimmed.starts_with("//") {
                    comment_lines += 1;
                    continue;
                }
                if trimmed.starts_with("/*") {
                    comment_lines += 1;
                    if !trimmed.contains("*/") {
                        in_block_comment = true;
                    }
                    continue;
                }
                code_lines += 1;
                if let Some(inc) = trimmed.strip_prefix("#include") {
                    includes.push(
                        inc.trim()
                            .trim_matches(|c| c == '<' || c == '>' || c == '"')
                            .to_string(),
                    );
                } else if let Some(name) = function_name(line) {
                    functions.push(name);
                }
            }
            md.insert("includes", json!(includes));
            md.insert("functions", json!(functions));
            md.insert("comment_lines", comment_lines);
            md.insert("code_lines", code_lines);
            out.per_file.push((file.path.clone(), md));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(path: &str) -> Family {
        let f = FileRecord::new(path, 0, EndpointId::new(0), FileType::CSource);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        Family::new(FamilyId::new(0), vec![f], vec![g], EndpointId::new(0))
    }

    const SRC: &str = r#"
#include <stdio.h>
#include "solver.h"

/* Tridiagonal solver
   for the heat equation. */
static double step(double dt) {
    return dt * 0.5; // halve
}

int main(int argc, char **argv) {
    double x = step(0.1);
    printf("%f\n", x);
    return 0;
}
"#;

    #[test]
    fn census_is_correct() {
        let mut src = MapSource::new();
        src.insert("/heat.c", SRC.as_bytes().to_vec());
        let out = CCodeExtractor.extract(&family("/heat.c"), &src).unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("includes").unwrap(), &json!(["stdio.h", "solver.h"]));
        assert_eq!(md.get("functions").unwrap(), &json!(["step", "main"]));
        assert_eq!(md.get("comment_lines").unwrap(), 2);
    }

    #[test]
    fn prototypes_and_calls_are_not_functions() {
        let text = "int f(void);\nint main(void) {\n    f();\n    return 0;\n}\n";
        let mut src = MapSource::new();
        src.insert("/p.c", text.as_bytes().to_vec());
        let out = CCodeExtractor.extract(&family("/p.c"), &src).unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("functions").unwrap(), &json!(["main"]));
    }
}
