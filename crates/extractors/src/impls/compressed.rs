//! The compressed-archive extractor: member census without extraction —
//! names, sizes, compression ratio, and a type census of member
//! extensions (useful for planning whether unpacking would pay off).

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use crate::formats::archive;
use serde_json::json;
use std::collections::BTreeMap;
use xtract_types::{sniff_path, ExtractorKind, Family, FileType, Metadata, Result};

/// Archive listing extractor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressedExtractor;

impl Extractor for CompressedExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::Compressed
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::Compressed
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            match archive::parse(&bytes) {
                Ok(a) => {
                    md.insert("members", a.members.len());
                    md.insert("stored_bytes", a.stored_bytes());
                    md.insert("original_bytes", a.original_bytes());
                    if let Some(r) = a.ratio() {
                        md.insert("compression_ratio", r);
                    }
                    let mut types: BTreeMap<&'static str, u64> = BTreeMap::new();
                    for m in &a.members {
                        *types.entry(sniff_path(&m.name).label()).or_insert(0) += 1;
                    }
                    md.insert("member_types", json!(types));
                    let mut by_size: Vec<&archive::Member> = a.members.iter().collect();
                    by_size.sort_by_key(|m| std::cmp::Reverse(m.original_size));
                    let largest: Vec<_> = by_size
                        .into_iter()
                        .take(5)
                        .map(|m| json!({"name": m.name, "bytes": m.original_size}))
                        .collect();
                    md.insert("largest_members", json!(largest));
                }
                Err(e) => {
                    md.insert("error", e.to_string());
                }
            }
            out.per_file.push((file.path.clone(), md));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use crate::formats::archive::{Archive, Member};
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(path: &str) -> Family {
        let f = FileRecord::new(path, 0, EndpointId::new(0), FileType::Compressed);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        Family::new(FamilyId::new(0), vec![f], vec![g], EndpointId::new(0))
    }

    #[test]
    fn member_census() {
        let a = Archive {
            members: vec![
                Member {
                    name: "d/x.csv".into(),
                    stored_size: 10,
                    original_size: 100,
                },
                Member {
                    name: "d/y.csv".into(),
                    stored_size: 20,
                    original_size: 60,
                },
                Member {
                    name: "readme.txt".into(),
                    stored_size: 5,
                    original_size: 8,
                },
            ],
        };
        let mut src = MapSource::new();
        src.insert("/pack.xzip", archive::encode(&a).to_vec());
        let out = CompressedExtractor
            .extract(&family("/pack.xzip"), &src)
            .unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("members").unwrap(), 3);
        assert_eq!(md.get("member_types").unwrap()["csv"], 2);
        assert_eq!(md.get("member_types").unwrap()["text"], 1);
        let largest = md.get("largest_members").unwrap().as_array().unwrap();
        assert_eq!(largest[0]["name"], "d/x.csv");
        let ratio = md.get("compression_ratio").unwrap().as_f64().unwrap();
        assert!((ratio - 168.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn corrupt_archive_is_recorded() {
        let mut src = MapSource::new();
        src.insert("/bad.xzip", b"XZIPxxxx".to_vec());
        let out = CompressedExtractor
            .extract(&family("/bad.xzip"), &src)
            .unwrap();
        assert!(out.per_file[0].1.contains("error"));
    }
}
