//! The Python source extractor (§4.2): "Python and C for isolating
//! comment and function names from programs."

use crate::extractor::{ExtractOutput, Extractor, FileSource};
use serde_json::json;
use xtract_types::{ExtractorKind, Family, FileType, Metadata, Result};

/// Function/class/import/comment census over Python sources.
#[derive(Debug, Clone, Copy, Default)]
pub struct PythonCodeExtractor;

fn ident_after<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.trim_start().strip_prefix(keyword)?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

impl Extractor for PythonCodeExtractor {
    fn kind(&self) -> ExtractorKind {
        ExtractorKind::PythonCode
    }

    fn accepts(&self, t: FileType) -> bool {
        t == FileType::PythonSource
    }

    fn extract(&self, family: &Family, source: &dyn FileSource) -> Result<ExtractOutput> {
        let mut out = ExtractOutput::default();
        for file in family.files.iter().filter(|f| self.accepts(f.hint)) {
            let bytes = source.read(file)?;
            let mut md = Metadata::new();
            let Ok(text) = std::str::from_utf8(&bytes) else {
                md.insert("error", "not UTF-8");
                out.per_file.push((file.path.clone(), md));
                continue;
            };
            let mut functions = Vec::new();
            let mut classes = Vec::new();
            let mut imports = Vec::new();
            let mut comment_lines = 0u64;
            let mut code_lines = 0u64;
            let mut in_docstring = false;
            let mut docstrings = 0u64;
            for line in text.lines() {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                // Triple-quote tracking (coarse: one per line boundary).
                let quotes = trimmed.matches("\"\"\"").count() + trimmed.matches("'''").count();
                if quotes > 0 {
                    if !in_docstring {
                        docstrings += 1;
                    }
                    if quotes % 2 == 1 {
                        in_docstring = !in_docstring;
                    }
                    comment_lines += 1;
                    continue;
                }
                if in_docstring {
                    comment_lines += 1;
                    continue;
                }
                if trimmed.starts_with('#') {
                    comment_lines += 1;
                    continue;
                }
                code_lines += 1;
                if let Some(name) = ident_after(line, "def ") {
                    functions.push(name.to_string());
                } else if let Some(name) = ident_after(line, "class ") {
                    classes.push(name.to_string());
                } else if let Some(name) = ident_after(line, "import ") {
                    imports.push(name.to_string());
                } else if let Some(name) = ident_after(line, "from ") {
                    imports.push(name.to_string());
                }
            }
            md.insert("functions", json!(functions));
            md.insert("classes", json!(classes));
            md.insert("imports", json!(imports));
            md.insert("comment_lines", comment_lines);
            md.insert("code_lines", code_lines);
            md.insert("docstrings", docstrings);
            out.per_file.push((file.path.clone(), md));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::MapSource;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(path: &str) -> Family {
        let f = FileRecord::new(path, 0, EndpointId::new(0), FileType::PythonSource);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        Family::new(FamilyId::new(0), vec![f], vec![g], EndpointId::new(0))
    }

    const SRC: &str = r#"
import numpy
from scipy import optimize

# fit the decay curve
def fit_decay(xs, ys):
    """Least-squares fit."""
    return optimize.curve_fit(model, xs, ys)

class DecayModel:
    def rate(self):
        return self.k
"#;

    #[test]
    fn census_is_correct() {
        let mut src = MapSource::new();
        src.insert("/fit.py", SRC.as_bytes().to_vec());
        let out = PythonCodeExtractor
            .extract(&family("/fit.py"), &src)
            .unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("functions").unwrap(), &json!(["fit_decay", "rate"]));
        assert_eq!(md.get("classes").unwrap(), &json!(["DecayModel"]));
        assert_eq!(md.get("imports").unwrap(), &json!(["numpy", "scipy"]));
        assert_eq!(md.get("comment_lines").unwrap(), 2); // '#' + docstring
        assert_eq!(md.get("docstrings").unwrap(), 1);
    }

    #[test]
    fn empty_file_yields_empty_census() {
        let mut src = MapSource::new();
        src.insert("/e.py", Vec::new());
        let out = PythonCodeExtractor.extract(&family("/e.py"), &src).unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("functions").unwrap(), &json!([]));
        assert_eq!(md.get("code_lines").unwrap(), 0);
    }

    #[test]
    fn multiline_docstrings_count_as_comments() {
        let text = "def f():\n    \"\"\"\n    long docstring\n    \"\"\"\n    return 1\n";
        let mut src = MapSource::new();
        src.insert("/d.py", text.as_bytes().to_vec());
        let out = PythonCodeExtractor.extract(&family("/d.py"), &src).unwrap();
        let md = &out.per_file[0].1;
        assert_eq!(md.get("comment_lines").unwrap(), 3);
        assert_eq!(md.get("docstrings").unwrap(), 1);
    }
}
