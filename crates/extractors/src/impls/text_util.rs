//! Shared text machinery: tokenization, stopwords, and the background
//! frequency table the keyword scorer uses as its IDF stand-in.

/// English stopwords (compact but covers the high-frequency head).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "but", "if", "then", "else", "of", "in", "on", "at", "to",
    "from", "by", "with", "without", "for", "as", "is", "are", "was", "were", "be", "been",
    "being", "it", "its", "this", "that", "these", "those", "we", "our", "you", "your", "they",
    "their", "he", "she", "his", "her", "i", "me", "my", "not", "no", "nor", "so", "such", "than",
    "too", "very", "can", "could", "may", "might", "must", "shall", "should", "will", "would",
    "do", "does", "did", "done", "have", "has", "had", "which", "what", "who", "whom", "when",
    "where", "why", "how", "all", "any", "both", "each", "few", "more", "most", "other", "some",
    "into", "through", "during", "before", "after", "above", "below", "up", "down", "out", "off",
    "over", "under", "again", "further", "also", "there", "here", "between", "because", "while",
    "about", "against", "et", "al", "using", "used", "use", "one", "two", "however",
];

/// Common academic/scientific filler that carries little descriptive
/// power: down-weighted rather than dropped.
pub const COMMON_ACADEMIC: &[&str] = &[
    "data",
    "results",
    "method",
    "methods",
    "figure",
    "table",
    "section",
    "paper",
    "study",
    "analysis",
    "model",
    "value",
    "values",
    "based",
    "show",
    "shown",
    "present",
    "work",
    "approach",
    "system",
    "systems",
    "number",
    "different",
    "large",
    "given",
    "new",
    "first",
    "second",
    "time",
    "file",
    "files",
    "set",
];

/// True when the word is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok() || STOPWORDS.contains(&word)
}

/// Lowercased alphabetic tokens of length ≥ 3.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphabetic() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            if cur.len() >= 3 {
                tokens.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if cur.len() >= 3 {
        tokens.push(cur);
    }
    tokens
}

/// A crude "inverse document frequency": rarer-looking words score higher.
/// Real Xtract uses word embeddings (§4.2); this preserves the observable
/// behaviour (distinctive domain words out-rank filler).
pub fn rarity_weight(word: &str) -> f64 {
    if is_stopword(word) {
        return 0.0;
    }
    if COMMON_ACADEMIC.contains(&word) {
        return 0.3;
    }
    // Longer and rarer-lettered words are likelier to be domain terms.
    let len_factor = (word.len() as f64 / 6.0).min(2.0);
    let rare_letters = word
        .chars()
        .filter(|c| matches!(c, 'q' | 'x' | 'z' | 'j' | 'k' | 'v' | 'w' | 'y'))
        .count() as f64;
    1.0 + 0.5 * len_factor + 0.15 * rare_letters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_filters_short() {
        assert_eq!(
            tokenize("The CO2 Flux, at 3 sites!"),
            vec!["the", "flux", "sites"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("a b c"), Vec::<String>::new());
    }

    #[test]
    fn stopwords_score_zero() {
        assert_eq!(rarity_weight("the"), 0.0);
        assert_eq!(rarity_weight("because"), 0.0);
        assert!(rarity_weight("spectroscopy") > rarity_weight("data"));
    }

    #[test]
    fn domain_terms_outrank_filler() {
        assert!(rarity_weight("perovskite") > rarity_weight("results"));
        assert!(rarity_weight("xanthophyll") > rarity_weight("set"));
    }

    #[test]
    fn unicode_tokens_survive() {
        let toks = tokenize("métadonnées über alles");
        assert!(toks.contains(&"métadonnées".to_string()));
    }
}
