//! Property tests over the synthetic format codecs: every encoder/parser
//! pair round-trips, and parsers never panic on arbitrary bytes (they are
//! the attack surface of an extractor that runs on uncurated data, §2.3).

use proptest::prelude::*;
use xtract_extractors::formats::{archive, hdf, image, table};

proptest! {
    /// XIMG round-trips for any dimensions and pixel content.
    #[test]
    fn ximg_roundtrip(w in 1u32..48, h in 1u32..48, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut img = image::Image::filled(w, h, [0, 0, 0]);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, [rng.gen(), rng.gen(), rng.gen()]);
            }
        }
        let decoded = image::Image::decode(&img.encode()).unwrap();
        prop_assert_eq!(decoded, img);
    }

    /// The image decoder never panics on arbitrary bytes.
    #[test]
    fn ximg_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = image::Image::decode(&bytes);
    }

    /// XZIP round-trips arbitrary member tables.
    #[test]
    fn xzip_roundtrip(members in proptest::collection::vec(
        ("[a-z0-9/._-]{1,40}", any::<u32>(), any::<u32>()), 0..20
    )) {
        let archive_in = archive::Archive {
            members: members
                .into_iter()
                .map(|(name, stored, original)| archive::Member {
                    name,
                    stored_size: stored as u64,
                    original_size: original as u64,
                })
                .collect(),
        };
        let parsed = archive::parse(&archive::encode(&archive_in)).unwrap();
        prop_assert_eq!(parsed, archive_in);
    }

    /// The archive parser never panics on arbitrary bytes.
    #[test]
    fn xzip_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = archive::parse(&bytes);
    }

    /// XHDF containers round-trip through encode/parse.
    #[test]
    fn xhdf_roundtrip(
        groups in proptest::collection::vec("[a-z]{1,8}", 0..5),
        datasets in proptest::collection::vec(("[a-z]{1,8}", 1u64..1000, 0usize..5), 0..5),
    ) {
        let mut c = hdf::Container::default();
        c.groups.insert("/".to_string());
        for g in &groups {
            c.groups.insert(format!("/{g}"));
        }
        let dtypes = [hdf::Dtype::F32, hdf::Dtype::F64, hdf::Dtype::I32, hdf::Dtype::I64, hdf::Dtype::Str];
        for (i, (name, dim, dt)) in datasets.iter().enumerate() {
            // Attach each dataset to the root so parents always exist.
            let path = format!("/{name}{i}");
            c.datasets.insert(path.clone(), hdf::Dataset {
                path,
                shape: vec![*dim],
                dtype: dtypes[dt % dtypes.len()],
            });
        }
        let parsed = hdf::parse(&hdf::encode(&c)).unwrap();
        prop_assert_eq!(parsed, c);
    }

    /// The XHDF parser never panics on arbitrary text.
    #[test]
    fn xhdf_parse_never_panics(text in "\\PC{0,300}") {
        let _ = hdf::parse(&text);
    }

    /// The CSV parser never panics, and when it succeeds, every row has
    /// the header's width.
    #[test]
    fn table_parse_well_formed(text in "\\PC{0,400}") {
        if let Ok(t) = table::parse(&text) {
            for row in &t.rows {
                prop_assert_eq!(row.len(), t.header.len());
            }
            let stats = table::column_stats(&t);
            prop_assert_eq!(stats.len(), t.header.len());
            // Cell accounting: numeric + null + text = cells per column.
            for s in &stats {
                prop_assert_eq!(s.numeric_count + s.null_count + s.text_count, t.rows.len());
            }
        }
    }

    /// Generated tables always parse back with the same dimensions.
    #[test]
    fn generated_csv_always_parses(rows in 1usize..60, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let text = xtract_workloads::materialize::csv(&mut rng, rows);
        let t = table::parse(&text).unwrap();
        prop_assert!(t.has_header);
        prop_assert_eq!(t.rows.len(), rows);
        prop_assert_eq!(t.header.len(), 4);
    }
}
