//! The live Xtract service: the end-to-end orchestrator of §3/§4.1,
//! running against real threads, real bytes, and real extractors.
//!
//! Pipeline per job (§3's numbered flow):
//!
//! 1. validate the job and the caller's scopes (Globus-Auth-style);
//! 2. **crawl** every root with the parallel crawler, grouping at crawl
//!    time;
//! 3. pack groups into **min-transfers families** (§4.3.1);
//! 4. **place** each family (source-local if it has compute, otherwise
//!    the primary compute endpoint; the offloader may redirect, §4.3.3);
//! 5. **prefetch** families whose bytes are not at their execution site
//!    (batch transfer + path rewrite, §4.1 "The prefetcher") on a bounded
//!    pool of `staging_workers` that overlaps prefetch with the
//!    extraction waves (§5.6, Fig. 8): already-local families dispatch
//!    while remote ones are still in flight, and transient link faults
//!    retry under the job's [`RetryPolicy`] with deterministic
//!    exponential backoff;
//! 6. run the **extraction waves**: each wave batches every family's next
//!    pending extractor two-level (§4.3.2), submits through the FaaS
//!    fabric, polls, merges results, extends plans with discoveries, and
//!    resubmits lost tasks (heartbeat semantics, §5.8.1) — with the
//!    checkpoint store skipping work that already flushed. A
//!    [`HealthTracker`] watches every endpoint: enough consecutive
//!    failures open its circuit breaker, families parked on a dark
//!    endpoint reroute to a healthy one (bytes re-staged from the
//!    origin), and a [`RetryLedger`] bounds each family's total attempts;
//! 7. **validate** finished records and ship them to the destination
//!    endpoint's `/metadata/` prefix (§3 "Validation").
//!
//! Failure semantics: the orchestrator never panics on a faulted
//! substrate. Every family a job ingests terminates in exactly one of
//! the report's `records` (success) or `failures` (a typed
//! [`DeadLetter`]) — the chaos tests assert this partition at every
//! injected fault rate.

use crate::adaptive::{AdaptiveTuner, BatchLimits, BatchTuner, TuneDecision, WaveEvidence};
use crate::batcher::{Batcher, XtractBatch};
use crate::checkpoint::CheckpointStore;
use crate::families::build_families;
use crate::offload::{Offloader, Placement};
use crate::payload::{decode_results, encode_batch, make_function_body};
use crate::planner::ExtractionPlan;
use crate::recovery::{spec_fingerprint, MigratedStep, RecoveryLog, RecoveryRecord};
use crate::resilience::{BreakerState, HealthTracker, RetryLedger};
use crate::shard::{Migrant, ShardLink};
use crate::staging::{stage_salt_base, StageOutcome, StageRequest, StagedFamily};
use crate::tenancy::TenantCtx;
use crate::validator::{encode_record, validate};
use bytes::Bytes;
use crossbeam_channel::unbounded;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtract_crawler::{Crawler, CrawlerConfig};
use xtract_datafabric::{AuthService, DataFabric, Scope, Token, TransferRequest, TransferService};
use xtract_extractors::{library, Extractor};
use xtract_faas::{EndpointConfig, FaasService, FunctionRegistry, TaskSpec, TaskStatus};
use xtract_index::SearchIndex;
use xtract_obs::{Event, EventJournal, Histogram, Obs, Phase, PhaseTimings, SpanUnion};
use xtract_sim::RngStreams;
use xtract_types::id::IdAllocator;
use xtract_types::{
    ContainerId, CrashPoint, DeadLetter, EndpointId, EndpointSpec, ExtractorKind, FailureEvent,
    FailureReason, Family, FamilyId, FaultPlan, FileRecord, FunctionId, HedgePolicy, JobSpec,
    Metadata, MetadataRecord, OrchestratorCrash, QuotaResource, Result, RetryPolicy, TaskId,
    XtractError,
};

/// Outcome of one job. Serde: a cross-process shard worker returns its
/// report to the coordinator over the wire, and the CLI's coordinator
/// entrypoint persists the merged report as JSON.
#[derive(Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct JobReport {
    /// Files discovered by the crawl.
    pub crawled_files: u64,
    /// Groups emitted by grouping functions.
    pub groups: u64,
    /// Families after min-transfers.
    pub families: u64,
    /// Validated metadata records, by family.
    pub records: Vec<MetadataRecord>,
    /// Terminal failures: one dead letter per abandoned family.
    pub failures: Vec<DeadLetter>,
    /// Extractor invocations by name (Table 3's "Total Invocations").
    pub invocations: HashMap<String, u64>,
    /// Bytes the prefetcher moved.
    pub bytes_prefetched: u64,
    /// Redundant transfers min-transfers could not avoid.
    pub redundant_files: u64,
    /// Extraction waves executed.
    pub waves: u32,
    /// Family-steps that were lost (expiry, crash, blackout) at least once
    /// and resubmitted.
    pub resubmitted: u64,
    /// Families moved to another endpoint after their home's circuit
    /// breaker opened.
    pub rerouted: u64,
    /// Wall-clock seconds per pipeline phase (crawl → plan → stage →
    /// dispatch → extract → index).
    pub phases: PhaseTimings,
    /// True when this report came from replaying a recovery log with
    /// prior progress (a [`XtractService::resume_job`] that found work).
    pub resumed: bool,
    /// Valid records replayed from the recovery log at open (0 for jobs
    /// run without a log).
    pub replayed_records: u64,
    /// Torn trailing records truncated from the recovery log at open.
    pub truncated_records: u64,
    /// Job-relative `[start, end]` intervals (seconds) behind the phase
    /// buckets. Sharded runs merge their shards' spans through a
    /// [`SpanUnion`] per phase, so `phases` stays wall-clock-honest
    /// while concurrent shard work overlaps.
    pub phase_spans: Vec<(Phase, f64, f64)>,
    /// Shard wave loops the job ran (0 for unsharded runs).
    pub shards: u64,
    /// Families migrated between shards (work stealing plus orphan
    /// adoption).
    pub stolen_families: u64,
    /// Shard wave loops that died mid-run and had their work adopted.
    pub shard_deaths: u64,
}

struct ActiveFamily {
    family: Family,
    plan: ExtractionPlan,
    merged: Metadata,
    ran: Vec<String>,
    exec: EndpointId,
    attempts: HashMap<ExtractorKind, u32>,
    failed: Option<FailureReason>,
    timeline: Vec<FailureEvent>,
    /// The family's file records before any staging rewrite, kept so a
    /// reroute can re-stage the bytes from their true home.
    origin_files: Vec<FileRecord>,
    /// Where those records live.
    origin_source: EndpointId,
    /// True while a staging request for this family is in flight on the
    /// pool; the wave loop skips the family until its outcome lands.
    staging: bool,
    /// Every `(endpoint, base_path)` the family was ever staged under —
    /// not just the current one, so cleanup after a reroute also removes
    /// the copies abandoned on the endpoint that went dark.
    staged_sites: Vec<(EndpointId, String)>,
    /// 0 for the initial staging pass, bumped per breaker-reroute
    /// restage; also decorrelates fault salts across generations.
    stage_generation: u32,
    /// Extractor steps that consumed their one free deadline extension:
    /// a merely-slow (not provably lost) straggler at poll-window expiry
    /// is resubmitted once without charging the retry budget; the second
    /// overrun charges like any other loss.
    extended: HashSet<ExtractorKind>,
    /// The family was donated to another shard: its out-record is
    /// durable and the recipient owns it. The wave loop treats it as
    /// terminal-here — never dispatched, dead-lettered, or shipped.
    migrated: bool,
}

/// One submitted funcX task in the current wave, plus its speculative
/// hedge (if any) and its resolution. The first *productive* terminal
/// status (`Done`/`Failed`) between primary and hedge wins; the loser is
/// cancelled, so only the winner's output is ever decoded — metadata,
/// checkpoint flushes, and invocation counts can never double-count a
/// `(family, extractor)` pair.
struct WaveEntry {
    id: TaskId,
    kind: ExtractorKind,
    fams: Vec<FamilyId>,
    /// The original Xtract batch, kept so a hedge can re-encode the same
    /// payload for a different endpoint.
    batch: XtractBatch,
    /// The speculative duplicate: `(task, endpoint)`.
    hedge: Option<(TaskId, EndpointId)>,
    /// The winning status and the endpoint that produced it.
    resolved: Option<(TaskStatus, EndpointId)>,
    /// The deadline breach already scored this entry's endpoint (breach
    /// accounting and hedge launch are one-shot per entry).
    breached: bool,
}

/// Everything a run needs from its recovery log: the open log itself plus
/// the state replayed from it. Built once per job by
/// [`XtractService::run_job_with_recovery`] / [`XtractService::resume_job`];
/// `resumed` is false when the log held no prior progress.
pub(crate) struct RecoveryCtx {
    pub(crate) log: RecoveryLog,
    /// [`spec_fingerprint`] of the owning spec, re-stated by snapshots.
    pub(crate) fingerprint: u64,
    pub(crate) resumed: bool,
    pub(crate) replayed: u64,
    pub(crate) truncated: u64,
    /// Crawl totals from a replayed `CrawlCompleted` record.
    pub(crate) crawl: Option<(u64, u64, u64)>,
    /// The journaled family plan, in placement order — replaying it skips
    /// the crawl and pins family identity across the resume.
    pub(crate) planned: Vec<Family>,
    /// Replayed `StepCompleted` records, in journal order (migration
    /// in-records contribute their carried steps here, so fast-forward
    /// and checkpoint rehydration see cross-shard progress too).
    pub(crate) steps: Vec<RecoveryRecord>,
    /// Total retry attempts charged per family across prior runs.
    pub(crate) charges: HashMap<FamilyId, u32>,
    /// Dead letters from prior runs (latest per family wins).
    pub(crate) dead: HashMap<FamilyId, DeadLetter>,
    /// Crash points already recorded, in order — their count is the
    /// cursor into the fault plan's ordered crash schedule.
    pub(crate) crash_points: Vec<String>,
    /// Committed waves replayed from the log — the adaptive batching
    /// controller warm-starts from this count (its state is recomputed
    /// from replayed evidence, never persisted).
    pub(crate) waves: u64,
    /// Replayed `FamilyMigrated` records, in journal order — restated
    /// by compaction snapshots so ownership survives segment pruning.
    pub(crate) migrations: Vec<RecoveryRecord>,
    /// Root-WAL only: the last journaled lease epoch per shard
    /// (`ShardEpoch` records). A restarted cross-process coordinator
    /// replays these as the fencing floor each shard's next worker must
    /// exceed before it is re-admitted.
    pub(crate) shard_epochs: HashMap<u64, u64>,
    /// Root-WAL only: the coordinator's last brokered placement per
    /// family (`CustodyMoved` records) — the chain-walk hint for
    /// hand-overs that crashed between out-record and in-record.
    pub(crate) custody: HashMap<FamilyId, u64>,
}

/// The run's armed scheduled-crash entry, if any: entry `k` of
/// [`FaultPlan::orchestrator_crashes`] arms once `k` crashes are already
/// in the log, and fires at its `at_occurrence`-th pass of its point
/// (occurrences counted from the start of this run segment).
#[derive(Default)]
struct CrashSchedule {
    armed: Option<OrchestratorCrash>,
    seen: u64,
}

impl CrashSchedule {
    fn arm(plan: Option<&FaultPlan>, crashes_done: u64) -> Self {
        Self {
            armed: plan.and_then(|p| p.scheduled_crash(crashes_done)).copied(),
            seen: 0,
        }
    }

    /// Reports a pass of `point`; true when the armed kill fires here.
    fn hit(&mut self, point: CrashPoint) -> bool {
        match self.armed {
            Some(c) if c.point == point => {
                self.seen += 1;
                self.seen >= c.at_occurrence
            }
            _ => false,
        }
    }
}

/// The error a scheduled kill surfaces as.
fn killed(point: CrashPoint) -> XtractError {
    XtractError::OrchestratorKilled {
        point: point.name().to_string(),
    }
}

/// A `CrashRecorded` record for `point`.
fn crash_record(point: CrashPoint) -> RecoveryRecord {
    RecoveryRecord::CrashRecorded {
        point: point.name().to_string(),
    }
}

/// Bucket bounds (seconds) for the completion-latency histogram the
/// adaptive deadline derives from.
const LATENCY_BOUNDS_S: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
];

/// The wave's adaptive per-task deadline: the observed completion-latency
/// quantile times the policy multiplier, clamped to the policy floor and
/// ceiling (and never past the hard poll window). Falls back to the
/// ceiling until enough samples accumulate, and to the flat poll window
/// when the straggler defense is disabled.
fn adaptive_deadline(latency: &Histogram, hedge: &HedgePolicy, retry: &RetryPolicy) -> Duration {
    if !hedge.enabled {
        return Duration::from_millis(retry.poll_window_ms);
    }
    let ceiling = hedge.deadline_ceiling_ms.min(retry.poll_window_ms).max(1);
    if latency.count() >= hedge.min_latency_samples {
        if let Some(q) = latency.quantile(hedge.latency_quantile) {
            let ms = (q * 1000.0 * hedge.deadline_multiplier).ceil() as u64;
            return Duration::from_millis(ms.max(hedge.deadline_floor_ms).min(ceiling));
        }
    }
    Duration::from_millis(ceiling)
}

/// Charges one lost/crashed step against every family in a funcX task:
/// the step stays pending (the next wave resubmits with a fresh task id)
/// until the per-step or per-family budget runs out, at which point the
/// family dead-letters with [`FailureReason::RetryBudgetExhausted`].
#[allow(clippy::too_many_arguments)]
fn charge_step_loss(
    active: &mut [ActiveFamily],
    index: &HashMap<FamilyId, usize>,
    fams: &[FamilyId],
    kind: ExtractorKind,
    error: &XtractError,
    note: &str,
    retry: &RetryPolicy,
    ledger: &mut RetryLedger,
    health: &mut HealthTracker,
    report: &mut JobReport,
    journal: &EventJournal,
) {
    let mut endpoint = None;
    for fid in fams {
        let Some(&i) = index.get(fid) else { continue };
        let af = &mut active[i];
        endpoint = Some(af.exec);
        report.resubmitted += 1;
        let n = af.attempts.entry(kind).or_insert(0);
        *n += 1;
        af.timeline.push(FailureEvent {
            wave: health.now(),
            endpoint: af.exec,
            note: format!("{note} (attempt {n})"),
        });
        journal.record(Event::Retry {
            family: af.family.id,
            attempt: *n,
            note: note.to_string(),
        });
        let within_budget = ledger.charge(af.family.id);
        if *n >= retry.task_attempts || !within_budget {
            af.failed = Some(FailureReason::RetryBudgetExhausted {
                extractor: kind,
                error: error.clone(),
            });
        }
    }
    if let Some(ep) = endpoint {
        health.record_failure(ep);
    }
}

/// Folds one staging-pool outcome back into the wave loop's state: the
/// staged family replaces the origin view (success) or the family
/// dead-letters with a timeline event (failure — restages included, so no
/// dead letter ships with a silent reroute). Every outcome's span joins
/// the overlap-aware `Stage` accounting.
fn apply_stage_outcome(
    outcome: StageOutcome,
    active: &mut [ActiveFamily],
    report: &mut JobReport,
    health: &mut HealthTracker,
    stage_spans: &mut SpanUnion,
    journal: &EventJournal,
) {
    stage_spans.add(outcome.started_s, outcome.finished_s);
    let af = &mut active[outcome.index];
    af.staging = false;
    // Even a failed pass may have landed some files before the fault hit;
    // remember the site regardless so cleanup sweeps it (the fix for the
    // staged-copy leak: *every* site, not just the final exec home).
    af.staged_sites.push((outcome.exec, outcome.base));
    journal.record(Event::StagingFinished {
        family: af.family.id,
        destination: outcome.exec,
        ok: outcome.result.is_ok(),
    });
    match outcome.result {
        Ok(staged) => {
            af.family = staged.family;
            report.bytes_prefetched += staged.bytes;
            health.record_success(outcome.exec);
            if outcome.generation > 0 {
                let old = af.exec;
                af.exec = outcome.exec;
                report.rerouted += 1;
                af.timeline.push(FailureEvent {
                    wave: health.now(),
                    endpoint: outcome.exec,
                    note: format!("rerouted from {old} to {}", outcome.exec),
                });
            }
        }
        Err(reason) => {
            health.record_failure(outcome.exec);
            let note = if outcome.generation > 0 {
                format!("restage at {} failed: {reason}", outcome.exec)
            } else {
                reason.to_string()
            };
            af.timeline.push(FailureEvent {
                wave: health.now(),
                endpoint: outcome.exec,
                note,
            });
            af.failed = Some(reason);
        }
    }
}

/// The live Xtract service.
pub struct XtractService {
    fabric: Arc<DataFabric>,
    auth: Arc<AuthService>,
    transfer: Arc<TransferService>,
    faas: Arc<FaasService>,
    pub(crate) obs: Obs,
    library: HashMap<ExtractorKind, Arc<dyn Extractor>>,
    functions: parking_lot::RwLock<HashMap<(ExtractorKind, EndpointId), FunctionId>>,
    containers: parking_lot::RwLock<HashMap<ExtractorKind, Vec<ContainerId>>>,
    family_ids: IdAllocator,
    streams: RngStreams,
    /// The live serving index, created on the first job that opts into
    /// [`xtract_types::IndexPolicy`] ingest (that job's shard count
    /// wins) and shared by every job thereafter.
    serving: parking_lot::RwLock<Option<Arc<SearchIndex>>>,
}

impl XtractService {
    /// A service over a data fabric and auth provider. Every substrate —
    /// FaaS fabric, transfer service, crawler, breakers — reports into one
    /// shared [`Obs`] bundle, readable via [`Self::obs`].
    pub fn new(fabric: Arc<DataFabric>, auth: Arc<AuthService>, seed: u64) -> Self {
        let obs = Obs::new();
        let registry = Arc::new(FunctionRegistry::new());
        let faas = Arc::new(FaasService::with_obs(registry, obs.clone()));
        Self {
            transfer: Arc::new(TransferService::with_obs(
                fabric.clone(),
                auth.clone(),
                obs.clone(),
            )),
            fabric,
            auth,
            faas,
            obs,
            library: library(),
            functions: parking_lot::RwLock::new(HashMap::new()),
            containers: parking_lot::RwLock::new(HashMap::new()),
            family_ids: IdAllocator::new(),
            streams: RngStreams::new(seed),
            serving: parking_lot::RwLock::new(None),
        }
    }

    /// The live serving index, if any job has opted into index ingest
    /// yet. Readers query it lock-free against per-shard snapshots while
    /// jobs continue to ingest.
    pub fn index(&self) -> Option<Arc<SearchIndex>> {
        self.serving.read().clone()
    }

    /// Gets or creates the serving index; the first opting job's shard
    /// count wins.
    fn serving_index(&self, shards: usize) -> Arc<SearchIndex> {
        let mut slot = self.serving.write();
        match &*slot {
            Some(idx) => Arc::clone(idx),
            None => {
                let idx = Arc::new(SearchIndex::with_shards(shards));
                *slot = Some(Arc::clone(&idx));
                idx
            }
        }
    }

    /// The underlying transfer service (byte accounting for experiments).
    pub fn transfer_service(&self) -> &Arc<TransferService> {
        &self.transfer
    }

    /// The underlying FaaS fabric (statistics, fault injection).
    pub fn faas(&self) -> &Arc<FaasService> {
        &self.faas
    }

    /// The service's observability bundle: the metrics hub every substrate
    /// reports into and the journal of typed events.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Connects an endpoint's compute layer and registers every extractor
    /// for it (the §4.1 `function:container:endpoints` tuples).
    pub fn connect_endpoint(&self, spec: &EndpointSpec) -> Result<()> {
        let Some(workers) = spec.workers.filter(|&w| w > 0) else {
            return Ok(()); // storage-only endpoint: nothing to connect
        };
        self.faas
            .registry()
            .declare_endpoint(spec.endpoint, spec.runtime);
        self.faas
            .connect_endpoint(EndpointConfig::instant(spec.endpoint, workers));
        for (&kind, extractor) in &self.library {
            let container = self.faas.registry().register_container(
                format!("xtract-{}:{:?}", kind.name(), spec.runtime),
                spec.runtime,
                256 << 20,
            );
            self.containers
                .write()
                .entry(kind)
                .or_default()
                .push(container);
            let body = make_function_body(extractor.clone(), self.fabric.clone());
            let function = self.faas.registry().register_function(
                kind.name(),
                container,
                &[spec.endpoint],
                body,
            )?;
            self.functions
                .write()
                .insert((kind, spec.endpoint), function);
        }
        Ok(())
    }

    fn function_for(&self, kind: ExtractorKind, endpoint: EndpointId) -> Result<FunctionId> {
        self.functions.read().get(&(kind, endpoint)).copied().ok_or(
            XtractError::NoCompatibleEndpoint {
                container: format!("{} @ {endpoint}", kind.name()),
            },
        )
    }

    /// A connected compute endpoint other than `current` whose breaker
    /// admits work, if any (the graceful-degradation and hedge target).
    /// Endpoints whose decaying straggler score sits in quarantine are
    /// deprioritized: any non-quarantined candidate wins first, and a
    /// quarantined one is offered only when nothing cleaner exists.
    fn healthy_alternative(
        &self,
        current: EndpointId,
        spec: &JobSpec,
        health: &HealthTracker,
    ) -> Option<EndpointId> {
        let mut fallback = None;
        for ep in spec
            .endpoints
            .iter()
            .filter(|e| e.has_compute() && e.endpoint != current)
            .map(|e| e.endpoint)
            .filter(|&ep| health.available(ep) && self.faas.endpoint(ep).is_some())
        {
            if !health.quarantined(ep) {
                return Some(ep);
            }
            fallback.get_or_insert(ep);
        }
        fallback
    }

    /// Submits a speculative duplicate of `batch` at `alt` (same payload,
    /// re-encoded for the alternative endpoint's registered function).
    fn submit_hedge(&self, batch: &XtractBatch, alt: EndpointId) -> Result<TaskId> {
        let function = self.function_for(batch.extractor, alt)?;
        let ids = self.faas.batch_submit(&[TaskSpec {
            function,
            endpoint: alt,
            payload: encode_batch(batch, false),
        }]);
        Ok(ids[0])
    }

    /// Stages `origin_files` (living at `origin_source`) under `exec`'s
    /// store, retrying transient faults under the retry policy: each
    /// attempt re-submits only the files that failed, under a fresh fault
    /// salt, after a deterministic exponential-backoff delay. On success
    /// the family's records are rewritten to the staged copies. Runs on
    /// staging-pool workers, so the ledger arrives behind a mutex.
    #[allow(clippy::too_many_arguments)]
    fn stage_family(
        &self,
        token: Token,
        family: &mut Family,
        origin_source: EndpointId,
        origin_files: &[FileRecord],
        exec: EndpointId,
        store: &str,
        retry: &RetryPolicy,
        ledger: &Mutex<RetryLedger>,
        tenant: Option<&Arc<TenantCtx>>,
        salt_base: u64,
    ) -> std::result::Result<u64, FailureReason> {
        let base = format!("{store}/fam-{}", family.id.raw());
        let sizes: HashMap<&str, u64> = origin_files
            .iter()
            .map(|f| (f.path.as_str(), f.size))
            .collect();
        let mut pending: Vec<(String, String)> = origin_files
            .iter()
            .map(|f| (f.path.clone(), format!("{base}{}", f.path)))
            .collect();
        let mut moved = 0u64;
        let mut last_err = XtractError::Internal {
            reason: "no transfer attempted".to_string(),
        };
        for attempt in 0..retry.transfer_attempts {
            if attempt > 0 {
                ledger.lock().charge(family.id);
                std::thread::sleep(Duration::from_millis(
                    retry.delay_ms(attempt, family.id.raw()),
                ));
            }
            // Tenant quota: every attempt's bytes are charged before the
            // transfer is requested (re-attempts resubmit only the failed
            // remainder, so they charge only that remainder). A refusal
            // fails the stage with the typed quota error in the reason.
            if let Some(t) = tenant {
                let attempt_bytes: u64 = pending
                    .iter()
                    .map(|(src, _)| sizes.get(src.as_str()).copied().unwrap_or(0))
                    .sum();
                if let Err(e) = t.charge(QuotaResource::TransferBytes, attempt_bytes) {
                    return Err(FailureReason::PrefetchFailed {
                        endpoint: exec,
                        error: e,
                    });
                }
            }
            let request = TransferRequest {
                source: origin_source,
                destination: exec,
                files: pending.clone(),
            };
            match self
                .transfer
                .submit_with_salt(token, &request, salt_base + attempt as u64)
            {
                Ok(id) => {
                    let Some(receipt) = self.transfer.status(id) else {
                        last_err = XtractError::Internal {
                            reason: "transfer receipt missing".to_string(),
                        };
                        continue;
                    };
                    moved += receipt.bytes_moved;
                    if receipt.is_complete() {
                        family.files = origin_files
                            .iter()
                            .map(|f| {
                                let mut staged = f.clone();
                                staged.path = format!("{base}{}", f.path);
                                staged.endpoint = exec;
                                staged
                            })
                            .collect();
                        family.base_path = Some(base);
                        family.source = exec;
                        return Ok(moved);
                    }
                    last_err = XtractError::TransferFailed {
                        transfer: id,
                        reason: receipt
                            .failed
                            .first()
                            .map(|(_, why)| why.to_string())
                            .unwrap_or_else(|| "transfer incomplete".to_string()),
                    };
                    pending = receipt
                        .failed
                        .iter()
                        .map(|(p, _)| (p.clone(), format!("{base}{p}")))
                        .collect();
                }
                Err(e) => last_err = e,
            }
        }
        Err(FailureReason::PrefetchFailed {
            endpoint: exec,
            error: last_err,
        })
    }

    /// One staging-pool work item: stage the request's family and stamp
    /// the outcome with its concurrent span (offsets from `job_started`).
    fn execute_stage_request(
        &self,
        token: Token,
        req: StageRequest,
        retry: &RetryPolicy,
        ledger: &Mutex<RetryLedger>,
        tenant: Option<&Arc<TenantCtx>>,
        job_started: Instant,
    ) -> StageOutcome {
        let started_s = job_started.elapsed().as_secs_f64();
        let base = format!("{}/fam-{}", req.store, req.family.id.raw());
        let mut family = req.family;
        let result = self
            .stage_family(
                token,
                &mut family,
                req.origin_source,
                &req.origin_files,
                req.exec,
                &req.store,
                retry,
                ledger,
                tenant,
                req.salt_base,
            )
            .map(|bytes| StagedFamily { family, bytes });
        StageOutcome {
            index: req.index,
            generation: req.generation,
            exec: req.exec,
            base,
            result,
            started_s,
            finished_s: job_started.elapsed().as_secs_f64(),
        }
    }

    /// Stages 2+3, overlapped: crawl on background threads while the
    /// service packages min-transfers families from directories as they
    /// stream in ("the crawler asynchronously enqueues it for processing
    /// by the Xtract service", §4.3.1; §5.8.1: extraction state is ready
    /// "within 3 seconds of the crawler being initiated"). Fills the
    /// report's crawl totals and `families` with the job's plan.
    pub(crate) fn crawl_and_plan(
        &self,
        spec: &JobSpec,
        report: &mut JobReport,
        families: &mut Vec<Family>,
    ) -> Result<()> {
        let (tx, rx) = unbounded();
        let mut crawl_threads = Vec::with_capacity(spec.roots.len());
        for (ep, root) in &spec.roots {
            let backend = self.fabric.get(*ep)?.backend;
            let tx = tx.clone();
            let ep = *ep;
            let root = root.clone();
            let workers = spec.crawl_workers;
            let grouping = spec.grouping;
            let obs = self.obs.clone();
            crawl_threads.push(std::thread::spawn(move || {
                // Label the crawl.* counters with this endpoint so the hub
                // keeps per-endpoint crawl rates apart (Fig. 4, §5.8.1)
                // and CrawlProgress events report the endpoint they name;
                // counter_sum("crawl.files") recovers the aggregate.
                let label = ep.to_string();
                let crawler = Crawler::with_obs_labeled(
                    CrawlerConfig { workers, grouping },
                    obs,
                    Some(&label),
                );
                crawler.crawl(ep, &backend, &[root], tx)
            }));
        }
        drop(tx);

        for (dir_i, dir) in rx.into_iter().enumerate() {
            report.crawled_files += dir.files.len() as u64;
            report.groups += dir.groups.len() as u64;
            if dir.groups.is_empty() {
                continue;
            }
            let file_map: HashMap<String, xtract_types::FileRecord> = dir
                .files
                .iter()
                .map(|f| (f.path.clone(), f.clone()))
                .collect();
            let mut rng = self.streams.substream("min-transfers", dir_i as u64);
            let set = build_families(
                &file_map,
                dir.groups,
                dir.endpoint,
                spec.max_family_size,
                &self.family_ids,
                &mut rng,
            );
            report.redundant_files += set.redundant_files;
            families.extend(set.families);
        }
        for handle in crawl_threads {
            handle.join().map_err(|_| XtractError::Internal {
                reason: "crawl thread panicked".to_string(),
            })??;
        }
        Ok(())
    }

    /// Runs a bulk extraction job to completion.
    pub fn run_job(&self, token: Token, spec: &JobSpec) -> Result<JobReport> {
        self.run_job_at(token, spec, None, None)
    }

    /// As [`Self::run_job`], with the job charged to a tenant: FaaS
    /// invocations, staged transfer bytes, and retry attempts draw down
    /// the tenant's quota ledger *before* they are consumed, and the
    /// tenant's shared [`HealthTracker`] carries breaker and quarantine
    /// state across all of its jobs. A `None` tenant behaves exactly
    /// like [`Self::run_job`].
    pub fn run_job_as(
        &self,
        token: Token,
        spec: &JobSpec,
        tenant: Option<&Arc<TenantCtx>>,
    ) -> Result<JobReport> {
        self.run_job_at(token, spec, None, tenant)
    }

    /// Runs a job with a durable recovery log rooted at `dir`: every
    /// commit-worthy transition (crawl done, family planned, step
    /// flushed, retry charged, hedge resolved, family dead-lettered) is
    /// journaled before the job advances past it, so a crash at any
    /// point leaves a log [`Self::resume_job`] can replay. A log with
    /// prior progress is resumed rather than restarted. Running with a
    /// log implies checkpointing even when `spec.checkpoint` is off.
    pub fn run_job_with_recovery(
        &self,
        token: Token,
        spec: &JobSpec,
        dir: &Path,
    ) -> Result<JobReport> {
        self.run_job_at(token, spec, Some(dir), None)
    }

    /// As [`Self::run_job_with_recovery`], charged to a tenant (see
    /// [`Self::run_job_as`]).
    pub fn run_job_with_recovery_as(
        &self,
        token: Token,
        spec: &JobSpec,
        dir: &Path,
        tenant: Option<&Arc<TenantCtx>>,
    ) -> Result<JobReport> {
        self.run_job_at(token, spec, Some(dir), tenant)
    }

    /// Resumes a previously-interrupted job from the recovery log at
    /// `dir`: verifies the spec fingerprint (a log never replays into a
    /// different job — [`XtractError::SpecFingerprintMismatch`]),
    /// truncates any torn tail, finishes an interrupted compaction,
    /// rehydrates the checkpoint store / retry ledger / dead letters,
    /// skips the crawl and every journaled step, and runs whatever
    /// remains — converging to a report equivalent to an uninterrupted
    /// run's. A log with no prior records degrades to a fresh run.
    pub fn resume_job(&self, token: Token, spec: &JobSpec, dir: &Path) -> Result<JobReport> {
        self.run_job_at(token, spec, Some(dir), None)
    }

    fn run_job_at(
        &self,
        token: Token,
        spec: &JobSpec,
        dir: Option<&Path>,
        tenant: Option<&Arc<TenantCtx>>,
    ) -> Result<JobReport> {
        spec.validate()
            .map_err(|reason| XtractError::InvalidJob { reason })?;
        self.auth.check(token, Scope::Crawl)?;
        self.auth.check(token, Scope::Extract)?;
        // A sharded run fans the plan out over N wave loops, each with
        // its own WAL subdirectory under the job's log dir.
        if spec.shard.enabled && spec.shard.shards > 1 {
            let Some(dir) = dir else {
                return Err(XtractError::InvalidJob {
                    reason: "sharded runs need a recovery log dir (shard WALs live under it)"
                        .to_string(),
                });
            };
            if let Some(plan) = &spec.fault_plan {
                self.arm_faults(plan);
            }
            let result = crate::shard::run_sharded(self, token, spec, dir, tenant);
            if spec.fault_plan.is_some() {
                self.clear_faults();
            }
            return result;
        }
        let rec = match dir {
            Some(dir) => Some(self.open_recovery(spec, dir, None)?),
            None => None,
        };

        // Arm the job's structured fault plan on both substrates for the
        // duration of the run (and disarm afterwards, pass or fail).
        if let Some(plan) = &spec.fault_plan {
            self.arm_faults(plan);
        }
        let result = self.run_job_inner(token, spec, rec.as_ref(), tenant, None);
        if spec.fault_plan.is_some() {
            self.clear_faults();
        }
        result
    }

    /// Arms a structured fault plan on both substrates. Shard-worker
    /// processes call this directly (via [`crate::transport::run_worker`]):
    /// they enter the wave loop through [`Self::run_job_inner`], below
    /// the [`Self::run_job_at`] dispatch that normally arms faults.
    pub(crate) fn arm_faults(&self, plan: &FaultPlan) {
        self.transfer.arm_fault_plan(plan.clone());
        self.faas.arm_fault_plan(plan.clone());
    }

    /// Disarms any armed fault plan on both substrates.
    pub(crate) fn clear_faults(&self) {
        self.transfer.clear_faults();
        self.faas.clear_faults();
    }

    /// Opens the recovery log at `dir` and replays it into a
    /// [`RecoveryCtx`], emitting the recovery observability surface:
    /// `recovery.replayed` / `recovery.truncated` counters account for
    /// every record the log held (valid and torn respectively), and the
    /// journal records the open, any truncation, any finished
    /// compaction, and the resume itself.
    pub(crate) fn open_recovery(
        &self,
        spec: &JobSpec,
        dir: &Path,
        label: Option<&str>,
    ) -> Result<RecoveryCtx> {
        let fingerprint = spec_fingerprint(spec);
        let (log, replay) = RecoveryLog::open(dir, spec.recovery)?;
        // Sharded runs label the recovery counters per shard WAL;
        // `counter_sum` still recovers the aggregate, and the unsharded
        // path stays on the unlabeled cells.
        self.obs
            .hub
            .counter_with("recovery.replayed", label)
            .add(replay.records.len() as u64);
        self.obs
            .hub
            .counter_with("recovery.truncated", label)
            .add(replay.truncated_records);
        self.obs.journal.record(Event::RecoveryLogOpened {
            segments: replay.segments,
            records: replay.records.len() as u64,
        });
        if let Some(segment) = replay.truncated_segment {
            self.obs.journal.record(Event::RecordTruncated {
                segment,
                bytes: replay.truncated_bytes,
            });
        }
        let mut ctx = RecoveryCtx {
            log,
            fingerprint,
            resumed: false,
            replayed: replay.records.len() as u64,
            truncated: replay.truncated_records,
            crawl: None,
            planned: Vec::new(),
            steps: Vec::new(),
            charges: HashMap::new(),
            dead: HashMap::new(),
            crash_points: Vec::new(),
            waves: 0,
            migrations: Vec::new(),
            shard_epochs: HashMap::new(),
            custody: HashMap::new(),
        };
        let effective = replay.effective();
        if effective.is_empty() {
            // A fresh log: stamp the job identity before anything else.
            ctx.log
                .append(&RecoveryRecord::JobStarted { fingerprint })?;
            return Ok(ctx);
        }
        if let Some(found) = replay.fingerprint() {
            if found != fingerprint {
                return Err(XtractError::SpecFingerprintMismatch {
                    expected: fingerprint,
                    found,
                });
            }
        }
        // Finish a compaction a crash interrupted: the snapshot segment
        // is already durable, the stale history just never got unlinked.
        if let Some(boundary) = replay.boundary_segment {
            let removed = ctx.log.finish_compaction(boundary)?;
            if removed > 0 {
                self.obs.journal.record(Event::SnapshotCompacted {
                    records: effective.len() as u64,
                    segments_removed: removed,
                });
            }
        }
        ctx.resumed = true;
        for r in effective {
            match r {
                RecoveryRecord::CrawlCompleted {
                    crawled_files,
                    groups,
                    redundant_files,
                } => {
                    ctx.crawl = Some((*crawled_files, *groups, *redundant_files));
                    // A fresh crawl supersedes any earlier plan.
                    ctx.planned.clear();
                }
                RecoveryRecord::FamilyPlanned { family } => ctx.planned.push(family.clone()),
                RecoveryRecord::StepCompleted { .. } => ctx.steps.push(r.clone()),
                RecoveryRecord::RetryCharged { family, amount } => {
                    *ctx.charges.entry(*family).or_insert(0) += amount;
                }
                RecoveryRecord::DeadLettered { letter } => {
                    // Latest per family wins, matching the store.
                    ctx.dead.insert(letter.family, letter.clone());
                }
                RecoveryRecord::CrashRecorded { point } => ctx.crash_points.push(point.clone()),
                RecoveryRecord::WaveCommitted { .. } => ctx.waves += 1,
                RecoveryRecord::FamilyMigrated {
                    family,
                    adopted,
                    steps,
                    charges,
                    ..
                } => {
                    if *adopted {
                        // The family moved here: (re)plan it and carry
                        // its cross-shard progress — steps re-stated as
                        // StepCompleted so fast-forward and checkpoint
                        // rehydration treat them like local history.
                        ctx.planned.retain(|f| f.id != family.id);
                        ctx.planned.push(family.clone());
                        for s in steps {
                            ctx.steps.push(RecoveryRecord::StepCompleted {
                                family: family.id,
                                kind: s.kind,
                                metadata: Arc::clone(&s.metadata),
                                discoveries: s.discoveries.clone(),
                            });
                        }
                        let cur = ctx.charges.entry(family.id).or_insert(0);
                        *cur = (*cur).max(*charges);
                    } else {
                        ctx.planned.retain(|f| f.id != family.id);
                    }
                    ctx.migrations.push(r.clone());
                }
                RecoveryRecord::ShardEpoch { shard, epoch } => {
                    let cur = ctx.shard_epochs.entry(*shard).or_insert(0);
                    *cur = (*cur).max(*epoch);
                }
                RecoveryRecord::CustodyMoved { family, to, .. } => {
                    ctx.custody.insert(*family, *to);
                }
                _ => {}
            }
        }
        self.obs.journal.record(Event::JobResumed {
            replayed: ctx.replayed,
            truncated: ctx.truncated,
        });
        Ok(ctx)
    }

    pub(crate) fn run_job_inner(
        &self,
        token: Token,
        spec: &JobSpec,
        rec: Option<&RecoveryCtx>,
        tenant: Option<&Arc<TenantCtx>>,
        shard: Option<&dyn ShardLink>,
    ) -> Result<JobReport> {
        let job_started = Instant::now();
        let mut report = JobReport::default();
        let checkpoint = CheckpointStore::with_obs(&self.obs.hub);
        let retry = &spec.retry;
        // A tenant-owned job shares its tenant's health tracker, so
        // breaker and quarantine evidence accumulates across all of the
        // tenant's jobs; a bare job gets a private one.
        let health = match tenant {
            Some(t) => t.health(retry, &spec.hedge),
            None => Arc::new(Mutex::new(
                HealthTracker::with_journal(retry, self.obs.journal.clone())
                    .with_quarantine(&spec.hedge),
            )),
        };
        // Staging-pool workers and the wave loop share the ledger.
        let ledger = Mutex::new(match tenant {
            Some(t) => RetryLedger::with_tenant(retry, Arc::clone(t)),
            None => RetryLedger::new(retry),
        });
        let journal = self.obs.journal.clone();
        // A recovery log implies checkpointing: journaled steps must also
        // be loadable so a resumed family skips them.
        let use_checkpoint = spec.checkpoint || rec.is_some();
        // WAL bookkeeping (all idle when the job runs without a log):
        // every StepCompleted journaled so far (snapshots restate them),
        // charges already journaled per family (wave commits journal the
        // delta), dead letters journaled per family (latest wins), and
        // the crash points already recorded — plus the armed kill, if the
        // fault plan schedules one for this run segment.
        let mut wal_steps: Vec<RecoveryRecord> = Vec::new();
        let mut wal_charges: HashMap<FamilyId, u32> = HashMap::new();
        let mut wal_dead: HashMap<FamilyId, DeadLetter> = HashMap::new();
        let mut wal_crashes: Vec<String> = Vec::new();
        // Migration records journaled *this run segment* (sharded runs
        // only). Snapshots restate them after the planned families, so
        // compaction preserves mid-run ownership changes: an adopted
        // family survives pruning, a donated one stays gone. Replayed
        // migrations need no restating — the replayed plan and step list
        // already reflect them.
        let mut wal_migrations: Vec<RecoveryRecord> = Vec::new();
        // Steps carried in by live adoptions, kept apart from
        // `wal_steps` (they were journaled inside the in-record, not as
        // StepCompleted) so donation hand-offs still forward them.
        let mut adopted_steps: HashMap<FamilyId, Vec<MigratedStep>> = HashMap::new();
        let mut crash = CrashSchedule::default();
        // Live serving-index ingest (opt-in): touched families flow into
        // the sharded index as each wave commits, and validation replaces
        // their live records with the final ones.
        let serving: Option<Arc<SearchIndex>> = spec
            .index
            .enabled
            .then(|| self.serving_index(spec.index.shards));
        let index_ingested = self.obs.hub.counter("index.ingested");
        let index_replayed = self.obs.hub.counter("index.replayed");
        let index_waves = self.obs.hub.counter("index.waves");
        if let Some(ctx) = rec {
            report.resumed = ctx.resumed;
            report.replayed_records = ctx.replayed;
            report.truncated_records = ctx.truncated;
            // Rehydrate: flushed steps restore without charging the flush
            // counter (they were counted by the run that journaled them),
            // dead letters re-arm the is-dead skip, and the retry ledger
            // pre-charges attempts prior runs already spent.
            for r in &ctx.steps {
                if let RecoveryRecord::StepCompleted {
                    family,
                    kind,
                    metadata,
                    ..
                } = r
                {
                    checkpoint.restore(*family, kind.name(), metadata.clone());
                }
            }
            for letter in ctx.dead.values() {
                checkpoint.record_dead_letter(letter.clone());
            }
            {
                let mut l = ledger.lock();
                for (f, n) in &ctx.charges {
                    l.precharge(*f, *n);
                }
            }
            wal_steps = ctx.steps.clone();
            wal_charges = ctx.charges.clone();
            wal_dead = ctx.dead.clone();
            wal_crashes = ctx.crash_points.clone();
            crash = CrashSchedule::arm(spec.fault_plan.as_ref(), ctx.crash_points.len() as u64);
            // Re-converge the serving index: fold every journaled step
            // into its family's merged document, in journal order — the
            // same order the live run merged (and ingested) them — so a
            // resumed job's index ends up identical to an uninterrupted
            // run's.
            if let Some(serving) = &serving {
                let mut rebuilt: HashMap<FamilyId, (Metadata, Vec<String>)> = HashMap::new();
                for r in &ctx.steps {
                    if let RecoveryRecord::StepCompleted {
                        family,
                        kind,
                        metadata,
                        ..
                    } = r
                    {
                        let (merged, ran) = rebuilt
                            .entry(*family)
                            .or_insert_with(|| (Metadata::new(), Vec::new()));
                        merged.merge(metadata);
                        ran.push(kind.name().to_string());
                    }
                }
                let families = rebuilt.len() as u64;
                if families > 0 {
                    serving.ingest_all(rebuilt.into_iter().map(
                        |(family, (document, extractors))| MetadataRecord {
                            family,
                            schema: "live".to_string(),
                            document,
                            extractors,
                        },
                    ));
                    index_replayed.add(families);
                    journal.record(Event::IndexReplayed { families });
                }
            }
        }
        // Straggler-defense instrumentation: the completion-latency
        // histogram the adaptive deadline derives from, and the hedge
        // lifecycle counters (`launched == won + wasted` at job end).
        let latency_hist = self.obs.hub.histogram("task.latency_s", LATENCY_BOUNDS_S);
        let hedge_launched = self.obs.hub.counter("hedge.launched");
        let hedge_won = self.obs.hub.counter("hedge.won");
        let hedge_wasted = self.obs.hub.counter("hedge.wasted");
        // Adaptive two-level batching: a per-endpoint AIMD controller
        // retunes (xtract, funcx, poll_chunk) from each wave's latency
        // evidence. With the policy disabled, the single static batcher
        // below is used unchanged. On resume the controller warm-starts
        // from the count of replayed committed waves — its state is
        // recomputed from the journal, never persisted.
        let adaptive_on = spec.adaptive.enabled;
        let mut tuner =
            AdaptiveTuner::new(spec.adaptive, spec.xtract_batch_size, spec.funcx_batch_size)
                .with_replayed_waves(rec.map_or(0, |c| c.waves));
        let tune_grow = self.obs.hub.counter("adaptive.grow");
        let tune_backoff = self.obs.hub.counter("adaptive.backoff");
        // Limits last journaled per endpoint, so `BatchTuned` is recorded
        // only when a wave actually runs under different limits.
        let mut last_tuned: HashMap<EndpointId, BatchLimits> = HashMap::new();
        // The allocation lease watchdog: notices lapsed leases in the
        // background (flipping in-flight tasks to Lost immediately rather
        // than after a poll window) and renews them after the policy
        // cooldown. Held for the job's duration; dropping it stops the
        // thread.
        let _watchdog = spec.hedge.enabled.then(|| {
            self.faas
                .start_lease_watchdog(Duration::from_millis(spec.hedge.watchdog_renew_cooldown_ms))
        });

        // --- Stages 2+3, overlapped: crawl on background threads while the
        // service packages min-transfers families from directories as they
        // stream in ("the crawler asynchronously enqueues it for processing
        // by the Xtract service", §4.3.1; §5.8.1: extraction state is ready
        // "within 3 seconds of the crawler being initiated"). ---------------
        let crawl_started = Instant::now();
        // A resumed job with a journaled plan skips the crawl entirely:
        // replaying `FamilyPlanned` records both saves the re-crawl and
        // pins family identity — ids match the original run even though
        // the allocator has moved on.
        let resumed_plan = rec.is_some_and(|c| c.resumed && !c.planned.is_empty());
        let mut families: Vec<Family> = Vec::new();
        if resumed_plan {
            let ctx = rec.expect("resumed_plan implies a recovery ctx");
            let (crawled, groups, redundant) = ctx.crawl.unwrap_or((0, 0, 0));
            report.crawled_files = crawled;
            report.groups = groups;
            report.redundant_files = redundant;
            families = ctx.planned.clone();
        } else {
            self.crawl_and_plan(spec, &mut report, &mut families)?;
        }
        report.families = families.len() as u64;
        let crawl_s = crawl_started.elapsed().as_secs_f64();
        let now_s = job_started.elapsed().as_secs_f64();
        report.phases.add(Phase::Crawl, crawl_s);
        report
            .phase_spans
            .push((Phase::Crawl, now_s - crawl_s, now_s));
        if let Some(ctx) = rec {
            if !resumed_plan {
                // One group commit makes the crawl + plan durable before
                // any extraction work depends on it.
                let mut batch = Vec::with_capacity(families.len() + 1);
                batch.push(RecoveryRecord::CrawlCompleted {
                    crawled_files: report.crawled_files,
                    groups: report.groups,
                    redundant_files: report.redundant_files,
                });
                batch.extend(
                    families
                        .iter()
                        .map(|f| RecoveryRecord::FamilyPlanned { family: f.clone() }),
                );
                ctx.log.append_batch(&batch)?;
            }
            if crash.hit(CrashPoint::AfterCrawl) {
                ctx.log.append(&crash_record(CrashPoint::AfterCrawl))?;
                return Err(killed(CrashPoint::AfterCrawl));
            }
        }
        // Retained for snapshot restatement during log compaction; the
        // placement loop below consumes `families`.
        let planned_families: Vec<Family> = if rec.is_some() {
            families.clone()
        } else {
            Vec::new()
        };

        // --- Stage 4: placement. -------------------------------------------
        let plan_started = Instant::now();
        let primary =
            spec.endpoints
                .iter()
                .find(|e| e.has_compute())
                .ok_or(XtractError::InvalidJob {
                    reason: "no compute endpoint in job".to_string(),
                })?;
        let secondary = spec
            .endpoints
            .iter()
            .filter(|e| e.has_compute())
            .nth(1)
            .map(|e| e.endpoint);
        let mut offloader = Offloader::new(
            spec.offload,
            primary.endpoint,
            secondary,
            self.streams.seed() ^ 0x0ff1,
        );
        let by_endpoint: HashMap<EndpointId, &EndpointSpec> =
            spec.endpoints.iter().map(|e| (e.endpoint, e)).collect();

        let mut active: Vec<ActiveFamily> = Vec::with_capacity(families.len());
        // Overlap-aware Stage accounting: every staging pass contributes
        // its [start, finish] span; the union (never the sum) of the
        // pool's concurrent spans is the phase's wall-clock coverage.
        let mut stage_spans = SpanUnion::new();
        let staging_workers = spec.staging_workers.max(1);
        // The pool is the concurrency budget; bound each transfer link to
        // the same width so one saturated link cannot be oversubscribed.
        self.transfer.set_link_limit(Some(staging_workers));

        std::thread::scope(|scope| -> Result<()> {
            // --- The staging pool: a bounded set of workers prefetching
            // families via the Arc-shared transfer service, streaming
            // outcomes back into the wave loop. Restages after breaker
            // reroutes ride the same channel. -------------------------------
            let (req_tx, req_rx) = unbounded::<StageRequest>();
            let (out_tx, out_rx) = unbounded::<StageOutcome>();
            let pool_gauge = self.obs.hub.gauge("staging.in_flight");
            for _ in 0..staging_workers {
                let req_rx = req_rx.clone();
                let out_tx = out_tx.clone();
                let gauge = pool_gauge.clone();
                let journal = journal.clone();
                let ledger = &ledger;
                scope.spawn(move || {
                    while let Ok(req) = req_rx.recv() {
                        gauge.inc();
                        journal.record(Event::StagingStarted {
                            family: req.family.id,
                            destination: req.exec,
                        });
                        let outcome = self.execute_stage_request(
                            token,
                            req,
                            retry,
                            ledger,
                            tenant,
                            job_started,
                        );
                        gauge.dec();
                        if out_tx.send(outcome).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(req_rx);
            drop(out_tx);
            // Staging requests in flight on the pool; the wave loop may
            // not end while any remain.
            let mut inflight = 0usize;

            for family in families {
                // A family a prior run segment already dead-lettered never
                // activates again: its journaled letter ships straight to
                // the report, and no extractor is re-invoked for it — the
                // zero-duplicate-invocation invariant for poisoned files.
                if let Some(ctx) = rec {
                    if let Some(letter) = ctx.dead.get(&family.id) {
                        report.failures.push(letter.clone());
                        continue;
                    }
                }
                let origin_files = family.files.clone();
                let origin_source = family.source;
                let local_ok = by_endpoint
                    .get(&family.source)
                    .is_some_and(|e| e.has_compute());
                // Default: source locality — a family already sitting on
                // a compute endpoint runs there, otherwise the primary.
                let default_exec = if local_ok {
                    family.source
                } else {
                    primary.endpoint
                };
                // Honour the offloader's *typed* decision: `Offload` is an
                // active instruction to move the family to the secondary
                // (§4.3.3 RAND applies a percentage of all files), while
                // `Home` means the policy expressed no preference and
                // source locality stands — the primary is never a forced
                // destination (see `Offloader::place_decision`).
                let (placed, decision) = offloader.place_decision(&family);
                let exec = if decision == Placement::Offload {
                    placed
                } else {
                    default_exec
                };
                let index = active.len();
                let mut af = ActiveFamily {
                    plan: ExtractionPlan::for_family(&family),
                    family,
                    merged: Metadata::new(),
                    ran: Vec::new(),
                    exec,
                    attempts: HashMap::new(),
                    failed: None,
                    timeline: Vec::new(),
                    origin_files,
                    origin_source,
                    staging: false,
                    staged_sites: Vec::new(),
                    stage_generation: 0,
                    extended: HashSet::new(),
                    migrated: false,
                };
                // Fast-forward a resumed family through its journaled
                // steps: merged output, ran-list, and plan cursor land
                // exactly where the original run left them — including
                // extractors those completed steps *discovered*, which a
                // fresh crawl-seeded plan would never schedule. The
                // ran-guard makes the replay idempotent: a migrated
                // family's carried steps can be restated both by its
                // in-record and by the snapshot's step records.
                if let Some(ctx) = rec {
                    for r in &ctx.steps {
                        if let RecoveryRecord::StepCompleted {
                            family: fid,
                            kind,
                            metadata,
                            discoveries,
                        } = r
                        {
                            if *fid == af.family.id && !af.ran.iter().any(|n| n == kind.name()) {
                                af.merged.merge(metadata);
                                af.ran.push(kind.name().to_string());
                                af.plan.complete(*kind, discoveries);
                            }
                        }
                    }
                }
                // --- Stage 5: prefetch if bytes are elsewhere — submitted
                // to the pool, not awaited, so wave 1 of already-local
                // families dispatches while remote ones are in flight. A
                // resumed family whose replayed plan is already done has
                // nothing left to run and skips the transfer. ---------------
                if exec != af.family.source && !(rec.is_some() && af.plan.is_done()) {
                    let store = by_endpoint
                        .get(&exec)
                        .copied()
                        .and_then(|d| d.store_path.clone());
                    match store {
                        Some(store) => {
                            af.staging = true;
                            inflight += 1;
                            let _ = req_tx.send(StageRequest {
                                index,
                                family: af.family.clone(),
                                origin_files: af.origin_files.clone(),
                                origin_source,
                                exec,
                                store,
                                // Satellite fix: the salt base derives from
                                // the family id, so injected transfer
                                // faults roll independently per family
                                // instead of in lockstep.
                                salt_base: stage_salt_base(af.family.id, 0),
                                generation: 0,
                            });
                        }
                        None => {
                            // The family still flows through the wave loop
                            // and stage 7 so it lands in exactly one place:
                            // the dead-letter list.
                            let reason = FailureReason::PrefetchFailed {
                                endpoint: exec,
                                error: XtractError::NoComputeLayer { endpoint: exec },
                            };
                            health.lock().record_failure(exec);
                            af.timeline.push(FailureEvent {
                                wave: 0,
                                endpoint: exec,
                                note: reason.to_string(),
                            });
                            af.failed = Some(reason);
                        }
                    }
                }
                active.push(af);
            }
            // Placement is pure now that staging rides the pool: Plan is
            // the decision pass alone; Stage lands after the loop as the
            // union of the pool's concurrent spans.
            let plan_s = plan_started.elapsed().as_secs_f64();
            let now_s = job_started.elapsed().as_secs_f64();
            report.phases.add(Phase::Plan, plan_s);
            report
                .phase_spans
                .push((Phase::Plan, now_s - plan_s, now_s));

            // --- Stage 6: extraction waves, overlapped with staging. -------
            loop {
                // Fold in every family the pool finished since the last
                // wave; newly staged families join this wave's batch.
                while let Ok(outcome) = out_rx.try_recv() {
                    inflight -= 1;
                    apply_stage_outcome(
                        outcome,
                        &mut active,
                        &mut report,
                        &mut health.lock(),
                        &mut stage_spans,
                        &journal,
                    );
                }
                health.lock().tick();

                // --- Shard coordination at the wave boundary. Waves are
                // synchronous: nothing is in flight here except staging,
                // so this is the one safe point to move families between
                // shards. Order matters — adopt (journal the in-record,
                // then acknowledge custody), donate (journal the
                // out-record *before* handing over), then heartbeat. ----
                if let Some(ctl) = shard {
                    let ctx = rec.expect("sharded runners always carry a recovery log");
                    let migrants = ctl.drain()?;
                    if !migrants.is_empty() {
                        let in_records: Vec<RecoveryRecord> = migrants
                            .iter()
                            .map(|m| RecoveryRecord::FamilyMigrated {
                                family: m.family.clone(),
                                from: m.from,
                                to: ctl.shard() as u64,
                                adopted: true,
                                steps: m.steps.clone(),
                                charges: m.charges,
                            })
                            .collect();
                        ctx.log.append_batch(&in_records)?;
                        let ids: Vec<FamilyId> = migrants.iter().map(|m| m.family.id).collect();
                        ctl.ack(&ids)?;
                        wal_migrations.extend(in_records);
                        for m in migrants {
                            // Carried charges are the family's total at
                            // hand-over; future wave commits journal only
                            // the delta above this mark.
                            let cur = wal_charges.entry(m.family.id).or_insert(0);
                            *cur = (*cur).max(m.charges);
                            ledger.lock().precharge(m.family.id, m.charges);
                            let origin_files = m.family.files.clone();
                            let origin_source = m.family.source;
                            let local_ok = by_endpoint
                                .get(&m.family.source)
                                .is_some_and(|e| e.has_compute());
                            let exec = if local_ok {
                                m.family.source
                            } else {
                                primary.endpoint
                            };
                            let index = active.len();
                            let mut af = ActiveFamily {
                                plan: ExtractionPlan::for_family(&m.family),
                                family: m.family,
                                merged: Metadata::new(),
                                ran: Vec::new(),
                                exec,
                                attempts: HashMap::new(),
                                failed: None,
                                timeline: Vec::new(),
                                origin_files,
                                origin_source,
                                staging: false,
                                staged_sites: Vec::new(),
                                stage_generation: 0,
                                extended: HashSet::new(),
                                migrated: false,
                            };
                            // Fast-forward through the carried steps, as a
                            // resumed family would through journaled ones.
                            for s in &m.steps {
                                if !af.ran.iter().any(|n| n == s.kind.name()) {
                                    af.merged.merge(&s.metadata);
                                    af.ran.push(s.kind.name().to_string());
                                    af.plan.complete(s.kind, &s.discoveries);
                                }
                            }
                            let carried = adopted_steps.entry(af.family.id).or_default();
                            for s in &m.steps {
                                if !carried.iter().any(|h| h.kind == s.kind) {
                                    carried.push(s.clone());
                                }
                            }
                            if exec != af.family.source && !af.plan.is_done() {
                                let store = by_endpoint
                                    .get(&exec)
                                    .copied()
                                    .and_then(|d| d.store_path.clone());
                                match store {
                                    Some(store) => {
                                        af.staging = true;
                                        inflight += 1;
                                        let _ = req_tx.send(StageRequest {
                                            index,
                                            family: af.family.clone(),
                                            origin_files: af.origin_files.clone(),
                                            origin_source,
                                            exec,
                                            store,
                                            salt_base: stage_salt_base(af.family.id, 0),
                                            generation: 0,
                                        });
                                    }
                                    None => {
                                        let reason = FailureReason::PrefetchFailed {
                                            endpoint: exec,
                                            error: XtractError::NoComputeLayer { endpoint: exec },
                                        };
                                        health.lock().record_failure(exec);
                                        af.timeline.push(FailureEvent {
                                            wave: u64::from(report.waves),
                                            endpoint: exec,
                                            note: reason.to_string(),
                                        });
                                        af.failed = Some(reason);
                                    }
                                }
                            }
                            active.push(af);
                        }
                    }
                    // Donation: at the wave boundary any pending,
                    // non-staging family can move with its completed
                    // steps. Out-records go durable before delivery.
                    if let Some(req) = ctl.take_steal()? {
                        let mut eligible: Vec<usize> = active
                            .iter()
                            .enumerate()
                            .filter(|(_, af)| {
                                af.failed.is_none()
                                    && !af.staging
                                    && !af.migrated
                                    && !af.plan.is_done()
                            })
                            .map(|(i, _)| i)
                            .collect();
                        let take = eligible.len().min(req.max);
                        let chosen = eligible.split_off(eligible.len() - take);
                        if !chosen.is_empty() {
                            let mut outs = Vec::with_capacity(chosen.len());
                            let mut handoff = Vec::with_capacity(chosen.len());
                            for &i in &chosen {
                                let af = &active[i];
                                // The recipient re-stages from the origin
                                // view, exactly like a breaker reroute.
                                let mut family = af.family.clone();
                                family.files = af.origin_files.clone();
                                family.source = af.origin_source;
                                family.base_path = None;
                                let mut steps: Vec<MigratedStep> = adopted_steps
                                    .get(&af.family.id)
                                    .cloned()
                                    .unwrap_or_default();
                                for r in &wal_steps {
                                    if let RecoveryRecord::StepCompleted {
                                        family: fid,
                                        kind,
                                        metadata,
                                        discoveries,
                                    } = r
                                    {
                                        if *fid == af.family.id
                                            && !steps.iter().any(|s| s.kind == *kind)
                                        {
                                            steps.push(MigratedStep {
                                                kind: *kind,
                                                metadata: Arc::clone(metadata),
                                                discoveries: discoveries.clone(),
                                            });
                                        }
                                    }
                                }
                                let charges = ledger
                                    .lock()
                                    .attempts(af.family.id)
                                    .max(wal_charges.get(&af.family.id).copied().unwrap_or(0));
                                outs.push(RecoveryRecord::FamilyMigrated {
                                    family: family.clone(),
                                    from: ctl.shard() as u64,
                                    to: req.to as u64,
                                    adopted: false,
                                    steps: steps.clone(),
                                    charges,
                                });
                                handoff.push(Migrant {
                                    family,
                                    steps,
                                    charges,
                                    from: ctl.shard() as u64,
                                });
                            }
                            ctx.log.append_batch(&outs)?;
                            wal_migrations.extend(outs);
                            for (&i, m) in chosen.iter().zip(handoff) {
                                active[i].migrated = true;
                                ctl.deliver(req.to, m)?;
                            }
                        }
                    }
                    let pending = active
                        .iter()
                        .filter(|af| af.failed.is_none() && !af.migrated && !af.plan.is_done())
                        .count() as u64;
                    ctl.heartbeat(u64::from(report.waves), pending)?;
                }

                // Graceful degradation: a family whose endpoint's breaker
                // is open moves to a healthy endpoint, its bytes re-staged
                // from the origin — through the pool, so the wave loop
                // keeps dispatching healthy families meanwhile. With no
                // healthy alternative it stays parked and rides the
                // half-open probe cycle instead.
                for (i, af) in active.iter_mut().enumerate() {
                    if af.failed.is_some() || af.staging || af.migrated || af.plan.is_done() {
                        continue;
                    }
                    if health.lock().state(af.exec) != BreakerState::Open {
                        continue;
                    }
                    let Some(new_exec) = self.healthy_alternative(af.exec, spec, &health.lock())
                    else {
                        if self.faas.endpoint(af.exec).is_none() {
                            // Not just tripped — the endpoint does not
                            // exist.
                            af.failed =
                                Some(FailureReason::NoHealthyEndpoint { endpoint: af.exec });
                        }
                        continue;
                    };
                    if !ledger.lock().charge(af.family.id) {
                        af.failed = Some(FailureReason::RetryBudgetExhausted {
                            extractor: af.plan.next().unwrap_or(ExtractorKind::Keyword),
                            error: XtractError::EndpointDown { endpoint: af.exec },
                        });
                        continue;
                    }
                    let old = af.exec;
                    // Reset to the origin view, then stage at the new home.
                    af.family.files = af.origin_files.clone();
                    af.family.source = af.origin_source;
                    af.family.base_path = None;
                    if new_exec == af.origin_source {
                        // The bytes already live at the new home: a purely
                        // logical move, no transfer needed.
                        af.exec = new_exec;
                        report.rerouted += 1;
                        af.timeline.push(FailureEvent {
                            wave: health.lock().now(),
                            endpoint: new_exec,
                            note: format!("rerouted from {old} to {new_exec}"),
                        });
                        continue;
                    }
                    let store = by_endpoint
                        .get(&new_exec)
                        .copied()
                        .and_then(|d| d.store_path.clone());
                    match store {
                        Some(store) => {
                            af.stage_generation += 1;
                            af.staging = true;
                            inflight += 1;
                            let _ = req_tx.send(StageRequest {
                                index: i,
                                family: af.family.clone(),
                                origin_files: af.origin_files.clone(),
                                origin_source: af.origin_source,
                                exec: new_exec,
                                store,
                                salt_base: stage_salt_base(af.family.id, af.stage_generation),
                                generation: af.stage_generation,
                            });
                        }
                        None => {
                            // Satellite fix: a failed restage records a
                            // timeline event like every other failure path,
                            // so the dead letter ships a complete history.
                            let reason = FailureReason::PrefetchFailed {
                                endpoint: new_exec,
                                error: XtractError::NoComputeLayer { endpoint: new_exec },
                            };
                            health.lock().record_failure(new_exec);
                            af.timeline.push(FailureEvent {
                                wave: health.lock().now(),
                                endpoint: new_exec,
                                note: format!("restage at {new_exec} failed: {reason}"),
                            });
                            af.failed = Some(reason);
                        }
                    }
                }

                let dispatch_started = Instant::now();
                // Static mode: one batcher spans endpoints, so a funcX
                // request may mix endpoints' tasks — today's behavior,
                // untouched. Adaptive mode: one batcher per endpoint at
                // the tuner's current limits (BTreeMap keeps flush order
                // deterministic), since limits are per-endpoint state.
                let mut batcher = Batcher::new(spec.xtract_batch_size, spec.funcx_batch_size);
                let mut ep_batchers: BTreeMap<EndpointId, Batcher> = BTreeMap::new();
                let mut wave_poll_chunk: Option<usize> = None;
                let mut wave = Vec::new();
                let mut index: HashMap<FamilyId, usize> = HashMap::new();
                for (i, af) in active.iter_mut().enumerate() {
                    // A family with a staging pass in flight sits this wave
                    // out; its outcome folds in at the top of a later one.
                    // A donated family is terminal here: its new shard
                    // dispatches it.
                    if af.failed.is_some() || af.staging || af.migrated {
                        continue;
                    }
                    // An open breaker parks the family until a reroute or
                    // the cooldown's half-open probe readmits it.
                    if health.lock().state(af.exec) == BreakerState::Open {
                        continue;
                    }
                    let Some(kind) = af.plan.next() else { continue };
                    // Checkpointed output short-circuits re-execution after
                    // a loss (§5.8.1: "the metadata are re-loaded").
                    if use_checkpoint {
                        if let Some(md) = checkpoint.load(af.family.id, kind.name()) {
                            af.merged.merge(&md);
                            af.ran.push(kind.name().to_string());
                            af.plan.complete_simple(kind);
                            continue;
                        }
                    }
                    index.insert(af.family.id, i);
                    let b = if adaptive_on {
                        ep_batchers.entry(af.exec).or_insert_with(|| {
                            let mut lim = tuner.limits(af.exec);
                            // A tenant's remaining invocation budget caps
                            // funcX growth: requests shrink to fit the
                            // budget instead of bouncing off the ledger.
                            if let Some(t) = tenant {
                                lim = lim.cap_to_invocations(
                                    t.ledger().headroom(QuotaResource::Invocations),
                                    spec.adaptive.funcx_floor,
                                );
                            }
                            wave_poll_chunk =
                                Some(wave_poll_chunk.unwrap_or(0).max(lim.poll_chunk));
                            if last_tuned.insert(af.exec, lim) != Some(lim) {
                                journal.record(Event::BatchTuned {
                                    endpoint: af.exec,
                                    xtract: lim.xtract as u64,
                                    funcx: lim.funcx as u64,
                                    poll_chunk: lim.poll_chunk as u64,
                                });
                            }
                            Batcher::new(lim.xtract, lim.funcx)
                        })
                    } else {
                        &mut batcher
                    };
                    wave.extend(b.push(af.family.clone(), kind, af.exec));
                }
                wave.extend(batcher.flush());
                for b in ep_batchers.values_mut() {
                    wave.extend(b.flush());
                }
                if wave.is_empty() {
                    if inflight > 0 {
                        // Nothing dispatchable yet but prefetches are in
                        // flight: block for the next outcome instead of
                        // spinning on an empty wave.
                        match out_rx.recv() {
                            Ok(outcome) => {
                                inflight -= 1;
                                apply_stage_outcome(
                                    outcome,
                                    &mut active,
                                    &mut report,
                                    &mut health.lock(),
                                    &mut stage_spans,
                                    &journal,
                                );
                            }
                            Err(_) => {
                                // The pool died (a worker panicked): fail
                                // the stranded families with a typed
                                // reason rather than spin — the partition
                                // invariant outlives even this.
                                inflight = 0;
                                for af in active.iter_mut().filter(|af| af.staging) {
                                    af.staging = false;
                                    af.failed = Some(FailureReason::Internal {
                                        reason: "staging pool terminated mid-flight".to_string(),
                                    });
                                }
                            }
                        }
                        continue;
                    }
                    // Checkpoint short-circuits may have advanced plans,
                    // and parked families wait out a breaker cooldown (the
                    // tick at the top of the loop is what ages it); loop
                    // again if anything is still pending.
                    if active
                        .iter()
                        .all(|af| af.failed.is_some() || af.migrated || af.plan.is_done())
                    {
                        // A drained shard parks with the coordinator
                        // instead of finishing: siblings may still donate
                        // it work (idle-pull), and the run only concludes
                        // once every shard is drained together.
                        match shard {
                            Some(ctl) => match ctl.idle_wait()? {
                                crate::shard::IdleVerdict::Adopt => continue,
                                crate::shard::IdleVerdict::Finished => break,
                            },
                            None => break,
                        }
                    }
                    continue;
                }
                report.waves += 1;
                // Steps completed during this wave; journaled in one group
                // commit at the wave boundary below.
                let mut wave_flushes: Vec<RecoveryRecord> = Vec::new();
                // Families whose merged document grew this wave; ingested
                // into the serving index at the commit boundary below.
                let mut wave_touched: HashSet<FamilyId> = HashSet::new();

                // Submit: one batch_submit per funcX batch (§4.3.2).
                let mut entries: Vec<WaveEntry> = Vec::new();
                for funcx_batch in &wave {
                    let mut specs = Vec::with_capacity(funcx_batch.tasks.len());
                    let mut members: Vec<(ExtractorKind, Vec<FamilyId>, XtractBatch)> = Vec::new();
                    for task in &funcx_batch.tasks {
                        let function = self.function_for(task.extractor, task.endpoint)?;
                        // Staged copies are cleaned after the *whole plan*
                        // finishes (a family may still need them for later
                        // extractors), so the per-batch flag stays off.
                        specs.push(TaskSpec {
                            function,
                            endpoint: task.endpoint,
                            payload: encode_batch(task, false),
                        });
                        members.push((
                            task.extractor,
                            task.families.iter().map(|f| f.id).collect(),
                            task.clone(),
                        ));
                    }
                    // Tenant quota: invocations are charged before the
                    // batch reaches the fabric, so a refused charge means
                    // nothing was submitted and nothing needs unwinding.
                    if let Some(t) = tenant {
                        let invocations: u64 =
                            members.iter().map(|(_, fams, _)| fams.len() as u64).sum();
                        t.charge(QuotaResource::Invocations, invocations)?;
                    }
                    let ids = self.faas.batch_submit(&specs);
                    for (id, (kind, fams, batch)) in ids.into_iter().zip(members) {
                        *report
                            .invocations
                            .entry(kind.name().to_string())
                            .or_insert(0) += fams.len() as u64;
                        entries.push(WaveEntry {
                            id,
                            kind,
                            fams,
                            batch,
                            hedge: None,
                            resolved: None,
                            breached: false,
                        });
                    }
                }
                let dispatch_s = dispatch_started.elapsed().as_secs_f64();
                let now_s = job_started.elapsed().as_secs_f64();
                report.phases.add(Phase::Dispatch, dispatch_s);
                report
                    .phase_spans
                    .push((Phase::Dispatch, now_s - dispatch_s, now_s));

                // Poll until terminal (batched polling, §4.3.2), under the
                // straggler defense: every task in the wave gets an
                // adaptive deadline derived from the observed
                // completion-latency quantile (policy ceiling until enough
                // samples accumulate). A breach scores the endpoint as a
                // straggler and — when an alternative healthy endpoint
                // exists — hedges the task there; the first productive
                // result wins and the loser is cancelled. The flat poll
                // window from the retry policy stays the hard cap, and a
                // task still non-terminal when it closes is split into
                // provably-lost vs merely-slow below.
                let extract_started = Instant::now();
                let deadline = adaptive_deadline(&latency_hist, &spec.hedge, retry);
                let window = Duration::from_millis(retry.poll_window_ms);
                let wave_started = Instant::now();
                // Per-endpoint completion latencies this wave — the
                // adaptive controller's evidence. Untouched (and empty)
                // when the policy is disabled.
                let mut wave_lat: BTreeMap<EndpointId, Vec<f64>> = BTreeMap::new();
                let productive =
                    |s: &TaskStatus| matches!(s, TaskStatus::Done(_) | TaskStatus::Failed(_));
                loop {
                    let outstanding: Vec<TaskId> = entries
                        .iter()
                        .filter(|e| e.resolved.is_none())
                        .flat_map(|e| std::iter::once(e.id).chain(e.hedge.map(|(h, _)| h)))
                        .collect();
                    if outstanding.is_empty() {
                        break;
                    }
                    // Adaptive mode bounds each poll request to the
                    // tuned chunk, so poll fan-out tracks dispatch
                    // fan-out; static mode polls everything in one
                    // request, exactly as before.
                    let status: HashMap<TaskId, TaskStatus> = match wave_poll_chunk {
                        Some(chunk) if chunk < outstanding.len() => {
                            let mut m = HashMap::with_capacity(outstanding.len());
                            for ids in outstanding.chunks(chunk.max(1)) {
                                m.extend(
                                    self.faas
                                        .batch_poll(ids)
                                        .into_iter()
                                        .map(|p| (p.id, p.status)),
                                );
                            }
                            m
                        }
                        _ => self
                            .faas
                            .batch_poll(&outstanding)
                            .into_iter()
                            .map(|p| (p.id, p.status))
                            .collect(),
                    };
                    let closing = wave_started.elapsed() >= window;
                    for e in entries.iter_mut() {
                        if e.resolved.is_some() {
                            continue;
                        }
                        let primary = status.get(&e.id).cloned().unwrap_or(TaskStatus::Unknown);
                        let hedge_status = e.hedge.map(|(h, ep)| {
                            (status.get(&h).cloned().unwrap_or(TaskStatus::Unknown), ep)
                        });
                        if productive(&primary) {
                            // The original got there first: a hedge still
                            // in flight lost the race and is cancelled so
                            // its (discarded) result never double-counts.
                            if let Some((_, hep)) = &hedge_status {
                                let (hid, _) = e.hedge.expect("hedge status implies a hedge");
                                self.faas.cancel(hid);
                                hedge_wasted.incr();
                                for fid in &e.fams {
                                    journal.record(Event::HedgeLost {
                                        family: *fid,
                                        loser: *hep,
                                    });
                                }
                            }
                            let latency = wave_started.elapsed().as_secs_f64();
                            latency_hist.observe(latency);
                            if adaptive_on {
                                wave_lat.entry(e.batch.endpoint).or_default().push(latency);
                            }
                            e.resolved = Some((primary, e.batch.endpoint));
                            continue;
                        }
                        if let Some((hs, hep)) = &hedge_status {
                            if productive(hs) {
                                // The hedge won: cancel the original so its
                                // eventual result (if any) is discarded —
                                // only the winner's output is ever decoded.
                                self.faas.cancel(e.id);
                                hedge_won.incr();
                                for fid in &e.fams {
                                    journal.record(Event::HedgeWon {
                                        family: *fid,
                                        winner: *hep,
                                    });
                                }
                                let latency = wave_started.elapsed().as_secs_f64();
                                latency_hist.observe(latency);
                                if adaptive_on {
                                    wave_lat.entry(e.batch.endpoint).or_default().push(latency);
                                }
                                e.resolved = Some((hs.clone(), *hep));
                                continue;
                            }
                        }
                        if primary.is_terminal() {
                            // Lost (or unknown): no result is coming from
                            // the original. A live hedge may still produce
                            // one; failing that, a provably-dead primary is
                            // the clearest hedge trigger of all.
                            if let Some((hs, hep)) = &hedge_status {
                                if !hs.is_terminal() && !closing {
                                    continue;
                                }
                                // Both runners dead (or the window closed):
                                // the hedge never produced a result.
                                let (hid, _) = e.hedge.expect("hedge status implies a hedge");
                                self.faas.cancel(hid);
                                hedge_wasted.incr();
                                for fid in &e.fams {
                                    journal.record(Event::HedgeLost {
                                        family: *fid,
                                        loser: *hep,
                                    });
                                }
                                e.resolved = Some((primary, e.batch.endpoint));
                                continue;
                            }
                            if matches!(primary, TaskStatus::Lost)
                                && spec.hedge.enabled
                                && !closing
                                && !e.breached
                            {
                                e.breached = true;
                                // A hedge is one speculative invocation; a
                                // tenant out of invocation quota forgoes it
                                // and rides the primary alone.
                                let hedge_allowed = tenant.is_none_or(|t| {
                                    t.charge(QuotaResource::Invocations, 1).is_ok()
                                });
                                if let Some(alt) = hedge_allowed
                                    .then(|| {
                                        self.healthy_alternative(
                                            e.batch.endpoint,
                                            spec,
                                            &health.lock(),
                                        )
                                    })
                                    .flatten()
                                {
                                    if let Ok(hid) = self.submit_hedge(&e.batch, alt) {
                                        hedge_launched.incr();
                                        for fid in &e.fams {
                                            journal.record(Event::TaskHedged {
                                                family: *fid,
                                                original: e.batch.endpoint,
                                                hedge: alt,
                                            });
                                        }
                                        e.hedge = Some((hid, alt));
                                        continue;
                                    }
                                }
                            }
                            e.resolved = Some((primary, e.batch.endpoint));
                            continue;
                        }
                        // Still running. Past the adaptive deadline the
                        // endpoint takes a fractional straggler score (soft
                        // evidence — the breaker is untouched) and the task
                        // hedges to the best alternative, if any.
                        if !e.breached && wave_started.elapsed() >= deadline {
                            e.breached = true;
                            health.lock().record_breach(e.batch.endpoint);
                            if spec.hedge.enabled
                                && !closing
                                && tenant
                                    .is_none_or(|t| t.charge(QuotaResource::Invocations, 1).is_ok())
                            {
                                if let Some(alt) =
                                    self.healthy_alternative(e.batch.endpoint, spec, &health.lock())
                                {
                                    if let Ok(hid) = self.submit_hedge(&e.batch, alt) {
                                        hedge_launched.incr();
                                        for fid in &e.fams {
                                            journal.record(Event::TaskHedged {
                                                family: *fid,
                                                original: e.batch.endpoint,
                                                hedge: alt,
                                            });
                                        }
                                        e.hedge = Some((hid, alt));
                                    }
                                }
                            }
                        }
                    }
                    if closing || entries.iter().all(|e| e.resolved.is_some()) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }

                // The *window* gave up, not the tasks: split the leftovers
                // into provably-lost (their endpoint's lease lapsed or is
                // gone) and merely-slow, journal the disposition, and
                // abandon the stale task ids (the next wave resubmits
                // under fresh ones).
                let mut lost_stragglers = 0u64;
                let mut slow_stragglers = 0u64;
                for e in entries.iter_mut().filter(|e| e.resolved.is_none()) {
                    if let Some((hid, hep)) = e.hedge {
                        self.faas.cancel(hid);
                        hedge_wasted.incr();
                        for fid in &e.fams {
                            journal.record(Event::HedgeLost {
                                family: *fid,
                                loser: hep,
                            });
                        }
                    }
                    self.faas.cancel(e.id);
                    let ep = e.batch.endpoint;
                    let alive = self.faas.endpoint(ep).is_some_and(|c| !c.is_expired());
                    if alive {
                        slow_stragglers += 1;
                        e.resolved = Some((TaskStatus::Running, ep));
                    } else {
                        lost_stragglers += 1;
                        e.resolved = Some((TaskStatus::Lost, ep));
                    }
                }
                if lost_stragglers + slow_stragglers > 0 {
                    journal.record(Event::PollWindowExpired {
                        tasks: lost_stragglers + slow_stragglers,
                        window_ms: retry.poll_window_ms,
                        lost: lost_stragglers,
                        slow: slow_stragglers,
                    });
                }

                for e in &entries {
                    let Some((resolution, winner_ep)) = &e.resolved else {
                        continue; // unreachable: every entry resolved above
                    };
                    let (id, kind, fams) = (e.id, e.kind, &e.fams);
                    match resolution {
                        TaskStatus::Done(out) => match decode_results(&out.value) {
                            Ok(results) => {
                                for r in results {
                                    let Some(&i) = index.get(&r.family) else {
                                        continue;
                                    };
                                    let af = &mut active[i];
                                    if let Some(err) = r.error {
                                        // A poisoned family: terminal —
                                        // §2.3's junk files must not wedge
                                        // the job; retrying cannot help.
                                        af.failed = Some(FailureReason::ExtractionFailed {
                                            extractor: kind,
                                            error: err,
                                        });
                                        continue;
                                    }
                                    // One allocation owns the result's
                                    // metadata; checkpoint, WAL batch,
                                    // and flush list all share it.
                                    let metadata = Arc::new(r.metadata);
                                    if use_checkpoint {
                                        checkpoint.flush(
                                            r.family,
                                            kind.name(),
                                            Arc::clone(&metadata),
                                        );
                                    }
                                    if rec.is_some() {
                                        let step = RecoveryRecord::StepCompleted {
                                            family: r.family,
                                            kind,
                                            metadata: Arc::clone(&metadata),
                                            discoveries: r.discoveries.clone(),
                                        };
                                        wal_steps.push(step.clone());
                                        wave_flushes.push(step);
                                    }
                                    af.merged.merge(&metadata);
                                    af.ran.push(kind.name().to_string());
                                    af.plan.complete(kind, &r.discoveries);
                                    wave_touched.insert(r.family);
                                }
                                // Credit whichever endpoint actually
                                // produced the result — the hedge winner's,
                                // not necessarily the family's home.
                                health.lock().record_success(*winner_ep);
                            }
                            Err(e) => {
                                for fid in fams {
                                    let Some(&i) = index.get(fid) else { continue };
                                    active[i].failed = Some(FailureReason::Internal {
                                        reason: format!("undecodable result: {e}"),
                                    });
                                }
                            }
                        },
                        TaskStatus::Failed(e) if e.is_retryable() => {
                            // Transient executor failure (crashed worker,
                            // downed endpoint): the step stays pending and
                            // the next wave resubmits under a fresh id.
                            charge_step_loss(
                                &mut active,
                                &index,
                                fams,
                                kind,
                                e,
                                &format!("{} step failed: {e}", kind.name()),
                                retry,
                                &mut ledger.lock(),
                                &mut health.lock(),
                                &mut report,
                                &journal,
                            );
                        }
                        TaskStatus::Failed(e) => {
                            for fid in fams {
                                let Some(&i) = index.get(fid) else { continue };
                                active[i].failed = Some(FailureReason::ExtractionFailed {
                                    extractor: kind,
                                    error: e.to_string(),
                                });
                            }
                            health.lock().record_failure(*winner_ep);
                        }
                        TaskStatus::Lost => {
                            // Allocation expired, heartbeat vanished, or
                            // the submission fell into a blackout: renew
                            // the endpoint ("resubmit remaining tasks on a
                            // second allocation", §5.8.1) and leave the
                            // step pending so the next wave resubmits.
                            charge_step_loss(
                                &mut active,
                                &index,
                                fams,
                                kind,
                                &XtractError::TaskLost { task: id },
                                &format!("{} task lost", kind.name()),
                                retry,
                                &mut ledger.lock(),
                                &mut health.lock(),
                                &mut report,
                                &journal,
                            );
                            self.faas.renew_endpoint(*winner_ep);
                        }
                        TaskStatus::Cancelled => {
                            // Only ever set by this orchestrator when a
                            // hedge race was decided the other way; a
                            // resolution can't carry it, and a cancelled
                            // task must never be resubmitted — the family
                            // already has its result.
                        }
                        TaskStatus::Unknown => {
                            // The fabric has no record of a task we believe
                            // we submitted — state is corrupt for these
                            // families; retrying cannot reconcile it, so
                            // they dead-letter rather than spin.
                            for fid in fams {
                                let Some(&i) = index.get(fid) else { continue };
                                active[i].failed = Some(FailureReason::Internal {
                                    reason: format!("task {id} unknown to the FaaS fabric"),
                                });
                            }
                        }
                        TaskStatus::Pending | TaskStatus::Running => {
                            // Merely slow, not lost: each family's step
                            // gets one free deadline extension — it stays
                            // pending for the next wave without touching
                            // the retry budget — and only a repeat overrun
                            // charges like a loss.
                            let mut repeat: Vec<FamilyId> = Vec::new();
                            for fid in fams {
                                let Some(&i) = index.get(fid) else { continue };
                                let af = &mut active[i];
                                if af.extended.insert(kind) {
                                    af.timeline.push(FailureEvent {
                                        wave: health.lock().now(),
                                        endpoint: af.exec,
                                        note: format!(
                                            "{} deadline extended (slow, not lost)",
                                            kind.name()
                                        ),
                                    });
                                } else {
                                    repeat.push(*fid);
                                }
                            }
                            if !repeat.is_empty() {
                                charge_step_loss(
                                    &mut active,
                                    &index,
                                    &repeat,
                                    kind,
                                    &XtractError::TaskLost { task: id },
                                    &format!("{} non-terminal after extended wait", kind.name()),
                                    retry,
                                    &mut ledger.lock(),
                                    &mut health.lock(),
                                    &mut report,
                                    &journal,
                                );
                            }
                        }
                    }
                }
                // --- Adaptive feedback: fold this wave's observed latency,
                // breach count, and breaker state into per-endpoint evidence
                // and let the tuner adjust the next wave's batch limits. The
                // wave-exact sample median is primary; the labeled histogram
                // (fed here too, so it survives across waves) is the fallback
                // when a wave resolved no productive samples. ---------------
                if adaptive_on {
                    let mut by_ep: BTreeMap<EndpointId, (u64, u64)> = BTreeMap::new();
                    for e in &entries {
                        let agg = by_ep.entry(e.batch.endpoint).or_default();
                        agg.0 += e.fams.len() as u64;
                        agg.1 += u64::from(e.breached);
                    }
                    for (ep, (fams, breaches)) in by_ep {
                        let label = ep.to_string();
                        let ep_hist = self.obs.hub.histogram_with(
                            "task.latency_s",
                            Some(&label),
                            LATENCY_BOUNDS_S,
                        );
                        let mut samples = wave_lat.remove(&ep).unwrap_or_default();
                        for &s in &samples {
                            ep_hist.observe(s);
                        }
                        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
                        let p50 = if samples.is_empty() {
                            ep_hist.quantile(0.5)
                        } else {
                            Some(samples[(samples.len() - 1) / 2])
                        };
                        let evidence = WaveEvidence {
                            p50_latency_s: p50,
                            samples: samples.len() as u64,
                            families: fams,
                            breaches,
                            breaker_open: health.lock().state(ep) == BreakerState::Open,
                        };
                        match tuner.observe_wave(ep, &evidence) {
                            TuneDecision::Grew => tune_grow.incr(),
                            TuneDecision::BackedOff => tune_backoff.incr(),
                            TuneDecision::Held => {}
                        }
                    }
                }
                // --- Wave commit: one group commit journals everything
                // this wave decided — completed steps, retry-budget deltas,
                // hedge outcomes, newly dead families — then the wave
                // marker. The scheduled kill-points sit exactly at this
                // boundary, so a crashed run never leaves a half-journaled
                // wave: either all of a wave's records are durable or none
                // are. ----------------------------------------------------
                if let Some(ctx) = rec {
                    let wave_no = u64::from(report.waves);
                    let mut batch = std::mem::take(&mut wave_flushes);
                    {
                        // Charges vs. what the log already holds: the delta
                        // also captures charges the staging pool spent on
                        // this family between waves.
                        let l = ledger.lock();
                        for af in active.iter().filter(|af| !af.migrated) {
                            let id = af.family.id;
                            let total = l.attempts(id);
                            let prior = wal_charges.get(&id).copied().unwrap_or(0);
                            if total > prior {
                                batch.push(RecoveryRecord::RetryCharged {
                                    family: id,
                                    amount: total - prior,
                                });
                                wal_charges.insert(id, total);
                            }
                        }
                    }
                    for e in &entries {
                        if let (Some((_, hep)), Some((_, wep))) = (e.hedge, &e.resolved) {
                            for fid in &e.fams {
                                batch.push(RecoveryRecord::HedgeResolved {
                                    family: *fid,
                                    endpoint: hep,
                                    won: *wep == hep,
                                });
                            }
                        }
                    }
                    {
                        let l = ledger.lock();
                        for af in active.iter().filter(|af| !af.migrated) {
                            if let Some(reason) = &af.failed {
                                if let std::collections::hash_map::Entry::Vacant(slot) =
                                    wal_dead.entry(af.family.id)
                                {
                                    let mut letter = DeadLetter::new(
                                        af.family.id,
                                        reason.clone(),
                                        l.attempts(af.family.id),
                                    );
                                    letter.timeline = af.timeline.clone();
                                    slot.insert(letter.clone());
                                    batch.push(RecoveryRecord::DeadLettered { letter });
                                }
                            }
                        }
                    }
                    batch.push(RecoveryRecord::WaveCommitted { wave: wave_no });
                    if crash.hit(CrashPoint::MidWave) {
                        // Clean kill at the commit boundary: the wave's
                        // records land, then the process "dies".
                        batch.push(crash_record(CrashPoint::MidWave));
                        ctx.log.append_batch(&batch)?;
                        return Err(killed(CrashPoint::MidWave));
                    }
                    if crash.hit(CrashPoint::MidFlush) {
                        // Dirty kill: the wave commits, then the process
                        // dies halfway through writing one more frame. The
                        // next open truncates the torn tail without losing
                        // the committed prefix.
                        batch.push(crash_record(CrashPoint::MidFlush));
                        ctx.log.append_batch(&batch)?;
                        ctx.log
                            .append_torn(&RecoveryRecord::WaveCommitted { wave: wave_no })?;
                        return Err(killed(CrashPoint::MidFlush));
                    }
                    ctx.log.append_batch(&batch)?;

                    // Compaction: once the log spreads over enough
                    // segments, restate live state as a snapshot in a fresh
                    // segment and drop the history it supersedes.
                    if ctx.log.segment_count()? >= ctx.log.policy().compact_segments as u64 {
                        let mut snapshot = vec![RecoveryRecord::JobStarted {
                            fingerprint: ctx.fingerprint,
                        }];
                        snapshot.extend(
                            wal_crashes
                                .iter()
                                .map(|p| RecoveryRecord::CrashRecorded { point: p.clone() }),
                        );
                        snapshot.push(RecoveryRecord::CrawlCompleted {
                            crawled_files: report.crawled_files,
                            groups: report.groups,
                            redundant_files: report.redundant_files,
                        });
                        snapshot.extend(
                            planned_families
                                .iter()
                                .map(|f| RecoveryRecord::FamilyPlanned { family: f.clone() }),
                        );
                        snapshot.extend(wal_steps.iter().cloned());
                        let mut charges: Vec<(FamilyId, u32)> = wal_charges
                            .iter()
                            .filter(|(_, n)| **n > 0)
                            .map(|(f, n)| (*f, *n))
                            .collect();
                        charges.sort_unstable_by_key(|(f, _)| *f);
                        snapshot.extend(charges.into_iter().map(|(family, amount)| {
                            RecoveryRecord::RetryCharged { family, amount }
                        }));
                        // Migrations journaled this run segment, in order,
                        // *after* the restated totals: an in-record takes
                        // the max of its carried count and the restated
                        // total (≥ carried by construction), so replaying
                        // the snapshot never double-charges. Adopted
                        // families join the restated plan here; donated
                        // ones leave it.
                        snapshot.extend(wal_migrations.iter().cloned());
                        let mut dead: Vec<&DeadLetter> = wal_dead.values().collect();
                        dead.sort_unstable_by_key(|l| l.family);
                        snapshot.extend(dead.into_iter().map(|letter| {
                            RecoveryRecord::DeadLettered {
                                letter: letter.clone(),
                            }
                        }));
                        let keep = ctx.log.begin_compaction(&snapshot)?;
                        if crash.hit(CrashPoint::MidCompaction) {
                            // Killed between writing the snapshot and
                            // unlinking the old segments: the next open
                            // finds both and finishes the unlink itself.
                            ctx.log.append(&crash_record(CrashPoint::MidCompaction))?;
                            return Err(killed(CrashPoint::MidCompaction));
                        }
                        let removed = ctx.log.finish_compaction(keep)?;
                        journal.record(Event::SnapshotCompacted {
                            records: snapshot.len() as u64 + 1,
                            segments_removed: removed,
                        });
                    }
                }
                // Live ingest at the commit boundary: each touched
                // family's merged-so-far document lands in the serving
                // index under schema "live" (validation replaces it with
                // the final record). Running *after* the group commit
                // keeps the index trailing the log, so a crash here is
                // re-converged by replay on resume.
                if let Some(serving) = &serving {
                    if !wave_touched.is_empty() {
                        let recs: Vec<MetadataRecord> = active
                            .iter()
                            .filter(|af| wave_touched.contains(&af.family.id))
                            .map(|af| MetadataRecord {
                                family: af.family.id,
                                schema: "live".to_string(),
                                document: af.merged.clone(),
                                extractors: af.ran.clone(),
                            })
                            .collect();
                        let n = recs.len() as u64;
                        serving.ingest_all(recs);
                        index_ingested.add(n);
                        index_waves.incr();
                        journal.record(Event::IndexWaveIngested {
                            wave: u64::from(report.waves),
                            records: n,
                        });
                    }
                }
                let extract_s = extract_started.elapsed().as_secs_f64();
                let now_s = job_started.elapsed().as_secs_f64();
                report.phases.add(Phase::Extract, extract_s);
                report
                    .phase_spans
                    .push((Phase::Extract, now_s - extract_s, now_s));
            }
            // Closing the request channel retires the pool; the scope
            // joins the workers on exit.
            drop(req_tx);
            Ok(())
        })?;
        report.phases.add(Phase::Stage, stage_spans.covered());
        report.phase_spans.extend(
            stage_spans
                .intervals()
                .iter()
                .map(|&(s, e)| (Phase::Stage, s, e)),
        );
        let ledger = ledger.into_inner();

        // --- Stage 6.5: clean staged copies once plans are done — every
        // site the family ever staged at, not just the final one, so a
        // reroute leaves nothing behind on the endpoint that went dark. ------
        let index_started = Instant::now();
        if spec.delete_after_extraction {
            for af in &active {
                for (site, base) in &af.staged_sites {
                    if let Ok(ep) = self.fabric.get(*site) {
                        let _ = ep.backend.remove(base);
                    }
                }
            }
        }

        // --- Stage 7: validate and ship records to the user's chosen
        // endpoint (§3). Every family terminates here, in exactly one of
        // `records` or `failures`. -------------------------------------------
        self.auth.check(token, Scope::Validate)?;
        let dest = self
            .fabric
            .get(spec.results_endpoint.unwrap_or(primary.endpoint))?;
        for af in &mut active {
            // A donated family terminates on the shard that adopted it;
            // this shard's out-record is its whole story here.
            if af.migrated {
                continue;
            }
            let attempts = ledger.attempts(af.family.id);
            if let Some(reason) = af.failed.take() {
                let mut letter = DeadLetter::new(af.family.id, reason, attempts);
                letter.timeline = std::mem::take(&mut af.timeline);
                if use_checkpoint {
                    checkpoint.record_dead_letter(letter.clone());
                }
                report.failures.push(letter);
                continue;
            }
            match validate(&af.family, &af.merged, &af.ran, &spec.validation) {
                Ok(record) => {
                    let path = format!("/metadata/fam-{}.json", af.family.id.raw());
                    match dest
                        .backend
                        .write(&path, Bytes::from(encode_record(&record)))
                    {
                        Ok(()) => {
                            // The validated record replaces the family's
                            // live wave-loop version in the serving index.
                            if let Some(serving) = &serving {
                                serving.ingest(record.clone());
                                index_ingested.incr();
                            }
                            report.records.push(record)
                        }
                        Err(e) => report.failures.push(DeadLetter::new(
                            af.family.id,
                            FailureReason::Internal {
                                reason: format!("shipping record failed: {e}"),
                            },
                            attempts,
                        )),
                    }
                }
                Err(XtractError::ValidationFailed { schema, reason }) => {
                    report.failures.push(DeadLetter::new(
                        af.family.id,
                        FailureReason::ValidationRejected { schema, reason },
                        attempts,
                    ))
                }
                Err(e) => report.failures.push(DeadLetter::new(
                    af.family.id,
                    FailureReason::Internal {
                        reason: e.to_string(),
                    },
                    attempts,
                )),
            }
        }
        for letter in &report.failures {
            journal.record(Event::DeadLettered {
                family: letter.family,
                reason: letter.reason.to_string(),
            });
        }
        let index_s = index_started.elapsed().as_secs_f64();
        let now_s = job_started.elapsed().as_secs_f64();
        report.phases.add(Phase::Index, index_s);
        report
            .phase_spans
            .push((Phase::Index, now_s - index_s, now_s));
        // Terminal journal entries: dead letters minted after the wave
        // loop (validation rejections, shipping failures) that the log
        // does not hold yet, then the completion marker — resuming a
        // finished job replays to a no-op.
        if let Some(ctx) = rec {
            let mut tail: Vec<RecoveryRecord> = Vec::new();
            for letter in &report.failures {
                if wal_dead.get(&letter.family) != Some(letter) {
                    wal_dead.insert(letter.family, letter.clone());
                    tail.push(RecoveryRecord::DeadLettered {
                        letter: letter.clone(),
                    });
                }
            }
            tail.push(RecoveryRecord::JobCompleted);
            ctx.log.append_batch(&tail)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtract_datafabric::{MemFs, StorageBackend};
    use xtract_types::config::ContainerRuntime;
    use xtract_types::FaultPlan;

    fn rig(files: u64) -> (XtractService, Token, JobSpec, Arc<DataFabric>) {
        let fabric = Arc::new(DataFabric::new());
        let ep = EndpointId::new(0);
        let fs = Arc::new(MemFs::new(ep));
        xtract_workloads::materialize::sample_repo(
            fs.as_ref(),
            "/data",
            files,
            &RngStreams::new(5),
        );
        fabric.register(ep, "midway", fs);
        let auth = Arc::new(AuthService::new());
        let token = auth.login(
            "grad-student",
            &[
                Scope::Crawl,
                Scope::Extract,
                Scope::Transfer,
                Scope::Validate,
            ],
        );
        let svc = XtractService::new(fabric.clone(), auth, 1);
        let spec = JobSpec::single_endpoint(
            EndpointSpec {
                endpoint: ep,
                read_path: "/data".into(),
                store_path: Some("/stage".into()),
                available_bytes: 1 << 30,
                workers: Some(4),
                runtime: ContainerRuntime::Docker,
            },
            "/data",
        );
        svc.connect_endpoint(&spec.endpoints[0]).unwrap();
        (svc, token, spec, fabric)
    }

    #[test]
    fn end_to_end_extraction_over_real_bytes() {
        let (svc, token, spec, fabric) = rig(30);
        let report = svc.run_job(token, &spec).unwrap();
        assert!(report.crawled_files >= 30);
        assert_eq!(report.failures, vec![]);
        assert_eq!(report.records.len() as u64, report.families);
        assert!(report.waves >= 1);
        // Metadata landed on the destination endpoint.
        let dest = fabric.get(EndpointId::new(0)).unwrap();
        let listed = dest.backend.list("/metadata").unwrap();
        assert_eq!(listed.len(), report.records.len());
        // Keyword extraction actually ran over prose.
        assert!(report.invocations.get("keyword").copied().unwrap_or(0) > 0);
        let has_keywords = report.records.iter().any(|r| {
            r.document
                .get("keyword")
                .and_then(|k| k.get("files"))
                .is_some()
        });
        assert!(has_keywords, "no keyword output in records");
    }

    #[test]
    fn discoveries_trigger_second_wave() {
        // A .txt file with CSV content: keyword discovers tabular, the
        // planner appends tabular + null-value (§5.8.2).
        let fabric = Arc::new(DataFabric::new());
        let ep = EndpointId::new(0);
        let fs = Arc::new(MemFs::new(ep));
        fs.write(
            "/data/disguised.txt",
            Bytes::from_static(b"a,b\n1,2\n3,4\n"),
        )
        .unwrap();
        fabric.register(ep, "midway", fs);
        let auth = Arc::new(AuthService::new());
        let token = auth.login(
            "u",
            &[
                Scope::Crawl,
                Scope::Extract,
                Scope::Transfer,
                Scope::Validate,
            ],
        );
        let svc = XtractService::new(fabric, auth, 2);
        let spec = JobSpec::single_endpoint(
            EndpointSpec {
                endpoint: ep,
                read_path: "/data".into(),
                store_path: Some("/stage".into()),
                available_bytes: 1 << 30,
                workers: Some(2),
                runtime: ContainerRuntime::Docker,
            },
            "/data",
        );
        svc.connect_endpoint(&spec.endpoints[0]).unwrap();
        let report = svc.run_job(token, &spec).unwrap();
        assert!(report.waves >= 2, "discovery needs a second wave");
        let rec = &report.records[0];
        assert!(rec.document.contains("keyword"));
        assert!(rec.document.contains("tabular"));
        assert!(rec.document.contains("null-value"));
        assert_eq!(report.invocations["tabular"], 1);
    }

    #[test]
    fn missing_scope_is_denied() {
        let (svc, _token, spec, _fabric) = rig(5);
        let auth = AuthService::new();
        let weak = auth.login("u", &[Scope::Crawl]);
        // Token from a different AuthService entirely — denied either way.
        assert!(matches!(
            svc.run_job(weak, &spec),
            Err(XtractError::AuthDenied { .. })
        ));
    }

    #[test]
    fn invalid_job_is_rejected_before_any_work() {
        let (svc, token, mut spec, _fabric) = rig(5);
        spec.max_family_size = 0;
        assert!(matches!(
            svc.run_job(token, &spec),
            Err(XtractError::InvalidJob { .. })
        ));
    }

    #[test]
    fn checkpointing_job_completes_identically() {
        let (svc, token, mut spec, _fabric) = rig(24);
        spec.checkpoint = true;
        let report = svc.run_job(token, &spec).unwrap();
        assert!(report.failures.is_empty());
        assert_eq!(report.records.len() as u64, report.families);
    }

    #[test]
    fn job_report_carries_phase_timings_within_wall_clock() {
        let (svc, token, spec, _fabric) = rig(20);
        let started = Instant::now();
        let report = svc.run_job(token, &spec).unwrap();
        let wall = started.elapsed().as_secs_f64();
        let total = report.phases.total();
        assert!(total > 0.0, "no phase time recorded");
        // Stage is accounted as the *union* of the pool's concurrent
        // staging spans (never the sum), and the other phases run
        // sequentially, so the phase total must still fit inside the
        // job's wall clock (plus measurement slop).
        assert!(
            total <= wall + 0.25,
            "phase sum {total}s exceeds wall clock {wall}s"
        );
        assert!(report.phases.get(Phase::Extract) > 0.0);
        // The shared hub saw every substrate of the same job.
        let snap = svc.obs().hub.snapshot();
        // crawl.* is labeled per endpoint; the aggregate is the label sum.
        assert!(snap.counter_sum("crawl.files") >= 20);
        assert!(snap.counter("faas.ws_requests") >= 2);
        assert!(!svc.obs().journal.is_empty(), "journal recorded nothing");
    }

    #[test]
    fn injected_crashes_are_retried_to_completion() {
        // Every task has a 40% chance of its worker crashing mid-execution;
        // resubmission under a fresh task id re-rolls, so every family
        // still completes within its budget.
        let (svc, token, mut spec, _fabric) = rig(16);
        spec.fault_plan = Some(FaultPlan {
            worker_crash_rate: 0.4,
            ..FaultPlan::new(11)
        });
        let report = svc.run_job(token, &spec).unwrap();
        assert_eq!(
            report.records.len() as u64 + report.failures.len() as u64,
            report.families
        );
        assert!(
            report.resubmitted > 0,
            "a 40% crash rate over many tasks should lose at least one"
        );
        // The plan disarms with the job: a clean follow-up run sees none.
        let (svc2, token2, spec2, _f2) = rig(8);
        let clean = svc2.run_job(token2, &spec2).unwrap();
        assert!(clean.failures.is_empty());
    }

    fn recovery_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xtract-service-recovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn recovery_logged_job_completes_and_resume_is_a_noop() {
        let (svc, token, spec, _fabric) = rig(20);
        let dir = recovery_dir("noop");
        let report = svc.run_job_with_recovery(token, &spec, &dir).unwrap();
        assert!(!report.resumed);
        assert!(report.failures.is_empty());
        assert_eq!(report.records.len() as u64, report.families);

        // Resuming a finished job replays everything and re-runs nothing:
        // same records, zero extractor invocations.
        let (svc2, token2, ..) = rig(20);
        let resumed = svc2.resume_job(token2, &spec, &dir).unwrap();
        assert!(resumed.resumed);
        assert!(resumed.replayed_records > 0);
        assert!(resumed.invocations.is_empty(), "resume re-invoked work");
        assert_eq!(resumed.records.len(), report.records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_after_crawl_resumes_to_the_full_record_set() {
        let (svc, token, mut spec, _fabric) = rig(18);
        spec.fault_plan = Some(FaultPlan {
            orchestrator_crashes: vec![xtract_types::OrchestratorCrash {
                point: CrashPoint::AfterCrawl,
                at_occurrence: 1,
            }],
            ..FaultPlan::new(7)
        });
        let dir = recovery_dir("after-crawl");
        let err = svc.run_job_with_recovery(token, &spec, &dir).unwrap_err();
        assert!(matches!(err, XtractError::OrchestratorKilled { .. }));

        // A fresh service (nothing shared but the log) finishes the job.
        let (svc2, token2, ..) = rig(18);
        let resumed = svc2.resume_job(token2, &spec, &dir).unwrap();
        assert!(resumed.resumed);
        assert!(resumed.failures.is_empty());
        assert_eq!(resumed.records.len() as u64, resumed.families);
        assert!(!resumed.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_different_spec() {
        let (svc, token, spec, _fabric) = rig(8);
        let dir = recovery_dir("fingerprint");
        svc.run_job_with_recovery(token, &spec, &dir).unwrap();
        let mut other = spec.clone();
        other.max_family_size += 1;
        assert!(matches!(
            svc.resume_job(token, &other, &dir),
            Err(XtractError::SpecFingerprintMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
