//! The live Xtract service: the end-to-end orchestrator of §3/§4.1,
//! running against real threads, real bytes, and real extractors.
//!
//! Pipeline per job (§3's numbered flow):
//!
//! 1. validate the job and the caller's scopes (Globus-Auth-style);
//! 2. **crawl** every root with the parallel crawler, grouping at crawl
//!    time;
//! 3. pack groups into **min-transfers families** (§4.3.1);
//! 4. **place** each family (source-local if it has compute, otherwise
//!    the primary compute endpoint; the offloader may redirect, §4.3.3);
//! 5. **prefetch** families whose bytes are not at their execution site
//!    (batch transfer + path rewrite, §4.1 "The prefetcher");
//! 6. run the **extraction waves**: each wave batches every family's next
//!    pending extractor two-level (§4.3.2), submits through the FaaS
//!    fabric, polls, merges results, extends plans with discoveries, and
//!    resubmits lost tasks (heartbeat semantics, §5.8.1) — with the
//!    checkpoint store skipping work that already flushed;
//! 7. **validate** finished records and ship them to the destination
//!    endpoint's `/metadata/` prefix (§3 "Validation").

use crate::batcher::Batcher;
use crate::checkpoint::CheckpointStore;
use crate::families::build_families;
use crate::offload::Offloader;
use crate::payload::{decode_results, encode_batch, make_function_body};
use crate::planner::ExtractionPlan;
use crate::validator::{encode_record, validate};
use bytes::Bytes;
use crossbeam_channel::unbounded;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use xtract_crawler::{Crawler, CrawlerConfig};
use xtract_datafabric::{
    AuthService, DataFabric, Scope, Token, TransferRequest, TransferService,
};
use xtract_extractors::{library, Extractor};
use xtract_faas::{
    EndpointConfig, FaasService, FunctionRegistry, TaskSpec, TaskStatus,
};
use xtract_sim::RngStreams;
use xtract_types::id::IdAllocator;
use xtract_types::{
    ContainerId, EndpointId, EndpointSpec, ExtractorKind, Family, FamilyId, FunctionId, JobSpec,
    Metadata, MetadataRecord, Result, XtractError,
};

/// Maximum resubmissions of a lost family-extractor step before recording
/// a permanent failure. Allocation expiries can hit many consecutive
/// waves (§5.8.1's restart took one retry; a chaotic scheduler could take
/// several), so this is generous — loss is always transient.
const MAX_ATTEMPTS: u32 = 12;

/// Outcome of one job.
#[derive(Debug, Default)]
pub struct JobReport {
    /// Files discovered by the crawl.
    pub crawled_files: u64,
    /// Groups emitted by grouping functions.
    pub groups: u64,
    /// Families after min-transfers.
    pub families: u64,
    /// Validated metadata records, by family.
    pub records: Vec<MetadataRecord>,
    /// Permanent failures: `(family, description)`.
    pub failures: Vec<(FamilyId, String)>,
    /// Extractor invocations by name (Table 3's "Total Invocations").
    pub invocations: HashMap<String, u64>,
    /// Bytes the prefetcher moved.
    pub bytes_prefetched: u64,
    /// Redundant transfers min-transfers could not avoid.
    pub redundant_files: u64,
    /// Extraction waves executed.
    pub waves: u32,
    /// Families that were lost to an expiry at least once and resubmitted.
    pub resubmitted: u64,
}

struct ActiveFamily {
    family: Family,
    plan: ExtractionPlan,
    merged: Metadata,
    ran: Vec<String>,
    exec: EndpointId,
    attempts: HashMap<ExtractorKind, u32>,
    failed: Option<String>,
}

/// The live Xtract service.
pub struct XtractService {
    fabric: Arc<DataFabric>,
    auth: Arc<AuthService>,
    transfer: Arc<TransferService>,
    faas: Arc<FaasService>,
    library: HashMap<ExtractorKind, Arc<dyn Extractor>>,
    functions: parking_lot::RwLock<HashMap<(ExtractorKind, EndpointId), FunctionId>>,
    containers: parking_lot::RwLock<HashMap<ExtractorKind, Vec<ContainerId>>>,
    family_ids: IdAllocator,
    streams: RngStreams,
}

impl XtractService {
    /// A service over a data fabric and auth provider.
    pub fn new(fabric: Arc<DataFabric>, auth: Arc<AuthService>, seed: u64) -> Self {
        let registry = Arc::new(FunctionRegistry::new());
        let faas = Arc::new(FaasService::new(registry));
        Self {
            transfer: Arc::new(TransferService::new(fabric.clone(), auth.clone())),
            fabric,
            auth,
            faas,
            library: library(),
            functions: parking_lot::RwLock::new(HashMap::new()),
            containers: parking_lot::RwLock::new(HashMap::new()),
            family_ids: IdAllocator::new(),
            streams: RngStreams::new(seed),
        }
    }

    /// The underlying transfer service (byte accounting for experiments).
    pub fn transfer_service(&self) -> &Arc<TransferService> {
        &self.transfer
    }

    /// The underlying FaaS fabric (statistics, fault injection).
    pub fn faas(&self) -> &Arc<FaasService> {
        &self.faas
    }

    /// Connects an endpoint's compute layer and registers every extractor
    /// for it (the §4.1 `function:container:endpoints` tuples).
    pub fn connect_endpoint(&self, spec: &EndpointSpec) -> Result<()> {
        let Some(workers) = spec.workers.filter(|&w| w > 0) else {
            return Ok(()); // storage-only endpoint: nothing to connect
        };
        self.faas.registry().declare_endpoint(spec.endpoint, spec.runtime);
        self.faas
            .connect_endpoint(EndpointConfig::instant(spec.endpoint, workers));
        for (&kind, extractor) in &self.library {
            let container = self.faas.registry().register_container(
                format!("xtract-{}:{:?}", kind.name(), spec.runtime),
                spec.runtime,
                256 << 20,
            );
            self.containers.write().entry(kind).or_default().push(container);
            let body = make_function_body(extractor.clone(), self.fabric.clone());
            let function = self.faas.registry().register_function(
                kind.name(),
                container,
                &[spec.endpoint],
                body,
            )?;
            self.functions.write().insert((kind, spec.endpoint), function);
        }
        Ok(())
    }

    fn function_for(&self, kind: ExtractorKind, endpoint: EndpointId) -> Result<FunctionId> {
        self.functions
            .read()
            .get(&(kind, endpoint))
            .copied()
            .ok_or(XtractError::NoCompatibleEndpoint {
                container: format!("{} @ {endpoint}", kind.name()),
            })
    }

    /// Runs a bulk extraction job to completion.
    pub fn run_job(&self, token: Token, spec: &JobSpec) -> Result<JobReport> {
        spec.validate().map_err(|reason| XtractError::InvalidJob { reason })?;
        self.auth.check(token, Scope::Crawl)?;
        self.auth.check(token, Scope::Extract)?;

        let mut report = JobReport::default();
        let checkpoint = CheckpointStore::new();

        // --- Stages 2+3, overlapped: crawl on background threads while the
        // service packages min-transfers families from directories as they
        // stream in ("the crawler asynchronously enqueues it for processing
        // by the Xtract service", §4.3.1; §5.8.1: extraction state is ready
        // "within 3 seconds of the crawler being initiated"). ---------------
        let (tx, rx) = unbounded();
        let mut crawl_threads = Vec::with_capacity(spec.roots.len());
        for (ep, root) in &spec.roots {
            let backend = self.fabric.get(*ep)?.backend;
            let tx = tx.clone();
            let ep = *ep;
            let root = root.clone();
            let workers = spec.crawl_workers;
            let grouping = spec.grouping;
            crawl_threads.push(std::thread::spawn(move || {
                let crawler = Crawler::new(CrawlerConfig { workers, grouping });
                crawler.crawl(ep, &backend, &[root], tx)
            }));
        }
        drop(tx);

        let mut families: Vec<Family> = Vec::new();
        for (dir_i, dir) in rx.into_iter().enumerate() {
            report.crawled_files += dir.files.len() as u64;
            report.groups += dir.groups.len() as u64;
            if dir.groups.is_empty() {
                continue;
            }
            let file_map: HashMap<String, xtract_types::FileRecord> = dir
                .files
                .iter()
                .map(|f| (f.path.clone(), f.clone()))
                .collect();
            let mut rng = self.streams.substream("min-transfers", dir_i as u64);
            let set = build_families(
                &file_map,
                dir.groups,
                dir.endpoint,
                spec.max_family_size,
                &self.family_ids,
                &mut rng,
            );
            report.redundant_files += set.redundant_files;
            families.extend(set.families);
        }
        for handle in crawl_threads {
            handle.join().expect("crawl thread panicked")?;
        }
        report.families = families.len() as u64;

        // --- Stage 4: placement. -------------------------------------------
        let primary = spec
            .endpoints
            .iter()
            .find(|e| e.has_compute())
            .expect("validated: at least one compute endpoint");
        let secondary = spec
            .endpoints
            .iter()
            .filter(|e| e.has_compute())
            .nth(1)
            .map(|e| e.endpoint);
        let mut offloader = Offloader::new(
            spec.offload,
            primary.endpoint,
            secondary,
            self.streams.seed() ^ 0x0ff1,
        );
        let by_endpoint: HashMap<EndpointId, &EndpointSpec> =
            spec.endpoints.iter().map(|e| (e.endpoint, e)).collect();

        let mut active: Vec<ActiveFamily> = Vec::with_capacity(families.len());
        for mut family in families {
            let source_spec = by_endpoint.get(&family.source);
            let local_ok = source_spec.is_some_and(|e| e.has_compute());
            let mut exec = if local_ok { family.source } else { primary.endpoint };
            // The offloader may redirect anywhere (§4.3.3 RAND applies a
            // percentage of all files).
            let placed = offloader.place(&family);
            if placed != primary.endpoint {
                exec = placed;
            }
            // --- Stage 5: prefetch if bytes are elsewhere. ----------------
            if exec != family.source {
                let dest_spec =
                    by_endpoint
                        .get(&exec)
                        .copied()
                        .ok_or(XtractError::NoComputeLayer { endpoint: exec })?;
                let store = dest_spec.store_path.clone().ok_or(XtractError::NoComputeLayer {
                    endpoint: exec,
                })?;
                let base = format!("{store}/fam-{}", family.id.raw());
                let moves: Vec<(String, String)> = family
                    .files
                    .iter()
                    .map(|f| (f.path.clone(), format!("{base}{}", f.path)))
                    .collect();
                let id = self.transfer.submit(
                    token,
                    &TransferRequest {
                        source: family.source,
                        destination: exec,
                        files: moves,
                    },
                )?;
                let receipt = self.transfer.status(id).expect("just submitted");
                if !receipt.is_complete() {
                    // Retry failures once ("polls each transfer task until
                    // it is completed"); then give up on the family.
                    let retry: Vec<(String, String)> = receipt
                        .failed
                        .iter()
                        .map(|(p, _)| (p.clone(), format!("{base}{p}")))
                        .collect();
                    let id2 = self.transfer.submit(
                        token,
                        &TransferRequest {
                            source: family.source,
                            destination: exec,
                            files: retry,
                        },
                    )?;
                    let second = self.transfer.status(id2).expect("just submitted");
                    report.bytes_prefetched += second.bytes_moved;
                    if !second.is_complete() {
                        report.failures.push((
                            family.id,
                            format!("prefetch failed for {} files", second.failed.len()),
                        ));
                        continue;
                    }
                }
                report.bytes_prefetched += receipt.bytes_moved;
                // Rewrite records to the staged location.
                for f in &mut family.files {
                    f.path = format!("{base}{}", f.path);
                    f.endpoint = exec;
                }
                family.base_path = Some(base);
                // The files now live at the execution endpoint.
                family.source = exec;
            }
            let plan = ExtractionPlan::for_family(&family);
            active.push(ActiveFamily {
                family,
                plan,
                merged: Metadata::new(),
                ran: Vec::new(),
                exec,
                attempts: HashMap::new(),
                failed: None,
            });
        }

        // --- Stage 6: extraction waves. ------------------------------------
        loop {
            let mut batcher = Batcher::new(spec.xtract_batch_size, spec.funcx_batch_size);
            let mut wave = Vec::new();
            let mut index: HashMap<FamilyId, usize> = HashMap::new();
            let mut kind_of: HashMap<FamilyId, ExtractorKind> = HashMap::new();
            for (i, af) in active.iter_mut().enumerate() {
                if af.failed.is_some() {
                    continue;
                }
                let Some(kind) = af.plan.next() else { continue };
                // Checkpointed output short-circuits re-execution after a
                // loss (§5.8.1: "the metadata are re-loaded").
                if spec.checkpoint {
                    if let Some(md) = checkpoint.load(af.family.id, kind.name()) {
                        af.merged.merge(&md);
                        af.ran.push(kind.name().to_string());
                        af.plan.complete_simple(kind);
                        continue;
                    }
                }
                index.insert(af.family.id, i);
                kind_of.insert(af.family.id, kind);
                wave.extend(batcher.push(af.family.clone(), kind, af.exec));
            }
            wave.extend(batcher.flush());
            if wave.is_empty() {
                // Re-check: checkpoint short-circuits may have advanced
                // plans; loop once more if anything is still pending.
                if active
                    .iter()
                    .all(|af| af.failed.is_some() || af.plan.is_done())
                {
                    break;
                }
                continue;
            }
            report.waves += 1;

            // Submit: one batch_submit per funcX batch (§4.3.2).
            let mut submitted: Vec<(xtract_types::TaskId, ExtractorKind, Vec<FamilyId>)> =
                Vec::new();
            for funcx_batch in &wave {
                let mut specs = Vec::with_capacity(funcx_batch.tasks.len());
                let mut members: Vec<(ExtractorKind, Vec<FamilyId>)> = Vec::new();
                for task in &funcx_batch.tasks {
                    let function = self.function_for(task.extractor, task.endpoint)?;
                    // Staged copies are cleaned after the *whole plan*
                    // finishes (a family may still need them for later
                    // extractors), so the per-batch flag stays off here.
                    specs.push(TaskSpec {
                        function,
                        endpoint: task.endpoint,
                        payload: encode_batch(task, false),
                    });
                    members.push((
                        task.extractor,
                        task.families.iter().map(|f| f.id).collect(),
                    ));
                }
                let ids = self.faas.batch_submit(&specs);
                for (id, (kind, fams)) in ids.into_iter().zip(members) {
                    *report.invocations.entry(kind.name().to_string()).or_insert(0) +=
                        fams.len() as u64;
                    submitted.push((id, kind, fams));
                }
            }

            // Poll until terminal (batched polling, §4.3.2).
            let ids: Vec<_> = submitted.iter().map(|(id, _, _)| *id).collect();
            if !self.faas.wait_all(&ids, Duration::from_secs(120)) {
                return Err(XtractError::InvalidJob {
                    reason: "FaaS wave timed out".to_string(),
                });
            }
            let polled = self.faas.batch_poll(&ids);
            for (p, (_, kind, fams)) in polled.iter().zip(&submitted) {
                match &p.status {
                    TaskStatus::Done(out) => {
                        let results = decode_results(&out.value)?;
                        for r in results {
                            let af = &mut active[index[&r.family]];
                            if let Some(err) = r.error {
                                // A poisoned family: record and stop its
                                // plan (§2.3's junk files must not wedge
                                // the job).
                                af.failed = Some(format!("{}: {err}", kind.name()));
                                continue;
                            }
                            if spec.checkpoint {
                                checkpoint.flush(r.family, kind.name(), r.metadata.clone());
                            }
                            af.merged.merge(&r.metadata);
                            af.ran.push(kind.name().to_string());
                            af.plan.complete(*kind, &r.discoveries);
                        }
                    }
                    TaskStatus::Failed(e) => {
                        for fid in fams {
                            let af = &mut active[index[fid]];
                            af.failed = Some(e.to_string());
                        }
                    }
                    TaskStatus::Lost => {
                        // Allocation expired under the task: renew the
                        // endpoint ("resubmit remaining tasks on a second
                        // allocation", §5.8.1) and leave the step pending
                        // so the next wave resubmits.
                        for fid in fams {
                            let af = &mut active[index[fid]];
                            let n = af.attempts.entry(*kind).or_insert(0);
                            *n += 1;
                            report.resubmitted += 1;
                            if *n >= MAX_ATTEMPTS {
                                af.failed =
                                    Some(format!("{} lost {n} times", kind.name()));
                            }
                        }
                        if let Some(fid) = fams.first() {
                            let ep = active[index[fid]].exec;
                            self.faas.renew_endpoint(ep);
                        }
                    }
                    other => {
                        return Err(XtractError::InvalidJob {
                            reason: format!("non-terminal status after wait: {other:?}"),
                        })
                    }
                }
            }
        }

        // --- Stage 6.5: clean staged copies once plans are done. -----------
        if spec.delete_after_extraction {
            for af in &active {
                if let Some(base) = &af.family.base_path {
                    if let Ok(ep) = self.fabric.get(af.exec) {
                        let _ = ep.backend.remove(base);
                    }
                }
            }
        }

        // --- Stage 7: validate and ship records to the user's chosen
        // endpoint (§3). -----------------------------------------------------
        self.auth.check(token, Scope::Validate)?;
        let dest = self.fabric.get(spec.results_endpoint.unwrap_or(primary.endpoint))?;
        for af in &active {
            if let Some(reason) = &af.failed {
                report.failures.push((af.family.id, reason.clone()));
                continue;
            }
            match validate(&af.family, &af.merged, &af.ran, &spec.validation) {
                Ok(record) => {
                    let path = format!("/metadata/fam-{}.json", af.family.id.raw());
                    dest.backend.write(&path, Bytes::from(encode_record(&record)))?;
                    report.records.push(record);
                }
                Err(e) => report.failures.push((af.family.id, e.to_string())),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtract_datafabric::{MemFs, StorageBackend};
    use xtract_types::config::ContainerRuntime;

    fn rig(files: u64) -> (XtractService, Token, JobSpec, Arc<DataFabric>) {
        let fabric = Arc::new(DataFabric::new());
        let ep = EndpointId::new(0);
        let fs = Arc::new(MemFs::new(ep));
        xtract_workloads::materialize::sample_repo(fs.as_ref(), "/data", files, &RngStreams::new(5));
        fabric.register(ep, "midway", fs);
        let auth = Arc::new(AuthService::new());
        let token = auth.login(
            "grad-student",
            &[Scope::Crawl, Scope::Extract, Scope::Transfer, Scope::Validate],
        );
        let svc = XtractService::new(fabric.clone(), auth, 1);
        let spec = JobSpec::single_endpoint(
            EndpointSpec {
                endpoint: ep,
                read_path: "/data".into(),
                store_path: Some("/stage".into()),
                available_bytes: 1 << 30,
                workers: Some(4),
                runtime: ContainerRuntime::Docker,
            },
            "/data",
        );
        svc.connect_endpoint(&spec.endpoints[0]).unwrap();
        (svc, token, spec, fabric)
    }

    #[test]
    fn end_to_end_extraction_over_real_bytes() {
        let (svc, token, spec, fabric) = rig(30);
        let report = svc.run_job(token, &spec).unwrap();
        assert!(report.crawled_files >= 30);
        assert_eq!(report.failures, vec![]);
        assert_eq!(report.records.len() as u64, report.families);
        assert!(report.waves >= 1);
        // Metadata landed on the destination endpoint.
        let dest = fabric.get(EndpointId::new(0)).unwrap();
        let listed = dest.backend.list("/metadata").unwrap();
        assert_eq!(listed.len(), report.records.len());
        // Keyword extraction actually ran over prose.
        assert!(report.invocations.get("keyword").copied().unwrap_or(0) > 0);
        let has_keywords = report.records.iter().any(|r| {
            r.document
                .get("keyword")
                .and_then(|k| k.get("files"))
                .is_some()
        });
        assert!(has_keywords, "no keyword output in records");
    }

    #[test]
    fn discoveries_trigger_second_wave() {
        // A .txt file with CSV content: keyword discovers tabular, the
        // planner appends tabular + null-value (§5.8.2).
        let fabric = Arc::new(DataFabric::new());
        let ep = EndpointId::new(0);
        let fs = Arc::new(MemFs::new(ep));
        fs.write("/data/disguised.txt", Bytes::from_static(b"a,b\n1,2\n3,4\n"))
            .unwrap();
        fabric.register(ep, "midway", fs);
        let auth = Arc::new(AuthService::new());
        let token = auth.login("u", &[Scope::Crawl, Scope::Extract, Scope::Transfer, Scope::Validate]);
        let svc = XtractService::new(fabric, auth, 2);
        let spec = JobSpec::single_endpoint(
            EndpointSpec {
                endpoint: ep,
                read_path: "/data".into(),
                store_path: Some("/stage".into()),
                available_bytes: 1 << 30,
                workers: Some(2),
                runtime: ContainerRuntime::Docker,
            },
            "/data",
        );
        svc.connect_endpoint(&spec.endpoints[0]).unwrap();
        let report = svc.run_job(token, &spec).unwrap();
        assert!(report.waves >= 2, "discovery needs a second wave");
        let rec = &report.records[0];
        assert!(rec.document.contains("keyword"));
        assert!(rec.document.contains("tabular"));
        assert!(rec.document.contains("null-value"));
        assert_eq!(report.invocations["tabular"], 1);
    }

    #[test]
    fn missing_scope_is_denied() {
        let (svc, _token, spec, _fabric) = rig(5);
        let auth = AuthService::new();
        let weak = auth.login("u", &[Scope::Crawl]);
        // Token from a different AuthService entirely — denied either way.
        assert!(matches!(
            svc.run_job(weak, &spec),
            Err(XtractError::AuthDenied { .. })
        ));
    }

    #[test]
    fn invalid_job_is_rejected_before_any_work() {
        let (svc, token, mut spec, _fabric) = rig(5);
        spec.max_family_size = 0;
        assert!(matches!(
            svc.run_job(token, &spec),
            Err(XtractError::InvalidJob { .. })
        ));
    }

    #[test]
    fn checkpointing_job_completes_identically() {
        let (svc, token, mut spec, _fabric) = rig(24);
        spec.checkpoint = true;
        let report = svc.run_job(token, &spec).unwrap();
        assert!(report.failures.is_empty());
        assert_eq!(report.records.len() as u64, report.families);
    }
}
