//! The validation service (§3 "Validation (and Transformation)", §4.1).
//!
//! "The validation step ensures that resulting metadata have all required
//! attributes; it can also, optionally, transform the metadata into a
//! schema more amenable for subsequent use. ... e.g., the 'passthrough'
//! validator that converts a metadata dictionary into valid JSON, and the
//! MDF validator that adapts extracted metadata to one of 12 schemas."
//!
//! Validated records are shipped to a user-chosen endpoint as JSON
//! documents (here: written under `/metadata/` on the destination's data
//! layer).

use serde_json::json;
use xtract_types::{Family, Metadata, MetadataRecord, Result, ValidationSchema, XtractError};

/// The twelve MDF schema names (§4.1 mentions 12; names synthesized from
/// MDF's public material classes).
pub const MDF_SCHEMAS: [&str; 12] = [
    "mdf-base",
    "mdf-dft",
    "mdf-md",
    "mdf-image",
    "mdf-spectroscopy",
    "mdf-crystal",
    "mdf-em",
    "mdf-tabular",
    "mdf-text",
    "mdf-synthesis",
    "mdf-characterization",
    "mdf-generic",
];

/// Validates (and optionally transforms) a family's merged metadata.
pub fn validate(
    family: &Family,
    merged: &Metadata,
    extractors: &[String],
    schema: &ValidationSchema,
) -> Result<MetadataRecord> {
    match schema {
        ValidationSchema::Passthrough => {
            // Passthrough: the dictionary must serialize to valid JSON —
            // true by construction, but verify round-trip to honour the
            // contract.
            let encoded =
                serde_json::to_string(&merged).map_err(|e| XtractError::ValidationFailed {
                    schema: "passthrough".to_string(),
                    reason: e.to_string(),
                })?;
            let _ = encoded;
            Ok(MetadataRecord {
                family: family.id,
                schema: "passthrough".to_string(),
                document: merged.clone(),
                extractors: extractors.to_vec(),
            })
        }
        ValidationSchema::Mdf(name) => {
            if !MDF_SCHEMAS.contains(&name.as_str()) {
                return Err(XtractError::ValidationFailed {
                    schema: name.clone(),
                    reason: "unknown MDF schema".to_string(),
                });
            }
            if merged.is_empty() {
                return Err(XtractError::ValidationFailed {
                    schema: name.clone(),
                    reason: "empty metadata document".to_string(),
                });
            }
            // MDF transformation: wrap extractor outputs under `mdf` with
            // provenance and file inventory — the "schema more amenable
            // for subsequent use".
            let mut doc = Metadata::new();
            doc.insert(
                "mdf",
                json!({
                    "schema": name,
                    "source": family.source.to_string(),
                    "files": family
                        .files
                        .iter()
                        .map(|f| json!({"path": f.path, "size": f.size, "type": f.hint.label()}))
                        .collect::<Vec<_>>(),
                    "extractors": extractors,
                }),
            );
            doc.insert("extracted", serde_json::Value::Object(merged.0.clone()));
            Ok(MetadataRecord {
                family: family.id,
                schema: name.clone(),
                document: doc,
                extractors: extractors.to_vec(),
            })
        }
        ValidationSchema::Custom(name) => {
            // Custom schemas must at least declare required provenance.
            if extractors.is_empty() {
                return Err(XtractError::ValidationFailed {
                    schema: name.clone(),
                    reason: "no extractor provenance".to_string(),
                });
            }
            Ok(MetadataRecord {
                family: family.id,
                schema: name.clone(),
                document: merged.clone(),
                extractors: extractors.to_vec(),
            })
        }
    }
}

/// Serializes a record for shipment to the user's endpoint (§3: "sends a
/// valid JSON document to a user's Globus endpoint").
pub fn encode_record(record: &MetadataRecord) -> Vec<u8> {
    serde_json::to_vec_pretty(record).expect("record serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtract_types::{EndpointId, FamilyId, FileRecord, FileType, Group, GroupId};

    fn family() -> Family {
        let f = FileRecord::new("/d/a.csv", 9, EndpointId::new(3), FileType::Tabular);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        Family::new(FamilyId::new(5), vec![f], vec![g], EndpointId::new(3))
    }

    fn merged() -> Metadata {
        let mut m = Metadata::new();
        m.insert("tabular", json!({"rows": 3}));
        m
    }

    #[test]
    fn passthrough_preserves_document() {
        let rec = validate(
            &family(),
            &merged(),
            &["tabular".into()],
            &ValidationSchema::Passthrough,
        )
        .unwrap();
        assert_eq!(rec.schema, "passthrough");
        assert_eq!(rec.document, merged());
        assert_eq!(rec.family, FamilyId::new(5));
    }

    #[test]
    fn mdf_transforms_with_provenance() {
        let rec = validate(
            &family(),
            &merged(),
            &["tabular".into()],
            &ValidationSchema::Mdf("mdf-tabular".into()),
        )
        .unwrap();
        let mdf = rec.document.get("mdf").unwrap();
        assert_eq!(mdf["schema"], "mdf-tabular");
        assert_eq!(mdf["files"][0]["path"], "/d/a.csv");
        assert_eq!(mdf["extractors"][0], "tabular");
        assert!(rec.document.contains("extracted"));
    }

    #[test]
    fn unknown_mdf_schema_rejected() {
        let err = validate(
            &family(),
            &merged(),
            &[],
            &ValidationSchema::Mdf("mdf-nope".into()),
        )
        .unwrap_err();
        assert!(matches!(err, XtractError::ValidationFailed { .. }));
    }

    #[test]
    fn mdf_rejects_empty_documents() {
        let err = validate(
            &family(),
            &Metadata::new(),
            &["x".into()],
            &ValidationSchema::Mdf("mdf-base".into()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn custom_requires_provenance() {
        assert!(validate(
            &family(),
            &merged(),
            &[],
            &ValidationSchema::Custom("lab".into())
        )
        .is_err());
        assert!(validate(
            &family(),
            &merged(),
            &["kw".into()],
            &ValidationSchema::Custom("lab".into())
        )
        .is_ok());
    }

    #[test]
    fn encoded_record_is_valid_json() {
        let rec = validate(
            &family(),
            &merged(),
            &["tabular".into()],
            &ValidationSchema::Passthrough,
        )
        .unwrap();
        let bytes = encode_record(&rec);
        let back: serde_json::Value = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back["schema"], "passthrough");
    }

    #[test]
    fn twelve_schemas_exist() {
        assert_eq!(MDF_SCHEMAS.len(), 12);
        let unique: std::collections::HashSet<_> = MDF_SCHEMAS.iter().collect();
        assert_eq!(unique.len(), 12);
    }
}
