//! Duplicate and near-duplicate detection (§7, future work: "To
//! facilitate efficient file storage use, we will explore methods for
//! identifying duplicated or nearly-duplicated data"; §6 situates
//! file-level deduplication as the classic content-blind analysis).
//!
//! Two tiers, both content-based:
//!
//! * **Exact** — a 64-bit FNV-1a digest of the full byte stream groups
//!   byte-identical files (the "are equivalent" relation of §6).
//! * **Near** — MinHash over 8-byte shingles: `k` independent permutations
//!   approximate Jaccard similarity of the shingle sets, so two files
//!   differing by a small edit still land above the similarity threshold.
//!   This is the "nearly-duplicated" extension the paper defers.

use std::collections::HashMap;

/// Number of MinHash permutations (64 gives ±~12 % Jaccard error at 95 %
/// confidence — plenty for a duplicate screen).
pub const MINHASH_PERMUTATIONS: usize = 64;

/// A file's content signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Exact 64-bit content digest.
    pub digest: u64,
    /// Byte length.
    pub len: u64,
    /// MinHash sketch over 8-byte shingles.
    pub minhash: [u64; MINHASH_PERMUTATIONS],
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64: cheap independent hash families for the permutations.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Computes a signature for a byte stream.
pub fn signature(bytes: &[u8]) -> Signature {
    let mut minhash = [u64::MAX; MINHASH_PERMUTATIONS];
    if bytes.len() >= 8 {
        for window in bytes.windows(8).step_by(4) {
            let shingle = u64::from_le_bytes(window.try_into().expect("8-byte window"));
            let base = mix(shingle);
            for (i, slot) in minhash.iter_mut().enumerate() {
                let h = mix(base ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                if h < *slot {
                    *slot = h;
                }
            }
        }
    } else {
        // Tiny files: hash the whole content into every slot so identical
        // tiny files still match.
        let base = mix(fnv1a(bytes));
        for (i, slot) in minhash.iter_mut().enumerate() {
            *slot = mix(base ^ i as u64);
        }
    }
    Signature {
        digest: fnv1a(bytes),
        len: bytes.len() as u64,
        minhash,
    }
}

/// Estimated Jaccard similarity of two signatures' shingle sets.
pub fn similarity(a: &Signature, b: &Signature) -> f64 {
    let agree = a
        .minhash
        .iter()
        .zip(&b.minhash)
        .filter(|(x, y)| x == y)
        .count();
    agree as f64 / MINHASH_PERMUTATIONS as f64
}

/// A cluster of paths considered duplicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateCluster {
    /// Member paths (≥ 2).
    pub paths: Vec<String>,
    /// True if members are byte-identical; false for near-duplicates.
    pub exact: bool,
    /// Reclaimable bytes if all but one copy were dropped (exact clusters
    /// only; near-duplicates report 0).
    pub reclaimable_bytes: u64,
}

/// The duplicate detector: feed signatures, then ask for clusters.
///
/// ```
/// use xtract_core::dedup::Deduplicator;
///
/// let mut d = Deduplicator::new();
/// d.add_bytes("/a/orig.csv", b"year,co2\n1990,354\n");
/// d.add_bytes("/backup/orig.csv", b"year,co2\n1990,354\n");
/// let clusters = d.exact_clusters();
/// assert_eq!(clusters[0].paths.len(), 2);
/// assert!(clusters[0].exact);
/// ```
#[derive(Debug, Default)]
pub struct Deduplicator {
    entries: Vec<(String, Signature)>,
}

impl Deduplicator {
    /// An empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one file's signature.
    pub fn add(&mut self, path: impl Into<String>, sig: Signature) {
        self.entries.push((path.into(), sig));
    }

    /// Convenience: signature + add.
    pub fn add_bytes(&mut self, path: impl Into<String>, bytes: &[u8]) {
        self.add(path, signature(bytes));
    }

    /// Files recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact clusters: groups with identical digests (and lengths — a
    /// 64-bit digest alone is not a collision-free identity claim).
    pub fn exact_clusters(&self) -> Vec<DuplicateCluster> {
        let mut groups: HashMap<(u64, u64), Vec<&str>> = HashMap::new();
        for (path, sig) in &self.entries {
            groups.entry((sig.digest, sig.len)).or_default().push(path);
        }
        let mut out: Vec<DuplicateCluster> = groups
            .into_iter()
            .filter(|(_, paths)| paths.len() > 1)
            .map(|((_, len), mut paths)| {
                paths.sort_unstable();
                DuplicateCluster {
                    reclaimable_bytes: len * (paths.len() as u64 - 1),
                    paths: paths.into_iter().map(str::to_string).collect(),
                    exact: true,
                }
            })
            .collect();
        out.sort_by(|a, b| a.paths[0].cmp(&b.paths[0]));
        out
    }

    /// Near-duplicate clusters at the given Jaccard `threshold` (0–1):
    /// connected components of the pairwise similarity graph, with exact
    /// duplicates subsumed. Pairwise over candidate buckets (files within
    /// 2× length of each other) — fine for repository-audit scale.
    pub fn near_clusters(&self, threshold: f64) -> Vec<DuplicateCluster> {
        assert!((0.0..=1.0).contains(&threshold));
        let n = self.entries.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (&self.entries[i].1, &self.entries[j].1);
                // Length pre-filter: very different sizes cannot be near
                // duplicates.
                if a.len.max(b.len) > 2 * a.len.min(b.len).max(1) {
                    continue;
                }
                if similarity(a, b) >= threshold {
                    let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        let mut out: Vec<DuplicateCluster> = groups
            .into_values()
            .filter(|members| members.len() > 1)
            .map(|members| {
                let exact = members
                    .windows(2)
                    .all(|w| self.entries[w[0]].1.digest == self.entries[w[1]].1.digest);
                let mut paths: Vec<String> =
                    members.iter().map(|&i| self.entries[i].0.clone()).collect();
                paths.sort_unstable();
                let reclaimable = if exact {
                    self.entries[members[0]].1.len * (members.len() as u64 - 1)
                } else {
                    0
                };
                DuplicateCluster {
                    paths,
                    exact,
                    reclaimable_bytes: reclaimable,
                }
            })
            .collect();
        out.sort_by(|a, b| a.paths[0].cmp(&b.paths[0]));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_bytes_are_exact_duplicates() {
        let mut d = Deduplicator::new();
        d.add_bytes("/a/report.txt", b"the same content in both files");
        d.add_bytes("/b/copy.txt", b"the same content in both files");
        d.add_bytes("/c/other.txt", b"something different entirely!!");
        let clusters = d.exact_clusters();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].paths, vec!["/a/report.txt", "/b/copy.txt"]);
        assert!(clusters[0].exact);
        assert_eq!(clusters[0].reclaimable_bytes, 30);
    }

    #[test]
    fn near_duplicates_survive_small_edits() {
        let base: String = "observation record line with co2 and temp values\n".repeat(60);
        let mut edited = base.clone();
        edited.push_str("one appended trailer line\n");
        let sim = similarity(&signature(base.as_bytes()), &signature(edited.as_bytes()));
        assert!(sim > 0.8, "similarity {sim}");
        let mut d = Deduplicator::new();
        d.add_bytes("/orig", base.as_bytes());
        d.add_bytes("/edited", edited.as_bytes());
        d.add_bytes(
            "/unrelated",
            "completely different words are present here only"
                .repeat(60)
                .as_bytes(),
        );
        let clusters = d.near_clusters(0.7);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].paths, vec!["/edited", "/orig"]);
        assert!(!clusters[0].exact);
    }

    #[test]
    fn unrelated_content_is_dissimilar() {
        let a = signature("alpha beta gamma delta ".repeat(100).as_bytes());
        let b = signature("zero one two three four ".repeat(100).as_bytes());
        assert!(similarity(&a, &b) < 0.2);
    }

    #[test]
    fn length_prefilter_blocks_absurd_pairs() {
        let mut d = Deduplicator::new();
        let short = "abcdefgh".repeat(4);
        let long = "abcdefgh".repeat(500);
        d.add_bytes("/short", short.as_bytes());
        d.add_bytes("/long", long.as_bytes());
        // High shingle overlap (same repeating unit) but 100x length gap.
        assert!(d.near_clusters(0.5).is_empty());
    }

    #[test]
    fn tiny_files_match_only_exactly() {
        let a = signature(b"abc");
        let b = signature(b"abc");
        let c = signature(b"abd");
        assert_eq!(similarity(&a, &b), 1.0);
        assert!(similarity(&a, &c) < 0.5);
    }

    proptest! {
        /// Similarity is reflexive, symmetric, and bounded.
        #[test]
        fn similarity_properties(a in proptest::collection::vec(any::<u8>(), 0..600),
                                 b in proptest::collection::vec(any::<u8>(), 0..600)) {
            let sa = signature(&a);
            let sb = signature(&b);
            prop_assert!((similarity(&sa, &sa) - 1.0).abs() < 1e-12);
            let ab = similarity(&sa, &sb);
            let ba = similarity(&sb, &sa);
            prop_assert_eq!(ab.to_bits(), ba.to_bits());
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        /// Exact clustering groups equal byte strings and nothing else
        /// (up to 64-bit digest collisions, astronomically unlikely in
        /// these inputs).
        #[test]
        fn exact_clusters_partition_correctly(
            contents in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..20)
        ) {
            let mut d = Deduplicator::new();
            for (i, c) in contents.iter().enumerate() {
                d.add_bytes(format!("/f{i}"), c);
            }
            let clusters = d.exact_clusters();
            for cluster in &clusters {
                prop_assert!(cluster.paths.len() > 1);
                let idx = |p: &str| p[2..].parse::<usize>().unwrap();
                let first = &contents[idx(&cluster.paths[0])];
                for p in &cluster.paths {
                    prop_assert_eq!(&contents[idx(p)], first);
                }
            }
        }
    }
}
