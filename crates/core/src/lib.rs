//! # xtract-core
//!
//! The Xtract orchestrator — the paper's primary contribution (§3, §4).
//!
//! Pure policy modules (shared by both execution modes):
//!
//! * [`families`] — the **min-transfers** algorithm (§4.3.1, Alg. 1):
//!   Karger randomized min-cut over the group-overlap multigraph, plus the
//!   naive per-group baseline it is evaluated against in Fig. 7;
//! * [`planner`] — dynamic extraction plans: `next(E, g)` seeded at crawl
//!   time and extended as extractors report discoveries (§3);
//! * [`batcher`] — two-level batching: Xtract batches fused into funcX
//!   batches (§4.3.2, swept in Fig. 5);
//! * [`adaptive`] — the per-endpoint AIMD feedback controller that
//!   retunes both batch knobs and the batch-poll fan-out online from
//!   observed wave latencies (Fig. 5 made self-tuning);
//! * [`offload`] — the ONB and RAND offloading policies (§4.3.3,
//!   Table 2);
//! * [`validator`] — schema validation/transformation of finished records
//!   (§3 "Validation");
//! * [`checkpoint`] — the checkpoint-flag store behind the §5.8.1
//!   restart;
//! * [`recovery`] — the durable write-ahead recovery log (segmented,
//!   CRC-framed) that makes orchestrator crashes survivable: every
//!   commit-worthy transition is journaled, and `resume_job` replays the
//!   log into the state an uninterrupted run would hold;
//! * [`resilience`] — per-endpoint circuit breakers and per-family retry
//!   budgets driving the recovery policy (see `DESIGN.md`, "Fault
//!   tolerance & failure semantics");
//! * [`shard`] — the sharded orchestrator scale-out: family-space
//!   partitioning across shard workers, heartbeat-driven work stealing,
//!   and shard-death recovery with orphan adoption (see `DESIGN.md`,
//!   "Sharded orchestrator");
//! * [`transport`] — cross-process shard workers: the CRC-framed Unix
//!   socket wire protocol, lease-fenced shard-WAL ownership, heartbeat
//!   death detection, and restartable-coordinator custody journaling
//!   (see `DESIGN.md`, "Cross-process sharding");
//! * [`jobs`] — the asynchronous submit/monitor/retrieve interface of §3
//!   (Listing 2's `XtractClient` flow), and the multi-tenant `JobService`
//!   built on it;
//! * [`tenancy`] — per-tenant quota ledgers, shared breaker scope, and
//!   the tenant registry;
//! * [`queue`] — the weighted fair-share (stride-scheduled) admission
//!   queue with graceful overload shedding;
//! * [`staging`] — the wire types of the concurrent staging pipeline
//!   that overlaps family prefetch with extraction waves (§5.6);
//! * [`dedup`] — exact + MinHash near-duplicate detection (§7 future
//!   work);
//! * [`utility`] — metadata utility scoring for utility-cost tradeoffs
//!   (§2.2, §7 future work).
//!
//! Execution shells:
//!
//! * [`service`] — the **live** `XtractService`: real crawler threads,
//!   real FaaS workers parsing real bytes, real transfers between
//!   in-memory endpoints;
//! * [`campaign`] — the **simulated** campaign runner: the same policies
//!   driven by `xtract-sim`'s calibrated clock for paper-scale
//!   experiments (8 192 workers, 2.5 M groups) — see `DESIGN.md`,
//!   "Two execution modes share one policy core";
//! * [`crawlmodel`] — the calibrated analytic crawl-time model behind
//!   Fig. 4.

#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod adaptive;
pub mod batcher;
pub mod campaign;
pub mod checkpoint;
pub mod crawlmodel;
pub mod dedup;
pub mod families;
pub mod jobs;
pub mod offload;
pub mod payload;
pub mod planner;
pub mod queue;
pub mod recovery;
pub mod resilience;
pub mod service;
pub mod shard;
pub mod staging;
pub mod tenancy;
pub mod transport;
pub mod utility;
pub mod validator;

pub use adaptive::{
    AdaptiveTuner, BatchLimits, BatchTuner, StaticTuner, TuneDecision, WaveEvidence,
};
pub use batcher::{Batcher, FuncxBatch, XtractBatch};
pub use campaign::{Campaign, CampaignConfig, CampaignReport};
pub use families::{build_families, naive_families, FamilySet};
pub use jobs::{JobFailureKind, JobManager, JobService, JobStatus};
pub use planner::ExtractionPlan;
pub use queue::{Admission, JobQueue, Victim};
pub use recovery::{spec_fingerprint, LogDirLease, RecoveryLog, RecoveryRecord, Replay};
pub use resilience::{BreakerState, HealthTracker, RetryLedger};
pub use service::{JobReport, XtractService};
pub use shard::{build_partitioner, shard_of, HashPartitioner, Partitioner, RangePartitioner};
pub use tenancy::{QuotaLedger, TenantCtx, TenantRegistry};
pub use transport::{build_world_service, run_proc_sharded, run_worker, WorkerCmd, WorldSpec};
