//! Multi-tenant state: per-tenant quota ledgers, shared breaker scope,
//! and the registry the [`crate::jobs::JobService`] schedules from.
//!
//! One tenant owns every job it submits. The quota ledger is charged
//! *before* the resource is consumed — a refused charge means the FaaS
//! batch is never submitted, the transfer never leaves — so a tenant can
//! never overspend its [`TenantQuota`] no matter how many of its jobs
//! run concurrently. Every accepted charge is journaled as
//! [`Event::QuotaCharged`], so an independent journal scan reproduces the
//! ledger's totals (the chaos tests assert exactly that).
//!
//! Breaker state is tenant-scoped: all of one tenant's jobs share one
//! [`HealthTracker`], so one tenant's chaos opens *its* breakers without
//! poisoning the health view of anyone else's jobs.

use crate::resilience::HealthTracker;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtract_obs::{Event, Obs};
use xtract_types::id::IdAllocator;
use xtract_types::{
    HedgePolicy, QuotaResource, Result, RetryPolicy, TenantId, TenantQuota, TenantSpec, XtractError,
};

/// Lock-free spent-so-far accounting for one tenant. Charges commit via
/// compare-and-swap against the limit, so concurrent waves from several
/// of the tenant's jobs can never jointly exceed it.
#[derive(Debug, Default)]
pub struct QuotaLedger {
    limits: TenantQuota,
    invocations: AtomicU64,
    transfer_bytes: AtomicU64,
    retries: AtomicU64,
}

impl QuotaLedger {
    /// A ledger enforcing `limits`.
    pub fn new(limits: TenantQuota) -> Self {
        Self {
            limits,
            invocations: AtomicU64::new(0),
            transfer_bytes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    fn cell(&self, resource: QuotaResource) -> &AtomicU64 {
        match resource {
            QuotaResource::Invocations => &self.invocations,
            QuotaResource::TransferBytes => &self.transfer_bytes,
            QuotaResource::RetryBudget => &self.retries,
            // Concurrency is a gauge the scheduler owns (running counts in
            // the queue), not a consumable; nothing accumulates here.
            QuotaResource::ConcurrentJobs => &self.invocations,
        }
    }

    /// Charges `amount` units of `resource`, committing only when the
    /// result stays within the limit. Returns `true` when the charge
    /// landed. Unlimited resources always accept.
    pub fn try_charge(&self, resource: QuotaResource, amount: u64) -> bool {
        let Some(limit) = self.limits.limit(resource) else {
            self.cell(resource).fetch_add(amount, Ordering::Relaxed);
            return true;
        };
        let cell = self.cell(resource);
        let mut spent = cell.load(Ordering::Relaxed);
        loop {
            let Some(next) = spent.checked_add(amount) else {
                return false;
            };
            if next > limit {
                return false;
            }
            match cell.compare_exchange_weak(spent, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(actual) => spent = actual,
            }
        }
    }

    /// Units of `resource` charged so far.
    pub fn spent(&self, resource: QuotaResource) -> u64 {
        self.cell(resource).load(Ordering::Relaxed)
    }

    /// Units of `resource` still chargeable, or `None` for an unlimited
    /// resource. The adaptive batching controller reads this to cap
    /// effective funcX batch growth: a nearly-spent invocation budget
    /// shrinks the request size so the final charges fit instead of
    /// bouncing a whole oversized batch off the limit.
    pub fn headroom(&self, resource: QuotaResource) -> Option<u64> {
        self.limits
            .limit(resource)
            .map(|limit| limit.saturating_sub(self.spent(resource)))
    }

    /// True when `resource` has no headroom left for even one more unit.
    pub fn exhausted(&self, resource: QuotaResource) -> bool {
        self.limits
            .limit(resource)
            .is_some_and(|limit| self.spent(resource) >= limit)
    }

    /// The configured limits.
    pub fn limits(&self) -> &TenantQuota {
        &self.limits
    }
}

/// One registered tenant's live state: its spec, its quota ledger, and
/// its (lazily created) shared health tracker.
pub struct TenantCtx {
    id: TenantId,
    spec: TenantSpec,
    ledger: QuotaLedger,
    health: Mutex<Option<Arc<Mutex<HealthTracker>>>>,
    obs: Obs,
}

impl TenantCtx {
    fn new(id: TenantId, spec: TenantSpec, obs: Obs) -> Self {
        let ledger = QuotaLedger::new(spec.quota);
        Self {
            id,
            spec,
            ledger,
            health: Mutex::new(None),
            obs,
        }
    }

    /// The tenant's id.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's registered spec (name, weight, quota).
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// The tenant's quota ledger.
    pub fn ledger(&self) -> &QuotaLedger {
        &self.ledger
    }

    /// Charges `amount` units of `resource` against the tenant, before
    /// the resource is consumed. An accepted charge is journaled and
    /// counted (`quota.<resource>` labeled by tenant); a refused one
    /// journals [`Event::QuotaExhausted`] and surfaces as the typed
    /// [`XtractError::QuotaExhausted`] the caller propagates.
    pub fn charge(&self, resource: QuotaResource, amount: u64) -> Result<()> {
        if self.ledger.try_charge(resource, amount) {
            self.obs.journal.record(Event::QuotaCharged {
                tenant: self.id,
                resource: resource.name().to_string(),
                amount,
            });
            self.obs
                .hub
                .counter_with(
                    &format!("quota.{}", resource.name()),
                    Some(&self.id.to_string()),
                )
                .add(amount);
            Ok(())
        } else {
            self.obs.journal.record(Event::QuotaExhausted {
                tenant: self.id,
                resource: resource.name().to_string(),
            });
            self.obs
                .hub
                .counter_with("quota.exhausted", Some(&self.id.to_string()))
                .incr();
            Err(XtractError::QuotaExhausted {
                tenant: self.id,
                resource: resource.name().to_string(),
            })
        }
    }

    /// True when any consumable quota is already spent to its limit —
    /// the admission-control gate: submitting more work is pointless
    /// until the operator raises the limit.
    pub fn any_exhausted(&self) -> bool {
        [QuotaResource::Invocations, QuotaResource::TransferBytes]
            .into_iter()
            .any(|r| self.ledger.exhausted(r))
    }

    /// The tenant's shared health tracker, created from the first job's
    /// policies and reused by every later job: breaker and quarantine
    /// state accumulates per *tenant*, not per job.
    pub fn health(&self, retry: &RetryPolicy, hedge: &HedgePolicy) -> Arc<Mutex<HealthTracker>> {
        let mut slot = self.health.lock();
        slot.get_or_insert_with(|| {
            Arc::new(Mutex::new(
                HealthTracker::with_journal(retry, self.obs.journal.clone()).with_quarantine(hedge),
            ))
        })
        .clone()
    }
}

impl std::fmt::Debug for TenantCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantCtx")
            .field("id", &self.id)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

/// The tenant registry: id allocation plus lookup for the scheduler.
pub struct TenantRegistry {
    tenants: Mutex<HashMap<TenantId, Arc<TenantCtx>>>,
    ids: IdAllocator,
    obs: Obs,
}

impl TenantRegistry {
    /// A registry reporting into `obs`.
    pub fn new(obs: Obs) -> Self {
        Self {
            tenants: Mutex::new(HashMap::new()),
            ids: IdAllocator::new(),
            obs,
        }
    }

    /// Registers a tenant; its spec must validate.
    pub fn register(&self, spec: TenantSpec) -> Result<TenantId> {
        spec.validate()?;
        let id = TenantId::new(self.ids.next());
        let ctx = Arc::new(TenantCtx::new(id, spec, self.obs.clone()));
        self.tenants.lock().insert(id, ctx);
        Ok(id)
    }

    /// Looks a tenant up.
    pub fn get(&self, id: TenantId) -> Option<Arc<TenantCtx>> {
        self.tenants.lock().get(&id).cloned()
    }

    /// All registered tenant ids, sorted.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.tenants.lock().keys().copied().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(invocations: u64, bytes: u64) -> TenantQuota {
        TenantQuota {
            max_invocations: Some(invocations),
            max_transfer_bytes: Some(bytes),
            ..TenantQuota::unlimited()
        }
    }

    #[test]
    fn charges_commit_only_within_the_limit() {
        let l = QuotaLedger::new(quota(10, 100));
        assert!(l.try_charge(QuotaResource::Invocations, 6));
        assert!(l.try_charge(QuotaResource::Invocations, 4));
        assert!(!l.try_charge(QuotaResource::Invocations, 1));
        assert_eq!(l.spent(QuotaResource::Invocations), 10);
        assert!(l.exhausted(QuotaResource::Invocations));
        // A refused charge leaves the ledger untouched.
        assert!(!l.try_charge(QuotaResource::TransferBytes, 101));
        assert_eq!(l.spent(QuotaResource::TransferBytes), 0);
        assert!(!l.exhausted(QuotaResource::TransferBytes));
    }

    #[test]
    fn unlimited_resources_always_accept_but_still_account() {
        let l = QuotaLedger::new(TenantQuota::unlimited());
        assert!(l.try_charge(QuotaResource::TransferBytes, u64::MAX / 2));
        assert!(l.try_charge(QuotaResource::RetryBudget, 3));
        assert_eq!(l.spent(QuotaResource::RetryBudget), 3);
        assert!(!l.exhausted(QuotaResource::RetryBudget));
    }

    #[test]
    fn concurrent_charges_never_jointly_overspend() {
        let l = Arc::new(QuotaLedger::new(quota(1000, u64::MAX)));
        let accepted = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = l.clone();
                let accepted = accepted.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        if l.try_charge(QuotaResource::Invocations, 1) {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(accepted.load(Ordering::Relaxed), 1000);
        assert_eq!(l.spent(QuotaResource::Invocations), 1000);
    }

    #[test]
    fn tenant_charge_journals_and_counts_exactly() {
        let obs = Obs::new();
        let registry = TenantRegistry::new(obs.clone());
        let id = registry
            .register(TenantSpec::new("acme", 2).with_quota(quota(5, 1000)))
            .unwrap();
        let ctx = registry.get(id).unwrap();
        assert!(ctx.charge(QuotaResource::Invocations, 3).is_ok());
        assert!(ctx.charge(QuotaResource::Invocations, 2).is_ok());
        let err = ctx.charge(QuotaResource::Invocations, 1).unwrap_err();
        assert!(matches!(err, XtractError::QuotaExhausted { .. }));
        assert!(ctx.any_exhausted());

        // The journal's accepted charges sum to the ledger's spent total.
        let journaled: u64 = obs
            .journal
            .events()
            .iter()
            .filter_map(|r| match &r.event {
                Event::QuotaCharged {
                    tenant,
                    resource,
                    amount,
                } if *tenant == id && resource == "invocations" => Some(*amount),
                _ => None,
            })
            .sum();
        assert_eq!(journaled, ctx.ledger().spent(QuotaResource::Invocations));
        let label = id.to_string();
        assert_eq!(obs.hub.counter_value("quota.invocations", Some(&label)), 5);
        assert_eq!(obs.hub.counter_value("quota.exhausted", Some(&label)), 1);
    }

    #[test]
    fn registry_rejects_invalid_specs_and_allocates_distinct_ids() {
        let registry = TenantRegistry::new(Obs::new());
        assert!(registry.register(TenantSpec::new("", 1)).is_err());
        assert!(registry.register(TenantSpec::new("zero", 0)).is_err());
        let a = registry.register(TenantSpec::new("a", 1)).unwrap();
        let b = registry.register(TenantSpec::new("b", 3)).unwrap();
        assert_ne!(a, b);
        assert_eq!(registry.tenants(), vec![a, b]);
        assert_eq!(registry.get(b).unwrap().spec().weight, 3);
    }

    #[test]
    fn health_tracker_is_shared_across_a_tenants_jobs() {
        let registry = TenantRegistry::new(Obs::new());
        let id = registry.register(TenantSpec::new("t", 1)).unwrap();
        let ctx = registry.get(id).unwrap();
        let retry = RetryPolicy::default();
        let hedge = HedgePolicy::default();
        let h1 = ctx.health(&retry, &hedge);
        let h2 = ctx.health(&retry, &hedge);
        assert!(Arc::ptr_eq(&h1, &h2));
        h1.lock().record_failure(xtract_types::EndpointId::new(7));
        assert_eq!(h2.lock().failures(xtract_types::EndpointId::new(7)), 1);
    }
}
