//! Weighted fair-share admission queue for the multi-tenant job service.
//!
//! Scheduling is *stride scheduling*: each tenant carries a `pass` value
//! that advances by `STRIDE / weight` every time one of its jobs is
//! dispatched, and the dispatcher always picks the eligible tenant with
//! the smallest pass. A weight-3 tenant's pass advances a third as fast
//! as a weight-1 tenant's, so it is selected three times as often when
//! both are backlogged — and because every pass advances monotonically,
//! no tenant with a nonzero weight can be starved: its pass eventually
//! becomes the minimum. A tenant that goes idle and returns has its pass
//! caught up to the global virtual time so it cannot monopolize the pool
//! with banked credit.
//!
//! Within a tenant, entries dispatch highest-priority first, FIFO among
//! equals. Overload is handled at the *pending* boundary only: when the
//! queue is full, a new submission may shed the globally lowest-priority
//! pending entry — never a running job — and only when it strictly
//! outranks that victim; otherwise the submission is rejected so the
//! caller can retry after a hint.

use std::collections::{HashMap, VecDeque};
use xtract_types::{JobId, TenantId};

/// Pass increment for a weight-1 tenant. Large enough that integer
/// division by any practical weight keeps distinct strides.
const STRIDE: u64 = 1 << 20;

/// Outcome of offering a job to the queue.
#[derive(Debug)]
pub enum Admission<T> {
    /// The job was enqueued (possibly after shedding).
    Admitted {
        /// Pending entries evicted to make room — lowest-priority first.
        /// Empty in the common non-overload case.
        victims: Vec<Victim<T>>,
    },
    /// The queue is full and the job does not outrank any pending entry.
    Rejected {
        /// Human-readable reason for the journal and the typed error.
        reason: String,
    },
}

/// A pending entry evicted by overload shedding.
#[derive(Debug)]
pub struct Victim<T> {
    /// Owner of the shed job.
    pub tenant: TenantId,
    /// The shed job.
    pub job: JobId,
    /// Priority it was queued at.
    pub priority: u8,
    /// The caller's payload, returned so leases and state can be released.
    pub payload: T,
}

#[derive(Debug)]
struct Entry<T> {
    job: JobId,
    priority: u8,
    seq: u64,
    payload: T,
}

#[derive(Debug)]
struct TenantSched<T> {
    weight: u32,
    pass: u64,
    running: usize,
    max_concurrent: Option<u64>,
    pending: VecDeque<Entry<T>>,
}

impl<T> TenantSched<T> {
    fn stride(&self) -> u64 {
        (STRIDE / u64::from(self.weight)).max(1)
    }

    fn eligible(&self) -> bool {
        !self.pending.is_empty()
            && self
                .max_concurrent
                .is_none_or(|cap| (self.running as u64) < cap)
    }

    /// Index of the next entry to dispatch: highest priority, FIFO among
    /// equals (smallest seq).
    fn next_index(&self) -> Option<usize> {
        self.pending
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (std::cmp::Reverse(e.priority), e.seq))
            .map(|(i, _)| i)
    }
}

/// The shared admission queue: one scheduler state per registered tenant.
///
/// Not internally synchronized — the job service wraps it in its state
/// mutex alongside the slot table.
#[derive(Debug)]
pub struct JobQueue<T> {
    capacity: usize,
    tenants: HashMap<TenantId, TenantSched<T>>,
    /// Global virtual time: the pass of the most recently dispatched
    /// tenant. Reactivating tenants catch up to this.
    vtime: u64,
    pending_total: usize,
    seq: u64,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` pending entries across tenants.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            tenants: HashMap::new(),
            vtime: 0,
            pending_total: 0,
            seq: 0,
        }
    }

    /// Registers a tenant with its fair-share weight and optional
    /// concurrent-job cap. Re-registering updates both.
    pub fn register_tenant(&mut self, id: TenantId, weight: u32, max_concurrent: Option<u64>) {
        let vtime = self.vtime;
        self.tenants
            .entry(id)
            .and_modify(|t| {
                t.weight = weight.max(1);
                t.max_concurrent = max_concurrent;
            })
            .or_insert_with(|| TenantSched {
                weight: weight.max(1),
                pass: vtime,
                running: 0,
                max_concurrent,
                pending: VecDeque::new(),
            });
    }

    /// Offers a job. On overload the globally lowest-priority pending
    /// entry is shed *only if* the new job strictly outranks it;
    /// otherwise the offer is rejected. Running jobs are never touched.
    pub fn push(&mut self, tenant: TenantId, job: JobId, priority: u8, payload: T) -> Admission<T> {
        if !self.tenants.contains_key(&tenant) {
            return Admission::Rejected {
                reason: format!("unknown tenant {tenant}"),
            };
        }
        let mut victims = Vec::new();
        if self.pending_total >= self.capacity {
            match self.shed_one_below(priority) {
                Some(v) => victims.push(v),
                None => {
                    return Admission::Rejected {
                        reason: format!(
                            "queue full ({} pending) and no pending job has priority below {}",
                            self.pending_total, priority
                        ),
                    }
                }
            }
        }
        let seq = self.seq;
        self.seq += 1;
        let vtime = self.vtime;
        let sched = self.tenants.get_mut(&tenant).expect("checked above");
        if sched.pending.is_empty() {
            // Reactivation: forfeit credit banked while idle.
            sched.pass = sched.pass.max(vtime);
        }
        sched.pending.push_back(Entry {
            job,
            priority,
            seq,
            payload,
        });
        self.pending_total += 1;
        Admission::Admitted { victims }
    }

    /// Sheds the globally lowest-priority pending entry, provided its
    /// priority is strictly below `than`. Ties break toward the youngest
    /// entry so the longest-waiting work keeps its place.
    fn shed_one_below(&mut self, than: u8) -> Option<Victim<T>> {
        let (tid, idx) = self
            .tenants
            .iter()
            .flat_map(|(tid, t)| {
                t.pending
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (*tid, i, e.priority, e.seq))
            })
            .min_by_key(|&(_, _, prio, seq)| (prio, std::cmp::Reverse(seq)))
            .filter(|&(_, _, prio, _)| prio < than)
            .map(|(tid, i, _, _)| (tid, i))?;
        let sched = self.tenants.get_mut(&tid)?;
        let entry = sched.pending.remove(idx)?;
        self.pending_total -= 1;
        Some(Victim {
            tenant: tid,
            job: entry.job,
            priority: entry.priority,
            payload: entry.payload,
        })
    }

    /// Dispatches the next job: the eligible tenant with the smallest
    /// pass (ties break on tenant id), its highest-priority entry first.
    /// Advances the tenant's pass by its stride and marks it running.
    pub fn pop_next(&mut self) -> Option<(TenantId, JobId, T)> {
        let tid = self
            .tenants
            .iter()
            .filter(|(_, t)| t.eligible())
            .min_by_key(|(tid, t)| (t.pass, **tid))
            .map(|(tid, _)| *tid)?;
        let sched = self.tenants.get_mut(&tid)?;
        let idx = sched.next_index()?;
        let entry = sched.pending.remove(idx)?;
        self.vtime = sched.pass;
        sched.pass += sched.stride();
        sched.running += 1;
        self.pending_total -= 1;
        Some((tid, entry.job, entry.payload))
    }

    /// Marks one of `tenant`'s running jobs finished, freeing a
    /// concurrency slot.
    pub fn note_done(&mut self, tenant: TenantId) {
        if let Some(t) = self.tenants.get_mut(&tenant) {
            t.running = t.running.saturating_sub(1);
        }
    }

    /// Pending entries across all tenants.
    pub fn pending_len(&self) -> usize {
        self.pending_total
    }

    /// Running jobs owned by `tenant`.
    pub fn running(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.running)
    }

    /// Pending entries owned by `tenant`.
    pub fn pending_for(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.pending.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TenantId {
        TenantId::new(n)
    }
    fn j(n: u64) -> JobId {
        JobId::new(n)
    }

    fn drain_order(q: &mut JobQueue<()>) -> Vec<TenantId> {
        let mut order = Vec::new();
        while let Some((tid, _, ())) = q.pop_next() {
            q.note_done(tid);
            order.push(tid);
        }
        order
    }

    #[test]
    fn dispatch_ratio_tracks_weights() {
        let mut q = JobQueue::new(64);
        q.register_tenant(t(0), 2, None);
        q.register_tenant(t(1), 1, None);
        for i in 0..30 {
            assert!(matches!(
                q.push(t(i % 2), j(i), 0, ()),
                Admission::Admitted { .. }
            ));
        }
        let order = drain_order(&mut q);
        // While both are backlogged (first ~22 pops: tenant 1's 15 jobs
        // drain at 1/3 share), tenant 0 gets twice the slots of tenant 1.
        let prefix = &order[..12];
        let heavy = prefix.iter().filter(|id| **id == t(0)).count();
        let light = prefix.iter().filter(|id| **id == t(1)).count();
        assert_eq!(heavy, 8, "weight-2 tenant share in {prefix:?}");
        assert_eq!(light, 4, "weight-1 tenant share in {prefix:?}");
        assert_eq!(order.len(), 30);
    }

    #[test]
    fn within_a_tenant_priority_beats_fifo() {
        let mut q = JobQueue::new(8);
        q.register_tenant(t(0), 1, None);
        q.push(t(0), j(1), 0, ());
        q.push(t(0), j(2), 5, ());
        q.push(t(0), j(3), 5, ());
        let (_, first, ()) = q.pop_next().unwrap();
        let (_, second, ()) = q.pop_next().unwrap();
        let (_, third, ()) = q.pop_next().unwrap();
        assert_eq!(first, j(2), "highest priority first");
        assert_eq!(second, j(3), "FIFO among equal priority");
        assert_eq!(third, j(1));
    }

    #[test]
    fn concurrency_cap_defers_a_tenant_without_blocking_others() {
        let mut q = JobQueue::new(8);
        q.register_tenant(t(0), 4, Some(1));
        q.register_tenant(t(1), 1, None);
        q.push(t(0), j(0), 0, ());
        q.push(t(0), j(1), 0, ());
        q.push(t(1), j(2), 0, ());
        let (first, ..) = q.pop_next().unwrap();
        assert_eq!(first, t(0), "higher weight dispatches first");
        // Tenant 0 is at its cap; the next dispatch must come from 1.
        let (second, ..) = q.pop_next().unwrap();
        assert_eq!(second, t(1));
        assert!(q.pop_next().is_none(), "t0 capped, t1 empty");
        q.note_done(t(0));
        let (third, ..) = q.pop_next().unwrap();
        assert_eq!(third, t(0));
    }

    #[test]
    fn overload_sheds_only_strictly_lower_priority_pending() {
        let mut q = JobQueue::new(2);
        q.register_tenant(t(0), 1, None);
        q.push(t(0), j(0), 3, ());
        q.push(t(0), j(1), 1, ());
        // Equal priority to the lowest pending: rejected, nothing shed.
        assert!(matches!(
            q.push(t(0), j(2), 1, ()),
            Admission::Rejected { .. }
        ));
        assert_eq!(q.pending_len(), 2);
        // Strictly higher: the priority-1 entry is evicted.
        match q.push(t(0), j(3), 2, ()) {
            Admission::Admitted { victims } => {
                assert_eq!(victims.len(), 1);
                assert_eq!(victims[0].job, j(1));
                assert_eq!(victims[0].priority, 1);
            }
            other => panic!("expected shed admission, got {other:?}"),
        }
        assert_eq!(q.pending_len(), 2);
        // Running jobs are never candidates: dispatch everything, fill the
        // queue again, and observe rejections rather than eviction.
        let (tid, ..) = q.pop_next().unwrap();
        let (tid2, ..) = q.pop_next().unwrap();
        assert_eq!((tid, tid2), (t(0), t(0)));
        q.push(t(0), j(4), 0, ());
        q.push(t(0), j(5), 0, ());
        assert!(matches!(
            q.push(t(0), j(6), 9, ()),
            Admission::Admitted { victims } if victims.len() == 1
        ));
        assert_eq!(q.running(t(0)), 2, "running jobs untouched by shedding");
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let mut q: JobQueue<()> = JobQueue::new(4);
        assert!(matches!(
            q.push(t(9), j(0), 0, ()),
            Admission::Rejected { .. }
        ));
    }

    #[test]
    fn reactivated_tenant_forfeits_banked_credit() {
        let mut q = JobQueue::new(64);
        q.register_tenant(t(0), 1, None);
        q.register_tenant(t(1), 1, None);
        // Tenant 1 runs alone for a while, advancing its pass far ahead.
        for i in 0..10 {
            q.push(t(1), j(i), 0, ());
        }
        for _ in 0..10 {
            let (tid, ..) = q.pop_next().unwrap();
            q.note_done(tid);
        }
        // Tenant 0 wakes up. Without vtime catch-up it would now win the
        // next 10 dispatches on banked credit; with it, service alternates.
        for i in 10..16 {
            q.push(t(i % 2), j(i), 0, ());
        }
        let order = drain_order(&mut q);
        let t0_in_first_four = order[..4].iter().filter(|id| **id == t(0)).count();
        assert_eq!(t0_in_first_four, 2, "alternating service in {order:?}");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Fair-share invariant: while every tenant is backlogged,
            /// each receives at least its weight-proportional share of
            /// dispatches (minus a one-round constant) — which implies no
            /// nonzero-weight tenant is ever starved.
            #[test]
            fn backlogged_tenants_get_weight_proportional_service(
                weights in proptest::collection::vec(1u32..=9, 2..=6),
                jobs_per in 8usize..=24,
            ) {
                let mut q = JobQueue::new(weights.len() * jobs_per);
                for (i, w) in weights.iter().enumerate() {
                    q.register_tenant(t(i as u64), *w, None);
                }
                let mut id = 0u64;
                for (i, _) in weights.iter().enumerate() {
                    for _ in 0..jobs_per {
                        prop_assert!(matches!(
                            q.push(t(i as u64), j(id), 0, ()),
                            Admission::Admitted { .. }
                        ));
                        id += 1;
                    }
                }
                let order = drain_order(&mut q);
                prop_assert_eq!(order.len(), weights.len() * jobs_per);

                // Measure the prefix during which every tenant still had
                // pending work (up to the first exhaustion).
                let mut remaining: Vec<usize> = vec![jobs_per; weights.len()];
                let mut prefix = Vec::new();
                for tid in &order {
                    prefix.push(*tid);
                    let slot = &mut remaining[tid.index()];
                    *slot -= 1;
                    if *slot == 0 {
                        break;
                    }
                }
                let total_w: u64 = weights.iter().map(|w| u64::from(*w)).sum();
                let len = prefix.len() as u64;
                for (i, w) in weights.iter().enumerate() {
                    let got = prefix.iter().filter(|id| **id == t(i as u64)).count() as u64;
                    let fair = len * u64::from(*w) / total_w;
                    let slack = weights.len() as u64;
                    prop_assert!(
                        got + slack >= fair,
                        "tenant {} weight {} got {} of {} pops, fair share {}",
                        i, w, got, len, fair
                    );
                }
            }

            /// Conservation: every admitted entry is either dispatched or
            /// shed exactly once; nothing is lost or duplicated.
            #[test]
            fn entries_are_conserved_under_overload(
                ops in proptest::collection::vec((0u64..4, 0u8..4), 1..=120),
            ) {
                let mut q = JobQueue::new(8);
                for i in 0..4u64 {
                    q.register_tenant(t(i), (i as u32) + 1, None);
                }
                let mut admitted = std::collections::HashSet::new();
                let mut out = std::collections::HashSet::new();
                for (n, (tenant, priority)) in ops.iter().enumerate() {
                    let job = j(n as u64);
                    match q.push(t(*tenant), job, *priority, ()) {
                        Admission::Admitted { victims } => {
                            admitted.insert(job);
                            for v in victims {
                                prop_assert!(v.priority < *priority);
                                prop_assert!(out.insert(v.job), "double-shed {:?}", v.job);
                            }
                        }
                        Admission::Rejected { .. } => {}
                    }
                }
                while let Some((tid, job, ())) = q.pop_next() {
                    q.note_done(tid);
                    prop_assert!(out.insert(job), "double-dispatch {:?}", job);
                }
                prop_assert_eq!(&out, &admitted);
                prop_assert_eq!(q.pending_len(), 0);
            }
        }
    }
}
