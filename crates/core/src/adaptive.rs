//! Adaptive two-level batching: the per-endpoint feedback controller.
//!
//! The paper freezes `(xtract_batch_size, funcx_batch_size)` per job and
//! sweeps them offline (Fig. 5). This module closes the loop online: an
//! AIMD-style controller watches each wave's per-family completion pace
//! and walks both knobs toward the throughput knee, backing off hard when
//! an endpoint shows distress (adaptive-deadline breaches, an open
//! breaker, or a pace regression).
//!
//! **Control law.** For each endpoint the controller keeps fractional
//! knobs `(x, f)` clamped to the policy's `[floor, ceiling]` boxes. After
//! each wave it receives a [`WaveEvidence`]:
//!
//! * distress (`breaches > 0` or `breaker_open`) → multiplicative
//!   decrease: `x *= backoff`, `f *= backoff`; the pace baseline resets
//!   so the next clean wave re-anchors it.
//! * a trusted pace (`samples >= min_wave_samples`) within `tolerance`
//!   of the *best pace seen since the last backoff* → additive increase:
//!   `x += grow_step`, `f += grow_step`.
//! * a trusted pace that regressed beyond `tolerance` of that best →
//!   multiplicative decrease.
//! * too few samples → hold.
//!
//! Anchoring against the best-so-far (not the previous wave) is what
//! makes the controller converge: near the throughput knee each single
//! growth step degrades pace by less than `tolerance`, and a
//! previous-wave baseline would ratchet straight past the knee to the
//! ceiling. Against the best anchor the small regressions *accumulate*
//! until they cross `tolerance`, producing the classic AIMD sawtooth
//! around the optimum.
//!
//! "Pace" is the wave's p50 per-family completion latency divided by the
//! number of families the wave carried — a size-normalized cost, so waves
//! of different widths compare fairly. Decisions are a pure function of
//! the evidence sequence: no clocks, no randomness. A resumed job
//! replays its journal, counts committed waves, and [`warm-starts`]
//! the controller with that many clean growth steps — controller state
//! is *recomputed* from evidence, never persisted.
//!
//! [`warm-starts`]: AdaptiveTuner::with_replayed_waves
//!
//! The poll-request width rides the same limits: a wave polling `n`
//! outstanding tasks chunks them into requests of
//! `(x * f).clamp(poll_floor, poll_ceiling)` ids, so poll fan-out grows
//! and shrinks with dispatch fan-out.

use std::collections::BTreeMap;
use xtract_types::{AdaptiveBatching, EndpointId};

/// The batching limits in force for one endpoint at one wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchLimits {
    /// Families per Xtract batch (level 1).
    pub xtract: usize,
    /// Xtract batches per funcX web request (level 2).
    pub funcx: usize,
    /// Task ids per batch-poll request.
    pub poll_chunk: usize,
}

impl BatchLimits {
    /// Caps the funcX batch so one full request's invocation charge
    /// (`xtract * funcx` families) fits inside a tenant's remaining
    /// invocation budget. The cap never drops below `funcx_floor`:
    /// when the budget is nearly spent the job still makes progress
    /// (and the quota ledger — which charges *before* submit — remains
    /// the authority that finally stops it).
    pub fn cap_to_invocations(self, headroom: Option<u64>, funcx_floor: usize) -> Self {
        let Some(headroom) = headroom else {
            return self;
        };
        let per_task = self.xtract.max(1) as u64;
        let affordable = (headroom / per_task) as usize;
        Self {
            funcx: self.funcx.min(affordable.max(funcx_floor)),
            ..self
        }
    }
}

/// What one completed wave tells the controller about one endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaveEvidence {
    /// p50 of per-family completion latency this wave, seconds from wave
    /// start. `None` when the wave resolved nothing productive.
    pub p50_latency_s: Option<f64>,
    /// Latency samples backing `p50_latency_s`.
    pub samples: u64,
    /// Families this endpoint carried in the wave (the pace normalizer).
    pub families: u64,
    /// Adaptive-deadline breaches charged to this endpoint in the wave.
    pub breaches: u64,
    /// Whether the endpoint's circuit breaker was open at wave end.
    pub breaker_open: bool,
}

/// What the controller did with a wave's evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneDecision {
    /// Additive increase applied.
    Grew,
    /// Multiplicative decrease applied.
    BackedOff,
    /// Evidence too thin (or limits already pinned); nothing changed.
    Held,
}

/// The wave loop's view of a batch-size source. `StaticTuner` freezes
/// the spec's sizes (today's behavior); `AdaptiveTuner` closes the loop.
pub trait BatchTuner {
    /// Limits to build the next wave's batches with, for `endpoint`.
    fn limits(&mut self, endpoint: EndpointId) -> BatchLimits;
    /// Feeds one completed wave's evidence back.
    fn observe_wave(&mut self, endpoint: EndpointId, evidence: &WaveEvidence) -> TuneDecision;
}

/// The no-op tuner: spec sizes, unbounded polls, evidence ignored.
#[derive(Debug, Clone, Copy)]
pub struct StaticTuner {
    limits: BatchLimits,
}

impl StaticTuner {
    /// Static limits from the spec's two batch knobs.
    pub fn new(xtract: usize, funcx: usize) -> Self {
        Self {
            limits: BatchLimits {
                xtract,
                funcx,
                poll_chunk: usize::MAX,
            },
        }
    }
}

impl BatchTuner for StaticTuner {
    fn limits(&mut self, _endpoint: EndpointId) -> BatchLimits {
        self.limits
    }

    fn observe_wave(&mut self, _endpoint: EndpointId, _evidence: &WaveEvidence) -> TuneDecision {
        TuneDecision::Held
    }
}

/// Per-endpoint controller state. Knobs are fractional so repeated
/// multiplicative backoff accumulates below integer resolution instead
/// of sticking at a rounded value.
#[derive(Debug, Clone, Copy)]
struct EndpointCtl {
    xtract: f64,
    funcx: f64,
    /// Best (lowest) trusted pace since the last backoff; `None` right
    /// after a backoff (or at birth) so the next clean wave re-anchors
    /// the baseline.
    best_pace: Option<f64>,
}

/// The AIMD feedback controller (see module docs for the law).
#[derive(Debug, Clone)]
pub struct AdaptiveTuner {
    policy: AdaptiveBatching,
    start_xtract: usize,
    start_funcx: usize,
    /// Clean growth steps to pre-apply when an endpoint is first seen —
    /// the replay warm start. `BTreeMap` keeps any iteration
    /// deterministic.
    warm_steps: u64,
    states: BTreeMap<EndpointId, EndpointCtl>,
}

impl AdaptiveTuner {
    /// A controller governed by `policy`, starting every endpoint at the
    /// spec's static sizes clamped into the policy's boxes.
    pub fn new(policy: AdaptiveBatching, start_xtract: usize, start_funcx: usize) -> Self {
        debug_assert!(policy.validate().is_ok());
        Self {
            policy,
            start_xtract,
            start_funcx,
            warm_steps: 0,
            states: BTreeMap::new(),
        }
    }

    /// Warm start after WAL replay: `waves` committed waves were replayed
    /// from the journal, so every endpoint first seen by this controller
    /// behaves as if it had already survived that many clean growth
    /// steps. Deterministic given the journal; nothing is persisted.
    pub fn with_replayed_waves(mut self, waves: u64) -> Self {
        self.warm_steps = waves;
        self
    }

    fn clamp(&self, ctl: &mut EndpointCtl) {
        let p = &self.policy;
        ctl.xtract = ctl
            .xtract
            .clamp(p.xtract_floor as f64, p.xtract_ceiling as f64);
        ctl.funcx = ctl
            .funcx
            .clamp(p.funcx_floor as f64, p.funcx_ceiling as f64);
    }

    fn grow(&self, ctl: &mut EndpointCtl) {
        ctl.xtract += self.policy.grow_step as f64;
        ctl.funcx += self.policy.grow_step as f64;
        self.clamp(ctl);
    }

    fn back_off(&self, ctl: &mut EndpointCtl) {
        ctl.xtract *= self.policy.backoff;
        ctl.funcx *= self.policy.backoff;
        self.clamp(ctl);
        ctl.best_pace = None;
    }

    fn state(&mut self, endpoint: EndpointId) -> &mut EndpointCtl {
        if !self.states.contains_key(&endpoint) {
            let mut ctl = EndpointCtl {
                xtract: self.start_xtract as f64,
                funcx: self.start_funcx as f64,
                best_pace: None,
            };
            self.clamp(&mut ctl);
            for _ in 0..self.warm_steps {
                self.grow(&mut ctl);
            }
            self.states.insert(endpoint, ctl);
        }
        self.states.get_mut(&endpoint).expect("state just inserted")
    }

    fn limits_of(&self, ctl: &EndpointCtl) -> BatchLimits {
        let xtract = (ctl.xtract.round() as usize)
            .clamp(self.policy.xtract_floor, self.policy.xtract_ceiling);
        let funcx =
            (ctl.funcx.round() as usize).clamp(self.policy.funcx_floor, self.policy.funcx_ceiling);
        BatchLimits {
            xtract,
            funcx,
            poll_chunk: (xtract * funcx).clamp(self.policy.poll_floor, self.policy.poll_ceiling),
        }
    }

    /// The policy this controller enforces.
    pub fn policy(&self) -> &AdaptiveBatching {
        &self.policy
    }
}

impl BatchTuner for AdaptiveTuner {
    fn limits(&mut self, endpoint: EndpointId) -> BatchLimits {
        let ctl = *self.state(endpoint);
        self.limits_of(&ctl)
    }

    fn observe_wave(&mut self, endpoint: EndpointId, evidence: &WaveEvidence) -> TuneDecision {
        let mut ctl = *self.state(endpoint);
        let decision = if evidence.breaches > 0 || evidence.breaker_open {
            self.back_off(&mut ctl);
            TuneDecision::BackedOff
        } else if evidence.samples < self.policy.min_wave_samples || evidence.families == 0 {
            TuneDecision::Held
        } else if let Some(p50) = evidence.p50_latency_s {
            let pace = p50 / evidence.families as f64;
            let verdict = match ctl.best_pace {
                // First trusted wave since (re)anchor: optimistic growth.
                None => TuneDecision::Grew,
                Some(best) if pace <= best * (1.0 + self.policy.tolerance) => TuneDecision::Grew,
                Some(_) => TuneDecision::BackedOff,
            };
            match verdict {
                TuneDecision::Grew => {
                    self.grow(&mut ctl);
                    ctl.best_pace = Some(ctl.best_pace.map_or(pace, |b| b.min(pace)));
                }
                TuneDecision::BackedOff => {
                    self.back_off(&mut ctl);
                }
                TuneDecision::Held => {}
            }
            verdict
        } else {
            TuneDecision::Held
        };
        self.states.insert(endpoint, ctl);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ep(id: u64) -> EndpointId {
        EndpointId::new(id)
    }

    fn policy() -> AdaptiveBatching {
        AdaptiveBatching::enabled()
    }

    fn clean(p50: f64, families: u64) -> WaveEvidence {
        WaveEvidence {
            p50_latency_s: Some(p50),
            samples: families,
            families,
            breaches: 0,
            breaker_open: false,
        }
    }

    #[test]
    fn grows_while_pace_improves() {
        let mut t = AdaptiveTuner::new(policy(), 2, 2);
        let start = t.limits(ep(0));
        assert_eq!((start.xtract, start.funcx), (2, 2));
        // Bigger batches keep amortizing cost: pace falls wave over wave.
        for i in 0..8u64 {
            let d = t.observe_wave(ep(0), &clean(10.0 / (i + 1) as f64, 100));
            assert_eq!(d, TuneDecision::Grew);
        }
        let grown = t.limits(ep(0));
        assert!(grown.xtract > start.xtract && grown.funcx > start.funcx);
    }

    #[test]
    fn backs_off_on_breach_and_breaker() {
        let mut t = AdaptiveTuner::new(policy(), 16, 16);
        let before = t.limits(ep(0));
        let d = t.observe_wave(
            ep(0),
            &WaveEvidence {
                breaches: 1,
                ..clean(1.0, 100)
            },
        );
        assert_eq!(d, TuneDecision::BackedOff);
        let after = t.limits(ep(0));
        assert!(after.xtract < before.xtract && after.funcx < before.funcx);

        let d = t.observe_wave(
            ep(0),
            &WaveEvidence {
                breaker_open: true,
                ..clean(1.0, 100)
            },
        );
        assert_eq!(d, TuneDecision::BackedOff);
        assert!(t.limits(ep(0)).xtract < after.xtract);
    }

    #[test]
    fn backs_off_on_pace_regression() {
        let mut t = AdaptiveTuner::new(policy(), 8, 8);
        assert_eq!(t.observe_wave(ep(0), &clean(1.0, 100)), TuneDecision::Grew);
        // Same families, much slower: pace regressed beyond tolerance.
        assert_eq!(
            t.observe_wave(ep(0), &clean(2.0, 100)),
            TuneDecision::BackedOff
        );
    }

    #[test]
    fn creeping_regression_accumulates_to_a_backoff() {
        // Each wave is only ~8% worse than the one before — under
        // tolerance wave-over-wave, but compounding past it against the
        // anchored best. A previous-wave baseline would ratchet to the
        // ceiling here; the best-pace anchor must eventually back off.
        let mut t = AdaptiveTuner::new(policy(), 8, 8);
        assert_eq!(t.observe_wave(ep(0), &clean(1.0, 100)), TuneDecision::Grew);
        let mut p50 = 1.0;
        let mut decisions = Vec::new();
        for _ in 0..6 {
            p50 *= 1.08;
            decisions.push(t.observe_wave(ep(0), &clean(p50, 100)));
        }
        assert!(
            decisions.contains(&TuneDecision::BackedOff),
            "creeping regression never backed off: {decisions:?}"
        );
    }

    #[test]
    fn thin_waves_hold() {
        let mut t = AdaptiveTuner::new(policy(), 8, 8);
        let before = t.limits(ep(0));
        let d = t.observe_wave(
            ep(0),
            &WaveEvidence {
                samples: 1,
                ..clean(1.0, 1)
            },
        );
        assert_eq!(d, TuneDecision::Held);
        assert_eq!(t.limits(ep(0)), before);
    }

    #[test]
    fn endpoints_are_independent() {
        let mut t = AdaptiveTuner::new(policy(), 8, 8);
        t.observe_wave(
            ep(0),
            &WaveEvidence {
                breaches: 3,
                ..clean(1.0, 100)
            },
        );
        assert!(t.limits(ep(0)).xtract < 8);
        assert_eq!(t.limits(ep(1)).xtract, 8);
    }

    #[test]
    fn warm_start_pre_applies_growth() {
        let cold = AdaptiveTuner::new(policy(), 2, 2).limits(ep(0));
        let warm = AdaptiveTuner::new(policy(), 2, 2)
            .with_replayed_waves(4)
            .limits(ep(0));
        assert_eq!(cold.xtract, 2);
        assert_eq!(warm.xtract, 2 + 4 * policy().grow_step);
        // Warm start saturates at the ceiling, never past it.
        let capped = AdaptiveTuner::new(policy(), 2, 2)
            .with_replayed_waves(10_000)
            .limits(ep(0));
        assert_eq!(capped.xtract, policy().xtract_ceiling);
        assert_eq!(capped.funcx, policy().funcx_ceiling);
    }

    #[test]
    fn poll_chunk_tracks_limits_within_clamps() {
        let p = policy();
        let mut t = AdaptiveTuner::new(p, 2, 2);
        let lim = t.limits(ep(0));
        assert_eq!(
            lim.poll_chunk,
            (2usize * 2).clamp(p.poll_floor, p.poll_ceiling)
        );
        let stat = StaticTuner::new(8, 16).limits(ep(0));
        assert_eq!(stat.poll_chunk, usize::MAX);
    }

    #[test]
    fn tenant_headroom_caps_funcx() {
        let lim = BatchLimits {
            xtract: 8,
            funcx: 16,
            poll_chunk: 128,
        };
        // 40 invocations left / 8 per task → at most 5 tasks per request.
        assert_eq!(lim.cap_to_invocations(Some(40), 1).funcx, 5);
        // No quota → untouched.
        assert_eq!(lim.cap_to_invocations(None, 1).funcx, 16);
        // Exhausted budget still leaves the floor.
        assert_eq!(lim.cap_to_invocations(Some(0), 2).funcx, 2);
        // Ample budget never raises the limit.
        assert_eq!(lim.cap_to_invocations(Some(1 << 40), 1).funcx, 16);
    }

    fn arbitrary_evidence() -> impl Strategy<Value = WaveEvidence> {
        (
            proptest::option::of(0.0f64..500.0),
            0u64..400,
            0u64..400,
            0u64..3,
            any::<bool>(),
        )
            .prop_map(
                |(p50, samples, families, breaches, breaker_open)| WaveEvidence {
                    p50_latency_s: p50,
                    samples,
                    families,
                    breaches,
                    breaker_open,
                },
            )
    }

    proptest! {
        /// Limits stay inside the policy box for any evidence sequence.
        #[test]
        fn limits_always_within_bounds(
            evidence in proptest::collection::vec(arbitrary_evidence(), 0..60),
            start_x in 0usize..64,
            start_f in 0usize..64,
        ) {
            let p = policy();
            let mut t = AdaptiveTuner::new(p, start_x, start_f);
            for ev in &evidence {
                let lim = t.limits(ep(0));
                prop_assert!((p.xtract_floor..=p.xtract_ceiling).contains(&lim.xtract));
                prop_assert!((p.funcx_floor..=p.funcx_ceiling).contains(&lim.funcx));
                prop_assert!((p.poll_floor..=p.poll_ceiling).contains(&lim.poll_chunk));
                t.observe_wave(ep(0), ev);
            }
            let lim = t.limits(ep(0));
            prop_assert!((p.xtract_floor..=p.xtract_ceiling).contains(&lim.xtract));
            prop_assert!((p.funcx_floor..=p.funcx_ceiling).contains(&lim.funcx));
        }

        /// The controller is a pure function of the evidence sequence:
        /// two controllers fed the same waves agree limit-for-limit and
        /// decision-for-decision.
        #[test]
        fn decisions_are_deterministic(
            evidence in proptest::collection::vec(arbitrary_evidence(), 0..60),
        ) {
            let mut a = AdaptiveTuner::new(policy(), 4, 4);
            let mut b = AdaptiveTuner::new(policy(), 4, 4);
            for ev in &evidence {
                prop_assert_eq!(a.limits(ep(7)), b.limits(ep(7)));
                prop_assert_eq!(a.observe_wave(ep(7), ev), b.observe_wave(ep(7), ev));
            }
            prop_assert_eq!(a.limits(ep(7)), b.limits(ep(7)));
        }
    }
}
