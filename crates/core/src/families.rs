//! Min-transfers family construction (§4.3.1, Algorithm 1).
//!
//! Groups emitted by the crawler can overlap — one file in many groups.
//! Shipping each group independently would transfer shared files
//! repeatedly, so Xtract packs intersecting groups into **families**:
//!
//! 1. build a multigraph per directory whose vertices are files and whose
//!    (weighted) edges record co-membership;
//! 2. split into connected components (components share no files);
//! 3. recursively apply **Karger's randomized min-cut** to any component
//!    with more than `s` files, so families stay small enough to
//!    parallelize ("the worker drawing that extraction task will certainly
//!    become a straggler" otherwise);
//! 4. every surviving component is one family — one transfer, one task
//!    object.
//!
//! Cutting can separate a group's files across two families; those files
//! remain *redundant transfers* (bounded by the min-cut). [`FamilySet`]
//! reports both the families and the redundancy accounting that Fig. 7
//! audits.

use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;
use xtract_types::id::IdAllocator;
use xtract_types::{EndpointId, Family, FamilyId, FileRecord, Group};

/// Families plus redundancy accounting.
#[derive(Debug, Clone, Default)]
pub struct FamilySet {
    /// The families built.
    pub families: Vec<Family>,
    /// Files that some owning group sees in a *different* family (each
    /// instance is one redundant transfer).
    pub redundant_files: u64,
    /// Bytes those redundant instances represent.
    pub redundant_bytes: u64,
}

impl FamilySet {
    /// Total unique bytes across families.
    pub fn unique_bytes(&self) -> u64 {
        self.families.iter().map(Family::total_bytes).sum()
    }

    /// Total bytes a transfer plan must move: unique + redundant.
    pub fn transfer_bytes(&self) -> u64 {
        self.unique_bytes() + self.redundant_bytes
    }

    /// Number of families holding more than one file.
    pub fn multi_file_families(&self) -> usize {
        self.families.iter().filter(|f| f.file_count() > 1).count()
    }
}

/// The naive baseline (Fig. 7's "regular"): one family per group, no
/// overlap collapsing — a file in k groups is transferred k times.
pub fn naive_families(
    files: &HashMap<String, FileRecord>,
    groups: Vec<Group>,
    source: EndpointId,
    ids: &IdAllocator,
) -> FamilySet {
    let mut memberships: HashMap<String, u64> = HashMap::new();
    let mut families = Vec::with_capacity(groups.len());
    for group in groups {
        let records: Vec<FileRecord> = group
            .files
            .iter()
            .filter_map(|p| files.get(p.as_str()).cloned())
            .collect();
        for p in &group.files {
            *memberships.entry(p.clone()).or_insert(0) += 1;
        }
        families.push(Family::new(
            FamilyId::new(ids.next()),
            records,
            vec![group],
            source,
        ));
    }
    let mut redundant_files = 0u64;
    let mut redundant_bytes = 0u64;
    for (path, count) in memberships {
        if count > 1 {
            let extra = count - 1;
            redundant_files += extra;
            redundant_bytes += extra * files.get(path.as_str()).map_or(0, |f| f.size);
        }
    }
    // In the naive scheme the redundant copies are *inside* the family
    // byte totals already (each family carries full group contents), so
    // unique_bytes here double-counts; report redundancy separately and
    // let callers use `unique_bytes` as the actual transfer volume.
    FamilySet {
        families,
        redundant_files,
        redundant_bytes,
    }
}

/// Builds min-transfers families for one directory's groups.
///
/// `s` (`max_family_size`, files) bounds family size; `rng` drives the
/// randomized contractions (seed it from a named stream for reproducible
/// campaigns).
pub fn build_families(
    files: &HashMap<String, FileRecord>,
    groups: Vec<Group>,
    source: EndpointId,
    s: usize,
    ids: &IdAllocator,
    rng: &mut SmallRng,
) -> FamilySet {
    assert!(s > 0, "max family size must be positive (§4.3.1)");
    // Index the distinct files touched by any group.
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut paths: Vec<String> = Vec::new();
    for g in &groups {
        for p in &g.files {
            if !index.contains_key(p.as_str()) {
                index.insert(p.clone(), paths.len());
                paths.push(p.clone());
            }
        }
    }
    let n = paths.len();

    // Multigraph as star edges per group: first member ↔ each other
    // member. Keeps co-members connected with O(|g|) edges instead of a
    // clique's O(|g|²).
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for g in &groups {
        if let Some((first, rest)) = g.files.split_first() {
            let a = index[first.as_str()] as u32;
            for p in rest {
                let b = index[p.as_str()] as u32;
                if a != b {
                    edges.push((a, b));
                }
            }
        }
    }

    // Step 1: connected components via union-find.
    let mut uf = UnionFind::new(n);
    for &(a, b) in &edges {
        uf.union(a as usize, b as usize);
    }
    let mut comp_vertices: HashMap<usize, Vec<u32>> = HashMap::new();
    for v in 0..n {
        comp_vertices.entry(uf.find(v)).or_default().push(v as u32);
    }
    let mut comp_edges: HashMap<usize, Vec<(u32, u32)>> = HashMap::new();
    for &(a, b) in &edges {
        comp_edges
            .entry(uf.find(a as usize))
            .or_default()
            .push((a, b));
    }

    // Step 2: recursively min-cut oversized components.
    type ComponentWork = (Vec<u32>, Vec<(u32, u32)>);
    let mut final_components: Vec<Vec<u32>> = Vec::new();
    let mut queue: Vec<ComponentWork> = comp_vertices
        .into_iter()
        .map(|(root, vs)| (vs, comp_edges.remove(&root).unwrap_or_default()))
        .collect();
    // Deterministic processing order regardless of hash iteration.
    queue.sort_by_key(|(vs, _)| vs[0]);
    while let Some((vs, es)) = queue.pop() {
        if vs.len() <= s {
            final_components.push(vs);
            continue;
        }
        let (left, right) = karger_cut(&vs, &es, rng);
        let left_set: std::collections::HashSet<u32> = left.iter().copied().collect();
        let (mut le, mut re) = (Vec::new(), Vec::new());
        for &(a, b) in &es {
            match (left_set.contains(&a), left_set.contains(&b)) {
                (true, true) => le.push((a, b)),
                (false, false) => re.push((a, b)),
                _ => {} // cut edge: a future redundant transfer
            }
        }
        queue.push((left, le));
        queue.push((right, re));
    }

    // Step 3: package families and account for redundancy.
    let mut family_of: Vec<usize> = vec![usize::MAX; n];
    for (fi, comp) in final_components.iter().enumerate() {
        for &v in comp {
            family_of[v as usize] = fi;
        }
    }
    let mut families: Vec<Family> = final_components
        .iter()
        .map(|comp| {
            let records: Vec<FileRecord> = comp
                .iter()
                .filter_map(|&v| files.get(paths[v as usize].as_str()).cloned())
                .collect();
            Family::new(FamilyId::new(ids.next()), records, Vec::new(), source)
        })
        .collect();

    let mut redundant_files = 0u64;
    let mut redundant_bytes = 0u64;
    for group in groups {
        // Assign the group to the family holding the plurality of its
        // files.
        let mut votes: HashMap<usize, usize> = HashMap::new();
        for p in &group.files {
            if let Some(&v) = index.get(p.as_str()) {
                *votes.entry(family_of[v]).or_insert(0) += 1;
            }
        }
        let Some((&home, _)) = votes.iter().max_by_key(|(fi, c)| (**c, usize::MAX - **fi)) else {
            continue; // empty group
        };
        for p in &group.files {
            let v = index[p.as_str()];

            if family_of[v] != home {
                redundant_files += 1;
                redundant_bytes += files.get(p.as_str()).map_or(0, |f| f.size);
            }
        }
        families[home].groups.push(group);
    }

    FamilySet {
        families,
        redundant_files,
        redundant_bytes,
    }
}

/// One Karger contraction pass: contract uniformly-random edges until two
/// supervertices remain; returns the two sides. Components with no edges
/// (possible only for singletons) never reach here because they cannot
/// exceed `s`.
fn karger_cut(vertices: &[u32], edges: &[(u32, u32)], rng: &mut SmallRng) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(vertices.len() >= 2);
    if edges.is_empty() {
        // Degenerate: split evenly (can happen if duplicate edges were all
        // cut away while the component still exceeds s).
        let mid = vertices.len() / 2;
        return (vertices[..mid].to_vec(), vertices[mid..].to_vec());
    }
    let local: HashMap<u32, usize> = vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut uf = UnionFind::new(vertices.len());
    let mut remaining = vertices.len();
    // Random edge order; contracting in that order is equivalent to
    // Karger's uniform random edge choice on the multigraph.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for &ei in &order {
        if remaining == 2 {
            break;
        }
        let (a, b) = edges[ei];
        if uf.union(local[&a], local[&b]) {
            remaining -= 1;
        }
    }
    // If duplicate-free edges ran out before reaching two supervertices,
    // the leftovers each become their own side via the root partition.
    let mut sides: HashMap<usize, Vec<u32>> = HashMap::new();
    for &v in vertices {
        sides.entry(uf.find(local[&v])).or_default().push(v);
    }
    let mut parts: Vec<Vec<u32>> = sides.into_values().collect();
    parts.sort_by_key(|p| p[0]);
    if parts.len() == 1 {
        // Fully contracted (shouldn't happen with the remaining==2 guard).
        let mid = vertices.len() / 2;
        return (vertices[..mid].to_vec(), vertices[mid..].to_vec());
    }
    let right = parts.pop().expect("≥2 parts");
    let left = parts.into_iter().flatten().collect();
    (left, right)
}

/// Path-compressing, rank-balanced union-find.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Unions two sets; true if they were distinct.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xtract_types::{FileType, GroupId};

    fn setup(
        groups_spec: &[&[&str]],
        sizes: &[(&str, u64)],
    ) -> (HashMap<String, FileRecord>, Vec<Group>) {
        let files: HashMap<String, FileRecord> = sizes
            .iter()
            .map(|(p, s)| {
                (
                    p.to_string(),
                    FileRecord::new(*p, *s, EndpointId::new(0), FileType::FreeText),
                )
            })
            .collect();
        let groups = groups_spec
            .iter()
            .enumerate()
            .map(|(i, paths)| {
                Group::new(
                    GroupId::new(i as u64),
                    paths.iter().map(|p| p.to_string()).collect(),
                )
            })
            .collect();
        (files, groups)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn overlapping_groups_fuse_into_one_family() {
        let (files, groups) = setup(
            &[&["/a", "/shared"], &["/b", "/shared"]],
            &[("/a", 10), ("/b", 20), ("/shared", 100)],
        );
        let ids = IdAllocator::new();
        let set = build_families(&files, groups, EndpointId::new(0), 16, &ids, &mut rng());
        assert_eq!(set.families.len(), 1);
        assert_eq!(set.families[0].file_count(), 3);
        assert_eq!(set.families[0].group_count(), 2);
        assert_eq!(set.redundant_files, 0);
        assert_eq!(set.unique_bytes(), 130);
    }

    #[test]
    fn disjoint_groups_stay_separate() {
        let (files, groups) = setup(
            &[&["/a", "/b"], &["/c", "/d"]],
            &[("/a", 1), ("/b", 1), ("/c", 1), ("/d", 1)],
        );
        let ids = IdAllocator::new();
        let set = build_families(&files, groups, EndpointId::new(0), 16, &ids, &mut rng());
        assert_eq!(set.families.len(), 2);
        assert_eq!(set.redundant_files, 0);
    }

    #[test]
    fn naive_baseline_counts_duplicates() {
        let (files, groups) = setup(
            &[&["/a", "/shared"], &["/b", "/shared"], &["/c", "/shared"]],
            &[("/a", 10), ("/b", 10), ("/c", 10), ("/shared", 1000)],
        );
        let ids = IdAllocator::new();
        let set = naive_families(&files, groups, EndpointId::new(0), &ids);
        assert_eq!(set.families.len(), 3);
        assert_eq!(set.redundant_files, 2); // shared moved 3×: 2 extra
        assert_eq!(set.redundant_bytes, 2000);
    }

    #[test]
    fn min_transfers_beats_naive_on_transfer_bytes() {
        let (files, groups) = setup(
            &[&["/a", "/shared"], &["/b", "/shared"], &["/c", "/shared"]],
            &[("/a", 10), ("/b", 10), ("/c", 10), ("/shared", 1000)],
        );
        let ids = IdAllocator::new();
        let naive = naive_families(&files, groups.clone(), EndpointId::new(0), &ids);
        let naive_transfer: u64 = naive.families.iter().map(Family::total_bytes).sum();
        let min = build_families(&files, groups, EndpointId::new(0), 16, &ids, &mut rng());
        assert!(min.transfer_bytes() < naive_transfer);
        assert_eq!(min.transfer_bytes(), 1030); // each file once
        assert_eq!(naive_transfer, 3030); // shared counted 3×
    }

    #[test]
    fn size_bound_is_respected() {
        // One big star group of 40 files, s = 8: must split into ≥5
        // families, each ≤ 8 files.
        let paths: Vec<String> = (0..40).map(|i| format!("/f{i}")).collect();
        let sizes: Vec<(&str, u64)> = paths.iter().map(|p| (p.as_str(), 1)).collect();
        let group: Vec<&str> = paths.iter().map(String::as_str).collect();
        let (files, groups) = setup(&[&group], &sizes);
        let ids = IdAllocator::new();
        let set = build_families(&files, groups, EndpointId::new(0), 8, &ids, &mut rng());
        assert!(
            set.families.len() >= 5,
            "only {} families",
            set.families.len()
        );
        for f in &set.families {
            assert!(f.file_count() <= 8, "family too large: {}", f.file_count());
        }
        // All 40 files present exactly once across families.
        let total: usize = set.families.iter().map(Family::file_count).sum();
        assert_eq!(total, 40);
        // Splitting one group leaves redundant members.
        assert!(set.redundant_files > 0);
    }

    #[test]
    fn files_partition_exactly_once() {
        // Random-ish overlap pattern; every input file must land in
        // exactly one family regardless of cuts.
        let mut groups_spec: Vec<Vec<String>> = Vec::new();
        for i in 0..12 {
            groups_spec.push(vec![
                format!("/f{}", i),
                format!("/f{}", (i + 1) % 12),
                format!("/f{}", (i * 5) % 12),
            ]);
        }
        let sizes: Vec<(String, u64)> = (0..12).map(|i| (format!("/f{i}"), 7)).collect();
        let files: HashMap<String, FileRecord> = sizes
            .iter()
            .map(|(p, s)| {
                (
                    p.clone(),
                    FileRecord::new(p.clone(), *s, EndpointId::new(0), FileType::FreeText),
                )
            })
            .collect();
        let groups: Vec<Group> = groups_spec
            .iter()
            .enumerate()
            .map(|(i, ps)| Group::new(GroupId::new(i as u64), ps.clone()))
            .collect();
        let ids = IdAllocator::new();
        let set = build_families(&files, groups, EndpointId::new(0), 4, &ids, &mut rng());
        let mut seen: Vec<String> = set
            .families
            .iter()
            .flat_map(|f| f.files.iter().map(|r| r.path.clone()))
            .collect();
        seen.sort();
        let mut expected: Vec<String> = (0..12).map(|i| format!("/f{i}")).collect();
        expected.sort();
        assert_eq!(seen, expected);
        for f in &set.families {
            assert!(f.file_count() <= 4);
        }
        // Every group assigned to exactly one family.
        let group_total: usize = set.families.iter().map(|f| f.groups.len()).sum();
        assert_eq!(group_total, 12);
    }

    #[test]
    fn determinism_per_seed() {
        let paths: Vec<String> = (0..30).map(|i| format!("/f{i}")).collect();
        let sizes: Vec<(&str, u64)> = paths.iter().map(|p| (p.as_str(), 3)).collect();
        let group: Vec<&str> = paths.iter().map(String::as_str).collect();
        let run = |seed: u64| {
            let (files, groups) = setup(&[&group], &sizes);
            let ids = IdAllocator::new();
            let mut r = SmallRng::seed_from_u64(seed);
            let set = build_families(&files, groups, EndpointId::new(0), 6, &ids, &mut r);
            set.families
                .iter()
                .map(|f| {
                    let mut v: Vec<&str> = f.files.iter().map(|r| r.path.as_str()).collect();
                    v.sort();
                    v.join(",")
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        // Different seeds are allowed to differ (randomized cuts), but the
        // partition properties were asserted above.
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_s_rejected() {
        let (files, groups) = setup(&[&["/a"]], &[("/a", 1)]);
        let ids = IdAllocator::new();
        let _ = build_families(&files, groups, EndpointId::new(0), 0, &ids, &mut rng());
    }

    #[test]
    fn empty_input_yields_empty_set() {
        let files = HashMap::new();
        let ids = IdAllocator::new();
        let set = build_families(&files, Vec::new(), EndpointId::new(0), 8, &ids, &mut rng());
        assert!(set.families.is_empty());
        assert_eq!(set.transfer_bytes(), 0);
    }
}
