//! Metadata utility scoring (§7, future work: "We will also evaluate the
//! utility of extracted metadata, so that we can explore utility-cost
//! tradeoffs"; §2.2 frames extraction as maximizing "some measure of
//! utility of the extracted metadata ... subject to limits on incurred
//! costs").
//!
//! We implement a concrete, defensible utility measure over a validated
//! record:
//!
//! * **coverage** — how many distinct metadata facets (extractor
//!   namespaces) contributed;
//! * **depth** — scalar leaf count, log-scaled (more fields → more
//!   findable, with diminishing returns);
//! * **searchability** — distinct index-able terms, log-scaled (what a
//!   search index can actually match);
//! * **error penalty** — per-file error records subtract.
//!
//! The `ablation_utility_cost` bench sweeps extraction plans of growing
//! cost and plots the resulting utility — the paper's deferred
//! utility-cost curve.

use serde_json::Value;
use std::collections::HashSet;
use xtract_types::MetadataRecord;

/// A scored record.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityScore {
    /// Distinct extractor namespaces that produced output.
    pub facets: usize,
    /// Scalar leaves in the document.
    pub leaves: usize,
    /// Distinct searchable terms.
    pub terms: usize,
    /// Per-file error entries found.
    pub errors: usize,
    /// The combined score (≥ 0).
    pub score: f64,
}

fn walk(value: &Value, leaves: &mut usize, terms: &mut HashSet<String>, errors: &mut usize) {
    match value {
        Value::Object(m) => {
            for (k, v) in m {
                if k == "error" {
                    // Error text is diagnostics, not findable metadata:
                    // count the failure, skip its contents.
                    *errors += 1;
                    continue;
                }
                for t in k
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|t| t.len() >= 2)
                {
                    terms.insert(t.to_lowercase());
                }
                walk(v, leaves, terms, errors);
            }
        }
        Value::Array(a) => {
            for v in a {
                walk(v, leaves, terms, errors);
            }
        }
        Value::String(s) => {
            *leaves += 1;
            for t in s
                .split(|c: char| !c.is_alphanumeric())
                .filter(|t| t.len() >= 2)
            {
                terms.insert(t.to_lowercase());
            }
        }
        Value::Number(_) | Value::Bool(_) => *leaves += 1,
        Value::Null => {}
    }
}

/// Scores one record.
pub fn score(record: &MetadataRecord) -> UtilityScore {
    let mut leaves = 0usize;
    let mut terms = HashSet::new();
    let mut errors = 0usize;
    // Facets: top-level extractor namespaces with non-empty output (the
    // MDF envelope's `extracted` object counts per inner namespace).
    let doc = &record.document.0;
    let namespaces: &serde_json::Map<String, Value> = match doc.get("extracted") {
        Some(Value::Object(inner)) => inner,
        _ => doc,
    };
    // A facet is an extractor namespace: a top-level *object* with
    // content. Scalar housekeeping fields (path, size) are not facets —
    // that is precisely the filesystem-metadata baseline the paper says
    // "do[es] little more than de-duplicate files" (§1).
    let facets = namespaces
        .iter()
        .filter(|(_, v)| v.as_object().is_some_and(|m| !m.is_empty()))
        .count();
    for v in doc.values() {
        walk(v, &mut leaves, &mut terms, &mut errors);
    }
    // Diminishing returns on sheer volume; errors subtract half a facet
    // each but never push below zero.
    let score =
        (facets as f64 + (1.0 + leaves as f64).ln() + 0.5 * (1.0 + terms.len() as f64).ln()
            - 0.5 * errors as f64)
            .max(0.0);
    UtilityScore {
        facets,
        leaves,
        terms: terms.len(),
        errors,
        score,
    }
}

/// Mean score across records (0 for an empty set).
pub fn mean_score(records: &[MetadataRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(|r| score(r).score).sum::<f64>() / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use xtract_types::{FamilyId, Metadata};

    fn record(doc: Value) -> MetadataRecord {
        MetadataRecord {
            family: FamilyId::new(0),
            schema: "passthrough".into(),
            document: match doc {
                Value::Object(m) => Metadata(m),
                _ => panic!("object"),
            },
            extractors: vec![],
        }
    }

    #[test]
    fn richer_records_score_higher() {
        let thin = record(json!({"keyword": {"token_count": 3}}));
        let rich = record(json!({
            "keyword": {"keywords": [{"word": "perovskite", "weight": 0.8}], "token_count": 900},
            "tabular": {"rows": 40, "columns": 5, "column_stats": [{"name": "t", "mean": 3.2}]},
            "matio": {"formula": "Si8", "final_energy_ev": -43.2, "converged": true}
        }));
        let (s_thin, s_rich) = (score(&thin), score(&rich));
        assert!(s_rich.score > s_thin.score);
        assert_eq!(s_rich.facets, 3);
        assert_eq!(s_thin.facets, 1);
        assert!(s_rich.terms > s_thin.terms);
    }

    #[test]
    fn errors_reduce_utility() {
        let clean = record(json!({"images": {"class": "plot", "width": 64}}));
        let broken = record(
            json!({"images": {"error": "missing XIMG magic", "class": "plot", "width": 64}}),
        );
        assert!(score(&broken).score < score(&clean).score);
        assert_eq!(score(&broken).errors, 1);
    }

    #[test]
    fn mdf_envelope_counts_inner_facets() {
        let rec = record(json!({
            "mdf": {"schema": "mdf-generic"},
            "extracted": {"keyword": {"k": 1}, "tabular": {"rows": 2}}
        }));
        assert_eq!(score(&rec).facets, 2);
    }

    #[test]
    fn empty_record_scores_zero_facets() {
        let rec = record(json!({}));
        let s = score(&rec);
        assert_eq!(s.facets, 0);
        assert_eq!(s.leaves, 0);
        assert!(s.score >= 0.0);
    }

    #[test]
    fn mean_score_aggregates() {
        let a = record(json!({"keyword": {"token_count": 10}}));
        let b = record(json!({"keyword": {"token_count": 10}}));
        let m = mean_score(&[a.clone(), b]);
        assert!((m - score(&a).score).abs() < 1e-12);
        assert_eq!(mean_score(&[]), 0.0);
    }
}
