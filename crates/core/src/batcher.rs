//! Two-level batching (§4.3.2).
//!
//! Level 1 — **Xtract batching**: families that share an `(endpoint,
//! extractor)` pair fuse into one FaaS task of up to
//! `xtract_batch_size` families ("combines families that use the same
//! extractors into a single funcX task ... transparent to funcX").
//!
//! Level 2 — **funcX batching**: up to `funcx_batch_size` such tasks are
//! submitted in a single web-service request ("funcX expands the batch
//! into a set of individual function invocations").
//!
//! The batcher is an accumulator: families stream in (from the planner),
//! full batches stream out; `flush` drains stragglers at end of job.

use std::collections::HashMap;
use xtract_types::{EndpointId, ExtractorKind, Family};

/// One Xtract batch: families bound for the same endpoint + extractor,
/// executed as a single FaaS task (serially, by one worker).
#[derive(Debug, Clone)]
pub struct XtractBatch {
    /// Target endpoint.
    pub endpoint: EndpointId,
    /// Extractor to apply.
    pub extractor: ExtractorKind,
    /// Member families.
    pub families: Vec<Family>,
}

impl XtractBatch {
    /// Total files across member families.
    pub fn file_count(&self) -> usize {
        self.families.iter().map(Family::file_count).sum()
    }
}

/// One funcX batch: Xtract batches submitted in a single web request.
#[derive(Debug, Clone)]
pub struct FuncxBatch {
    /// The member tasks.
    pub tasks: Vec<XtractBatch>,
}

impl FuncxBatch {
    /// Total families across tasks.
    pub fn family_count(&self) -> usize {
        self.tasks.iter().map(|t| t.families.len()).sum()
    }
}

/// The streaming two-level batcher.
///
/// ```
/// use xtract_core::Batcher;
/// use xtract_types::{EndpointId, ExtractorKind, Family, FamilyId};
///
/// let mut batcher = Batcher::new(2, 2); // Xtract batch 2, funcX batch 2
/// let ep = EndpointId::new(0);
/// let fam = |i| Family::new(FamilyId::new(i), vec![], vec![], ep);
/// let mut emitted = Vec::new();
/// for i in 0..8 {
///     emitted.extend(batcher.push(fam(i), ExtractorKind::Keyword, ep));
/// }
/// emitted.extend(batcher.flush());
/// // 8 families -> 4 Xtract batches -> 2 funcX requests.
/// assert_eq!(emitted.len(), 2);
/// assert_eq!(emitted[0].family_count(), 4);
/// ```
#[derive(Debug)]
pub struct Batcher {
    xtract_batch_size: usize,
    funcx_batch_size: usize,
    // Accumulating level-1 batches.
    open: HashMap<(EndpointId, ExtractorKind), Vec<Family>>,
    // Completed level-1 batches awaiting level-2 fusion.
    ready: Vec<XtractBatch>,
}

impl Batcher {
    /// A batcher with the two §4.3.2 knobs (Fig. 5 sweeps both 1–32).
    pub fn new(xtract_batch_size: usize, funcx_batch_size: usize) -> Self {
        assert!(xtract_batch_size > 0 && funcx_batch_size > 0);
        Self {
            xtract_batch_size,
            funcx_batch_size,
            open: HashMap::new(),
            ready: Vec::new(),
        }
    }

    /// Offers one (family, extractor, endpoint) unit of work; returns any
    /// funcX batches that became full.
    pub fn push(
        &mut self,
        family: Family,
        extractor: ExtractorKind,
        endpoint: EndpointId,
    ) -> Vec<FuncxBatch> {
        let slot = self.open.entry((endpoint, extractor)).or_default();
        slot.push(family);
        if slot.len() >= self.xtract_batch_size {
            let families = std::mem::take(slot);
            self.ready.push(XtractBatch {
                endpoint,
                extractor,
                families,
            });
        }
        self.drain_full()
    }

    fn drain_full(&mut self) -> Vec<FuncxBatch> {
        let mut out = Vec::new();
        while self.ready.len() >= self.funcx_batch_size {
            let tasks = self.ready.drain(..self.funcx_batch_size).collect();
            out.push(FuncxBatch { tasks });
        }
        out
    }

    /// Retunes both batch knobs mid-stream (the adaptive controller's
    /// entry point). Open level-1 slots that already meet the new Xtract
    /// size are sealed in chunks of the new size — so every batch
    /// respects the limits in force at the moment it seals — and any
    /// newly full funcX batches are returned. No family is ever lost or
    /// duplicated by a resize.
    pub fn set_limits(
        &mut self,
        xtract_batch_size: usize,
        funcx_batch_size: usize,
    ) -> Vec<FuncxBatch> {
        assert!(xtract_batch_size > 0 && funcx_batch_size > 0);
        self.xtract_batch_size = xtract_batch_size;
        self.funcx_batch_size = funcx_batch_size;
        let mut keys: Vec<_> = self.open.keys().copied().collect();
        keys.sort(); // deterministic seal order
        for key in keys {
            let slot = self.open.get_mut(&key).expect("key just listed");
            while slot.len() >= self.xtract_batch_size {
                let families: Vec<Family> = slot.drain(..self.xtract_batch_size).collect();
                self.ready.push(XtractBatch {
                    endpoint: key.0,
                    extractor: key.1,
                    families,
                });
            }
            if slot.is_empty() {
                self.open.remove(&key);
            }
        }
        self.drain_full()
    }

    /// The current `(xtract_batch_size, funcx_batch_size)` pair.
    pub fn limits(&self) -> (usize, usize) {
        (self.xtract_batch_size, self.funcx_batch_size)
    }

    /// Drains every partial batch (end of job). Families never get stuck.
    pub fn flush(&mut self) -> Vec<FuncxBatch> {
        let mut keys: Vec<_> = self.open.keys().copied().collect();
        keys.sort(); // deterministic flush order
        for key in keys {
            if let Some(families) = self.open.remove(&key) {
                if !families.is_empty() {
                    self.ready.push(XtractBatch {
                        endpoint: key.0,
                        extractor: key.1,
                        families,
                    });
                }
            }
        }
        let mut out = self.drain_full();
        if !self.ready.is_empty() {
            out.push(FuncxBatch {
                tasks: std::mem::take(&mut self.ready),
            });
        }
        out
    }

    /// Families currently buffered (not yet emitted).
    pub fn buffered(&self) -> usize {
        self.open.values().map(Vec::len).sum::<usize>()
            + self.ready.iter().map(|t| t.families.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xtract_types::{FamilyId, FileRecord, FileType, Group, GroupId};

    fn family(id: u64) -> Family {
        let f = FileRecord::new(format!("/f{id}"), 1, EndpointId::new(0), FileType::FreeText);
        let g = Group::new(GroupId::new(id), vec![f.path.clone()]);
        Family::new(FamilyId::new(id), vec![f], vec![g], EndpointId::new(0))
    }

    #[test]
    fn batches_fill_at_both_levels() {
        let mut b = Batcher::new(2, 3);
        let ep = EndpointId::new(0);
        let mut emitted = Vec::new();
        for i in 0..12 {
            emitted.extend(b.push(family(i), ExtractorKind::Keyword, ep));
        }
        // 12 families → 6 Xtract batches → 2 funcX batches of 3.
        assert_eq!(emitted.len(), 2);
        for fb in &emitted {
            assert_eq!(fb.tasks.len(), 3);
            assert!(fb.tasks.iter().all(|t| t.families.len() == 2));
        }
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn distinct_extractors_never_share_a_task() {
        let mut b = Batcher::new(4, 1);
        let ep = EndpointId::new(0);
        let mut pushed: HashMap<u64, ExtractorKind> = HashMap::new();
        let mut out = Vec::new();
        for i in 0..4 {
            let kind = if i % 2 == 0 {
                ExtractorKind::Keyword
            } else {
                ExtractorKind::Tabular
            };
            pushed.insert(i, kind);
            out.extend(b.push(family(i), kind, ep));
        }
        out.extend(b.flush());
        let mut seen = 0;
        for fb in &out {
            for t in &fb.tasks {
                // Every family in a task shares the task's extractor:
                // each member must have been pushed with exactly the
                // extractor the task carries.
                for fam in &t.families {
                    assert_eq!(pushed[&fam.id.raw()], t.extractor);
                    seen += 1;
                }
                // With two interleaved extractors and xtract size 4, no
                // slot ever fills: tasks are per-extractor stragglers.
                assert!(t.families.len() <= 2);
            }
        }
        assert_eq!(seen, 4, "every pushed family is emitted exactly once");
    }

    #[test]
    fn distinct_endpoints_never_share_a_task() {
        let mut b = Batcher::new(8, 8);
        let mut out = Vec::new();
        out.extend(b.push(family(0), ExtractorKind::Keyword, EndpointId::new(0)));
        out.extend(b.push(family(1), ExtractorKind::Keyword, EndpointId::new(1)));
        out.extend(b.flush());
        let tasks: Vec<&XtractBatch> = out.iter().flat_map(|f| f.tasks.iter()).collect();
        assert_eq!(tasks.len(), 2);
        assert_ne!(tasks[0].endpoint, tasks[1].endpoint);
    }

    #[test]
    fn flush_emits_stragglers() {
        let mut b = Batcher::new(8, 4);
        let ep = EndpointId::new(0);
        assert!(b.push(family(0), ExtractorKind::Keyword, ep).is_empty());
        assert_eq!(b.buffered(), 1);
        let out = b.flush();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].family_count(), 1);
        assert_eq!(b.buffered(), 0);
        assert!(b.flush().is_empty());
    }

    proptest! {
        /// No family is lost or duplicated, for any batch-size pair and
        /// any work sequence.
        #[test]
        fn conservation(
            xb in 1usize..6,
            fb in 1usize..6,
            work in proptest::collection::vec((0u64..4, 0usize..3), 0..80),
        ) {
            let kinds = [ExtractorKind::Keyword, ExtractorKind::Tabular, ExtractorKind::Images];
            let mut b = Batcher::new(xb, fb);
            let mut out = Vec::new();
            for (i, (ep, k)) in work.iter().enumerate() {
                out.extend(b.push(family(i as u64), kinds[*k], EndpointId::new(*ep)));
            }
            out.extend(b.flush());
            let mut ids: Vec<u64> = out
                .iter()
                .flat_map(|f| f.tasks.iter())
                .flat_map(|t| t.families.iter())
                .map(|fam| fam.id.raw())
                .collect();
            ids.sort_unstable();
            let expected: Vec<u64> = (0..work.len() as u64).collect();
            prop_assert_eq!(ids, expected);
            // Size bounds respected.
            for f in &out {
                prop_assert!(f.tasks.len() <= fb);
                for t in &f.tasks {
                    prop_assert!(t.families.len() <= xb);
                }
            }
        }

        /// `set_limits` mid-stream never loses or duplicates a family,
        /// and every emitted batch respects the largest limits that were
        /// ever in force (each batch in fact respects the limits at its
        /// seal time; the max is the loosest sound bound to assert
        /// without replaying the schedule).
        #[test]
        fn conservation_across_resizes(
            start in (1usize..6, 1usize..6),
            work in proptest::collection::vec(
                // Each step: (endpoint, kind, resize-to (optional)).
                (0u64..4, 0usize..3, proptest::option::of((1usize..9, 1usize..9))),
                0..80,
            ),
        ) {
            let kinds = [ExtractorKind::Keyword, ExtractorKind::Tabular, ExtractorKind::Images];
            let mut b = Batcher::new(start.0, start.1);
            let (mut max_xb, mut max_fb) = start;
            let mut out = Vec::new();
            for (i, (ep, k, resize)) in work.iter().enumerate() {
                if let Some((xb, fb)) = resize {
                    max_xb = max_xb.max(*xb);
                    max_fb = max_fb.max(*fb);
                    out.extend(b.set_limits(*xb, *fb));
                }
                out.extend(b.push(family(i as u64), kinds[*k], EndpointId::new(*ep)));
            }
            out.extend(b.flush());
            prop_assert_eq!(b.buffered(), 0);
            let mut ids: Vec<u64> = out
                .iter()
                .flat_map(|f| f.tasks.iter())
                .flat_map(|t| t.families.iter())
                .map(|fam| fam.id.raw())
                .collect();
            ids.sort_unstable();
            let expected: Vec<u64> = (0..work.len() as u64).collect();
            prop_assert_eq!(ids, expected);
            for f in &out {
                prop_assert!(f.tasks.len() <= max_fb);
                for t in &f.tasks {
                    prop_assert!(t.families.len() <= max_xb);
                }
            }
        }
    }
}
