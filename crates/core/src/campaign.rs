//! The campaign simulator: paper-scale experiments on a virtual clock.
//!
//! Runs the same pipeline as the live service — crawl hand-off, optional
//! prefetch, two-level batching, FaaS dispatch, worker execution,
//! allocation expiry + checkpointed restart — against
//! [`xtract_workloads::FamilyProfile`] streams and the calibrated cost
//! models in `xtract_sim::calibration`. A 2.5 M-group MDF campaign
//! (Fig. 8) simulates in seconds of wall-clock.
//!
//! Model structure (each stage feeds the next stage's ready time):
//!
//! 1. **Crawl** — family *i* becomes visible at
//!    [`CrawlModel::family_ready_time`] (families stream out
//!    asynchronously, §5.8.1).
//! 2. **Prefetch** (optional) — families chunk into Globus-style transfer
//!    jobs over a fair-share link with a concurrent-job cap (Fig. 6's "10
//!    concurrent Globus transfer jobs").
//! 3. **Batching** — families fuse into Xtract batches per extractor
//!    class, then into funcX requests (§4.3.2); the dispatcher is a
//!    serial resource costing `WS_REQUEST_S` + per-family serialization.
//! 4. **Execution** — an [`xtract_sim::ServerPool`] of worker containers;
//!    an Xtract batch runs serially on one worker (that is what makes
//!    oversized batches straggle in Fig. 5).
//! 5. **Allocation windows** — with a scheduler limit (Theta's 6 h),
//!    work in flight at expiry is lost and resubmitted; the checkpoint
//!    flag preserves finished families inside lost tasks (§5.8.1).

use crate::adaptive::{AdaptiveTuner, BatchTuner, WaveEvidence};
use crate::crawlmodel::CrawlModel;
use rand::rngs::SmallRng;
use xtract_obs::{Phase, PhaseTimings};

use xtract_sim::calibration::{extractor_cost, faas};
use xtract_sim::dist::lognormal;
use xtract_sim::net::{simulate_transfers, TransferJob, TransferSlots};
use xtract_sim::sites::{LinkSpec, Site};
use xtract_sim::{RngStreams, ServerPool, SimTime};
use xtract_types::fault::fault_roll;
use xtract_types::{
    AdaptiveBatching, DeadLetter, EndpointId, ExtractorKind, FailureReason, FamilyId, FaultPlan,
    HedgePolicy, TaskId, XtractError,
};
use xtract_workloads::FamilyProfile;

/// Optional prefetch stage: move family bytes across a link before
/// extraction (Fig. 6, Table 2, Fig. 7 use this).
#[derive(Debug, Clone, Copy)]
pub struct PrefetchPlan {
    /// The wide-area path.
    pub link: LinkSpec,
    /// Concurrent transfer jobs (Globus setting; Fig. 6 uses 10).
    pub slots: usize,
    /// Families bundled per transfer job.
    pub families_per_job: usize,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Facility the workers live at.
    pub site: Site,
    /// Worker containers in use (≤ site capacity).
    pub workers: usize,
    /// Families per Xtract batch (§4.3.2).
    pub xtract_batch: usize,
    /// Xtract batches per funcX request (§4.3.2).
    pub funcx_batch: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Crawl model for staged family arrival (`None` = all ready at 0).
    pub crawl: Option<(CrawlModel, usize)>,
    /// Prefetch stage (`None` = data already local).
    pub prefetch: Option<PrefetchPlan>,
    /// Scheduler allocation limit override (defaults to the site's).
    pub allocation_limit_s: Option<f64>,
    /// Checkpoint flag (§5.8.1).
    pub checkpoint: bool,
    /// Delay between an allocation expiring and the next one starting.
    pub restart_overhead_s: f64,
    /// Cold-start cost paid by every worker before its first task
    /// (§5.8.2's ≈70 s; 0 when containers are pre-warmed).
    pub cold_start_s: f64,
    /// Give up on a family after this many lost attempts (it is possible
    /// for a non-checkpointed family's service time to exceed the
    /// allocation window, in which case it can never finish).
    pub max_attempts: u32,
    /// Structured fault injection (`None` = no injected faults): worker
    /// crashes and heartbeat losses strike executing tasks, degraded links
    /// and transfer faults delay prefetch jobs — the same [`FaultPlan`]
    /// the live service consumes, consulted deterministically from the
    /// plan's own seed.
    pub fault_plan: Option<FaultPlan>,
    /// Straggler defense (`None` = no hedging): a crashed or
    /// heartbeat-lost task is noticed at its adaptive deadline — the
    /// class-mean estimate times the policy multiplier, clamped to the
    /// policy floor/ceiling — and speculatively resubmitted then, instead
    /// of waiting out the full (never-arriving) completion. Models the
    /// live orchestrator's hedged re-execution on the virtual clock, for
    /// Fig. 8-style rework-cost vs makespan comparisons.
    pub hedge: Option<HedgePolicy>,
    /// Adaptive two-level batching (`None` = the static
    /// `xtract_batch`/`funcx_batch` grid point). When set (and enabled),
    /// the campaign runs *synchronous waves*: each wave batches with the
    /// [`AdaptiveTuner`]'s current limits, executes to a barrier, and
    /// feeds the observed per-family latency median back into the
    /// controller — the simulated analogue of the live orchestrator's
    /// latency-feedback loop. `xtract_batch`/`funcx_batch` become the
    /// controller's starting point rather than fixed sizes. Adaptive
    /// campaigns model fault-free sweeps: `fault_plan`, `hedge`, and
    /// allocation limits must be unset.
    pub adaptive: Option<AdaptiveBatching>,
}

impl CampaignConfig {
    /// A minimal config for `site` with pre-warmed containers and no
    /// allocation limit.
    pub fn new(site: Site, workers: usize, seed: u64) -> Self {
        assert!(workers > 0);
        Self {
            site,
            workers,
            xtract_batch: 8,
            funcx_batch: 16,
            seed,
            crawl: None,
            prefetch: None,
            allocation_limit_s: None,
            checkpoint: false,
            restart_overhead_s: 120.0,
            cold_start_s: 0.0,
            max_attempts: 10,
            fault_plan: None,
            hedge: None,
            adaptive: None,
        }
    }
}

/// One family's simulated outcome.
#[derive(Debug, Clone, Copy)]
pub struct FamilyOutcome {
    /// Extractor class.
    pub class: &'static str,
    /// When the family became available (crawl + prefetch done).
    pub ready: f64,
    /// When its (final, successful) task started on a worker.
    pub start: f64,
    /// When its extraction finished.
    pub finish: f64,
    /// Execution attempts (>1 means it was lost to an expiry).
    pub attempts: u32,
    /// Sampled service seconds (final attempt's remaining work).
    pub service: f64,
}

/// Aggregate results.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-family outcomes, in completion order.
    pub outcomes: Vec<FamilyOutcome>,
    /// Last finish instant.
    pub makespan: f64,
    /// Aggregate worker-busy seconds ("core hours" × 3600).
    pub busy_core_seconds: f64,
    /// funcX web-service requests issued.
    pub ws_requests: u64,
    /// Allocation restarts taken.
    pub restarts: u32,
    /// Families lost at least once.
    pub lost_families: u64,
    /// Families abandoned after `max_attempts` losses.
    pub failed_families: u64,
    /// Hedged (deadline-triggered) speculative resubmissions launched.
    pub hedges_launched: u64,
    /// Hedged resubmissions whose task completed (or fully checkpointed
    /// out). Always `hedges_launched == hedges_won + hedges_wasted`.
    pub hedges_won: u64,
    /// Hedged resubmissions lost again or abandoned.
    pub hedges_wasted: u64,
    /// One typed record per abandoned family (same shape as the live
    /// report's dead letters).
    pub dead_letters: Vec<DeadLetter>,
    /// When the crawl finished feeding families.
    pub crawl_finish: f64,
    /// When the last prefetch job finished (0 when no prefetch).
    pub transfer_finish: f64,
    /// Total bytes moved by prefetch.
    pub bytes_transferred: u64,
    /// Per-wave `(xtract, funcx)` limits the adaptive controller used, in
    /// wave order — the tuning trajectory. Empty for static campaigns.
    pub batch_trajectory: Vec<(usize, usize)>,
    /// Per-phase virtual-time marks, in the same shape the live
    /// [`crate::JobReport`] uses. Campaign phases *overlap* (families
    /// extract while the crawl still streams), so these are stage spans on
    /// the virtual clock — crawl/stage are finish marks, dispatch is the
    /// serial dispatcher's busy time, extract is mean per-worker busy
    /// time — and their sum is not the makespan.
    pub phases: PhaseTimings,
}

impl CampaignReport {
    /// Overall completed-families-per-second.
    pub fn throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.outcomes.len() as f64 / self.makespan
        }
    }

    /// Completions per `bucket_s`-second bucket: the Fig. 8 throughput
    /// curve.
    pub fn completion_timeline(&self, bucket_s: f64) -> Vec<(f64, u64)> {
        assert!(bucket_s > 0.0);
        let buckets = (self.makespan / bucket_s).ceil() as usize + 1;
        let mut counts = vec![0u64; buckets];
        for o in &self.outcomes {
            counts[(o.finish / bucket_s) as usize] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (i as f64 * bucket_s, c))
            .collect()
    }

    /// Core hours consumed (§5.8.1 reports 26 200 for full MDF).
    pub fn core_hours(&self) -> f64 {
        self.busy_core_seconds / 3600.0
    }

    /// Virtual seconds of extraction that ran *while transfers were still
    /// in flight* — the Fig. 8 overlap: each family contributes the part
    /// of its `[start, finish]` execution span that precedes the last
    /// prefetch finishing. Zero when nothing was prefetched; approaches
    /// the summed execution time when extraction fully hides inside the
    /// transfer window ("processes the repository in roughly half the
    /// time it would take to merely move the bytes", §5.6).
    pub fn stage_overlap_s(&self) -> f64 {
        if self.transfer_finish <= 0.0 {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| (self.transfer_finish.min(o.finish) - o.start).max(0.0))
            .sum()
    }
}

struct SimTask {
    family_idx: Vec<usize>,
    services: Vec<f64>,
    ready: SimTime,
}

/// Expected reference-core service seconds for a class (the lognormal
/// mean `e^{mu + sigma^2/2}`).
fn mean_ref_service(class: &str) -> f64 {
    let (mu, sigma) = extractor_cost::lognormal_params(class);
    (mu + sigma * sigma / 2.0).exp()
}

/// Best-effort mapping from a workload class string to the extractor
/// family it exercises, for typed dead letters.
fn class_kind(class: &str) -> ExtractorKind {
    match class {
        "csv" | "tabular" => ExtractorKind::Tabular,
        "json" | "xml" | "yaml" => ExtractorKind::SemiStructured,
        "images" | "imagesort" => ExtractorKind::Images,
        "netcdf" | "hdf" | "ase" | "matio" => ExtractorKind::Hierarchical,
        "bert" => ExtractorKind::Bert,
        "python" => ExtractorKind::PythonCode,
        "c-code" => ExtractorKind::CCode,
        _ => ExtractorKind::Keyword,
    }
}

/// The simulator.
pub struct Campaign {
    config: CampaignConfig,
    profiles: Vec<FamilyProfile>,
}

impl Campaign {
    /// A campaign over `profiles` under `config`.
    pub fn new(config: CampaignConfig, profiles: Vec<FamilyProfile>) -> Self {
        assert!(
            config.workers <= config.site.max_workers().max(config.workers),
            "worker count exceeds site capacity"
        );
        Self { config, profiles }
    }

    /// Samples one family's service time on this site's cores.
    ///
    /// The lognormal tail is capped at 8 250 reference-core-seconds
    /// (≈15 000 s on Theta's 0.55-speed cores — the longest per-family
    /// duration visible in Fig. 8's scatter): no real family exceeded a
    /// single six-hour allocation, and an uncapped tail would make some
    /// families physically unfinishable under §5.8.1's restart model.
    fn sample_service(&self, class: &str, rng: &mut SmallRng) -> f64 {
        const REF_SERVICE_CAP_S: f64 = 8_250.0;
        let (mu, sigma) = extractor_cost::lognormal_params(class);
        lognormal(rng, mu, sigma).min(REF_SERVICE_CAP_S) / self.config.site.core_speed
    }

    /// Runs the campaign: the adaptive synchronous-wave path when
    /// [`CampaignConfig::adaptive`] is set and enabled, the fully
    /// pipelined static path otherwise.
    pub fn run(&self) -> CampaignReport {
        match self.config.adaptive {
            Some(policy) if policy.enabled => self.run_adaptive(policy),
            _ => self.run_static(),
        }
    }

    /// Stages 1–2 (crawl arrival + optional prefetch), shared by both
    /// execution paths: per-family visibility instants, the crawl and
    /// transfer finish marks, and bytes moved.
    fn arrivals(&self) -> (Vec<SimTime>, SimTime, SimTime, u64) {
        let cfg = &self.config;
        let n = self.profiles.len();

        // Stage 1: crawl arrival times.
        let mut ready: Vec<SimTime> = match &cfg.crawl {
            Some((model, crawl_workers)) => (0..n as u64)
                .map(|i| model.family_ready_time(*crawl_workers, i))
                .collect(),
            None => vec![SimTime::ZERO; n],
        };
        let crawl_finish = ready.iter().copied().max().unwrap_or(SimTime::ZERO);

        // Stage 2: prefetch.
        let mut transfer_finish = SimTime::ZERO;
        let mut bytes_transferred = 0u64;
        if let Some(plan) = &cfg.prefetch {
            let mut jobs: Vec<TransferJob> = Vec::new();
            let mut job_members: Vec<Vec<usize>> = Vec::new();
            let mut cur = Vec::new();
            let mut cur_bytes = 0u64;
            let mut cur_ready = SimTime::ZERO;
            for (i, r) in ready.iter().enumerate().take(n) {
                cur.push(i);
                cur_bytes += self.profiles[i].bytes;
                cur_ready = cur_ready.max(*r);
                if cur.len() >= plan.families_per_job || i + 1 == n {
                    jobs.push(TransferJob {
                        ready: cur_ready + SimTime::from_secs(plan.link.startup_s),
                        bytes: cur_bytes,
                    });
                    job_members.push(std::mem::take(&mut cur));
                    cur_bytes = 0;
                    cur_ready = SimTime::ZERO;
                }
            }
            let outcomes = simulate_transfers(
                plan.link.bandwidth_bps,
                plan.link.per_stream_bps,
                TransferSlots::new(plan.slots),
                &jobs,
            );
            for (j, (job, members)) in outcomes.iter().zip(&job_members).enumerate() {
                // Injected link faults delay the job: a transient fault
                // costs one retried submission (another startup), a
                // degraded link adds the plan's configured stall.
                let mut extra_s = 0.0;
                if let Some(fp) = &cfg.fault_plan {
                    let path = format!("/sim/xfer-{j}");
                    if fp.transfer_file_faults(&path, 0) {
                        extra_s += plan.link.startup_s;
                    }
                    if fp.link_degraded(&path, 0) {
                        extra_s += fp.slow_link_delay_ms as f64 / 1000.0;
                    }
                }
                let finish = job.finish + SimTime::from_secs(extra_s);
                transfer_finish = transfer_finish.max(finish);
                for &i in members {
                    ready[i] = finish;
                }
            }
            bytes_transferred = jobs.iter().map(|j| j.bytes).sum();
        }
        (ready, crawl_finish, transfer_finish, bytes_transferred)
    }

    /// The static pipeline: one batching pass over the whole campaign at
    /// the configured grid point, fully pipelined through dispatcher and
    /// workers.
    fn run_static(&self) -> CampaignReport {
        let cfg = &self.config;
        let streams = RngStreams::new(cfg.seed);
        let mut service_rng = streams.stream("campaign-service");
        let n = self.profiles.len();
        let (ready, crawl_finish, transfer_finish, bytes_transferred) = self.arrivals();

        // Stage 3: batching + dispatch. Families in ready order fuse into
        // per-class Xtract batches; full batches fuse into funcX requests
        // through a serial dispatcher.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| ready[a].cmp(&ready[b]).then(a.cmp(&b)));

        let mut open: std::collections::HashMap<&'static str, (Vec<usize>, Vec<f64>, SimTime)> =
            Default::default();
        let mut tasks: Vec<SimTask> = Vec::new();
        let mut close_order: Vec<usize> = Vec::new(); // indices into tasks
        for &i in &order {
            let p = &self.profiles[i];
            let svc = self.sample_service(p.class, &mut service_rng);
            // Xtract batching amortizes per-task overhead for *short*
            // tasks; serializing several multi-hour extractor invocations
            // behind one worker would manufacture exactly the stragglers
            // §4.3.1 warns about (and Fig. 8's per-family durations show
            // heavy MDF families executing as their own tasks). Classes
            // whose expected service dwarfs the dispatch overhead
            // therefore ship one family per task.
            let batch_cap = if mean_ref_service(p.class) > 60.0 {
                1
            } else {
                cfg.xtract_batch
            };
            let entry = open
                .entry(p.class)
                .or_insert_with(|| (Vec::new(), Vec::new(), SimTime::ZERO));
            entry.0.push(i);
            entry.1.push(svc);
            entry.2 = entry.2.max(ready[i]);
            if entry.0.len() >= batch_cap {
                let (family_idx, services, batch_ready) = open.remove(p.class).expect("open");
                close_order.push(tasks.len());
                tasks.push(SimTask {
                    family_idx,
                    services,
                    ready: batch_ready,
                });
            }
        }
        // Flush stragglers deterministically.
        let mut leftovers: Vec<&'static str> = open.keys().copied().collect();
        leftovers.sort_unstable();
        for class in leftovers {
            let (family_idx, services, batch_ready) = open.remove(class).expect("open");
            close_order.push(tasks.len());
            tasks.push(SimTask {
                family_idx,
                services,
                ready: batch_ready,
            });
        }

        // funcX requests over the serial dispatcher. Heavy-class tasks
        // are prioritized in the submission queue — the paper's MDF run
        // visibly submitted its long-duration tasks first ("many
        // long-duration tasks saturate multiple funcX workers" in the
        // first hour, §5.8.1), which is what keeps the multi-hour ASE
        // tail from starting late and overhanging the makespan.
        let mut dispatch_order = close_order.clone();
        dispatch_order.sort_by(|&a, &b| {
            let heavy = |t: &SimTask| {
                t.family_idx
                    .iter()
                    .any(|&fi| mean_ref_service(self.profiles[fi].class) > 60.0)
            };
            heavy(&tasks[b]).cmp(&heavy(&tasks[a])).then(a.cmp(&b))
        });
        let mut ws_requests = 0u64;
        let mut dispatcher_busy_s = 0.0f64;
        let mut dispatcher_free = SimTime::ZERO;
        let mut task_worker_ready: Vec<SimTime> = vec![SimTime::ZERO; tasks.len()];
        for chunk in dispatch_order.chunks(cfg.funcx_batch) {
            let members_ready = chunk
                .iter()
                .map(|&t| tasks[t].ready)
                .max()
                .unwrap_or(SimTime::ZERO);
            let families: usize = chunk.iter().map(|&t| tasks[t].family_idx.len()).sum();
            // Superlinear payload cost (see calibration::faas): huge
            // requests serialize worse than linearly.
            let payload_factor = 1.0 + families as f64 / faas::PAYLOAD_KNEE_FAMILIES;
            let duration = SimTime::from_secs(
                faas::WS_REQUEST_S
                    + families as f64 * faas::SERIALIZE_PER_FAMILY_S * payload_factor,
            );
            let start = dispatcher_free.max(members_ready);
            dispatcher_free = start + duration;
            dispatcher_busy_s += duration.as_secs();
            ws_requests += 1;
            for &t in chunk {
                task_worker_ready[t] = dispatcher_free;
            }
        }

        // Stage 4/5: execution in allocation windows.
        let alloc_limit = cfg
            .allocation_limit_s
            .or(cfg.site.allocation_limit_s)
            .unwrap_or(f64::INFINITY);
        // Execution queue: (task, remaining services per family, attempt).
        struct Pending {
            task: usize,
            remaining: Vec<(usize, f64)>, // (family idx, remaining service)
            ready: SimTime,
            attempt: u32,
            /// This attempt is a hedged (early, deadline-triggered)
            /// resubmission; its fate decides hedges_won vs hedges_wasted.
            hedged: bool,
        }
        let mut queue: std::collections::VecDeque<Pending> = dispatch_order
            .iter()
            .map(|&t| Pending {
                task: t,
                remaining: tasks[t]
                    .family_idx
                    .iter()
                    .copied()
                    .zip(tasks[t].services.iter().copied())
                    .collect(),
                ready: task_worker_ready[t],
                attempt: 1,
                hedged: false,
            })
            .collect();
        // Heavy-class tasks run longest-processing-time-first: "The
        // higher throughput in the first hour is due to the order of task
        // submission, as many long-duration tasks saturate multiple funcX
        // workers" (§5.8.1) — Fig. 8's multi-hour families all start
        // early, and LPT is what keeps a lone four-hour family from
        // straddling the allocation boundary. Light tasks stay in
        // dispatch (FIFO) order so the millions of small families flow
        // continuously — the paper's early throughput peak.
        let heavy_pending = |p: &Pending, profiles: &[FamilyProfile]| {
            p.remaining
                .iter()
                .any(|&(fi, _)| mean_ref_service(profiles[fi].class) > 60.0)
        };
        queue.make_contiguous().sort_by(|a, b| {
            let (ha, hb) = (
                heavy_pending(a, &self.profiles),
                heavy_pending(b, &self.profiles),
            );
            hb.cmp(&ha)
                .then_with(|| {
                    if ha && hb {
                        let sa: f64 = a.remaining.iter().map(|(_, s)| s).sum();
                        let sb: f64 = b.remaining.iter().map(|(_, s)| s).sum();
                        sb.total_cmp(&sa)
                    } else {
                        a.ready.cmp(&b.ready)
                    }
                })
                .then(a.task.cmp(&b.task))
        });

        let mut outcomes: Vec<FamilyOutcome> = Vec::with_capacity(n);
        let mut busy = 0.0f64;
        let mut restarts = 0u32;
        let mut lost_once: std::collections::HashSet<usize> = Default::default();
        let mut failed_families = 0u64;
        let mut hedges_launched = 0u64;
        let mut hedges_won = 0u64;
        let mut hedges_wasted = 0u64;
        let mut dead_letters: Vec<DeadLetter> = Vec::new();
        let mut window_start = SimTime::ZERO;
        let mut safety = 0u32;
        while !queue.is_empty() {
            safety += 1;
            assert!(safety < 100_000, "campaign failed to converge");
            // An allocation is requested when there is runnable work: if
            // everything in the queue only becomes ready later (transfers
            // in flight), the window starts then.
            let min_ready = queue.iter().map(|p| p.ready).min().unwrap_or(window_start);
            window_start = window_start.max(min_ready);
            // `alloc_limit` may be infinite; keep the boundary as raw f64.
            let window_end_s = window_start.as_secs() + alloc_limit;
            // Workers split between heavy-class and light-class work in
            // proportion to their shares of remaining service: heavy
            // families (the multi-hour ASE grind) would otherwise starve
            // the millions of light families until the end, inverting
            // Fig. 8's high-early-throughput curve. In the pull-based
            // real system light tasks flow through whatever workers the
            // heavy tasks leave free, continuously.
            let is_heavy = |p: &Pending| {
                p.remaining
                    .iter()
                    .any(|&(fi, _)| mean_ref_service(self.profiles[fi].class) > 60.0)
            };
            let heavy_work: f64 = queue
                .iter()
                .filter(|p| is_heavy(p))
                .flat_map(|p| p.remaining.iter().map(|(_, s)| s))
                .sum();
            let light_work: f64 = queue
                .iter()
                .filter(|p| !is_heavy(p))
                .flat_map(|p| p.remaining.iter().map(|(_, s)| s))
                .sum();
            let total_work = heavy_work + light_work;
            let heavy_workers = if heavy_work == 0.0 || light_work == 0.0 {
                if heavy_work > 0.0 {
                    cfg.workers
                } else {
                    0
                }
            } else {
                ((cfg.workers as f64 * heavy_work / total_work).round() as usize)
                    .clamp(1, cfg.workers - 1)
            };
            let pool_start = window_start + SimTime::from_secs(cfg.cold_start_s);
            let mut pool_heavy = if heavy_workers > 0 {
                Some(ServerPool::free_from(heavy_workers, pool_start))
            } else {
                None
            };
            let mut pool_light = if cfg.workers - heavy_workers > 0 {
                Some(ServerPool::free_from(
                    cfg.workers - heavy_workers,
                    pool_start,
                ))
            } else {
                None
            };
            let mut next_queue: std::collections::VecDeque<Pending> = Default::default();
            while let Some(p) = queue.pop_front() {
                let pool: &mut ServerPool = if is_heavy(&p) {
                    pool_heavy
                        .as_mut()
                        .expect("heavy pool exists for heavy work")
                } else {
                    pool_light
                        .as_mut()
                        .expect("light pool exists for light work")
                };
                let service: f64 =
                    faas::ENDPOINT_DISPATCH_S + p.remaining.iter().map(|(_, s)| s).sum::<f64>();
                // Boundary backfill: the service tracks expected per-class
                // durations, and does not *start* a task whose estimate
                // cannot finish before the allocation expires — it is
                // resubmitted on the next allocation instead. (Estimates
                // are class means, not the true sampled duration, so
                // heavy-tailed tasks can still genuinely straddle and be
                // lost, as in §5.8.1.)
                let estimate: f64 = p
                    .remaining
                    .iter()
                    .map(|&(fi, _)| mean_ref_service(self.profiles[fi].class))
                    .sum::<f64>()
                    / cfg.site.core_speed;
                let would_start = p.ready.max(window_start).max(pool.earliest_free());
                let defer = would_start.as_secs() >= window_end_s
                    || (would_start.as_secs() + estimate > window_end_s && estimate < alloc_limit);
                if defer {
                    next_queue.push_back(Pending {
                        ready: SimTime::from_secs(
                            (window_end_s + cfg.restart_overhead_s).min(f64::MAX / 4.0),
                        )
                        .max(p.ready),
                        ..p
                    });
                    continue;
                }
                let a = pool.assign(p.ready.max(window_start), SimTime::from_secs(service));
                // Injected worker crashes / heartbeat losses strike the
                // task deterministically, keyed on (task, attempt) — a
                // resubmission re-rolls, exactly like the live fabric's
                // fresh-task-id semantics.
                let crash_key = (p.task as u64) << 10 | u64::from(p.attempt);
                let crashed = cfg
                    .fault_plan
                    .as_ref()
                    .is_some_and(|fp| fp.worker_crashes(crash_key) || fp.heartbeat_lost(crash_key));
                if a.finish.as_secs() <= window_end_s && !crashed {
                    // Whole task fits: all member families complete.
                    if p.hedged {
                        hedges_won += 1;
                    }
                    let mut t = a.start.as_secs() + faas::ENDPOINT_DISPATCH_S;
                    busy += service;
                    for &(fi, svc) in &p.remaining {
                        t += svc;
                        outcomes.push(FamilyOutcome {
                            class: self.profiles[fi].class,
                            ready: ready[fi].as_secs(),
                            start: a.start.as_secs(),
                            finish: t,
                            attempts: p.attempt,
                            service: svc,
                        });
                    }
                } else {
                    // Task straddles the expiry (§5.8.1) or its worker
                    // crashed partway through: in-flight work is lost.
                    // With the checkpoint flag, member families whose
                    // metadata already flushed survive.
                    let straddled = a.finish.as_secs() > window_end_s;
                    let ran = if straddled {
                        (window_end_s - a.start.as_secs() - faas::ENDPOINT_DISPATCH_S).max(0.0)
                    } else {
                        // The crash lands a deterministic fraction of the
                        // way through the task's execution.
                        let fp = cfg.fault_plan.as_ref().expect("crashed implies a plan");
                        service * fault_roll(fp.seed, "crash-point", crash_key)
                    };
                    busy += ran.min(service);
                    let mut elapsed = 0.0;
                    let mut survivors: Vec<(usize, f64)> = Vec::new();
                    for &(fi, svc) in &p.remaining {
                        let done_at = elapsed + svc;
                        if cfg.checkpoint && done_at <= ran {
                            // Flushed before the expiry: completed.
                            outcomes.push(FamilyOutcome {
                                class: self.profiles[fi].class,
                                ready: ready[fi].as_secs(),
                                start: a.start.as_secs(),
                                finish: a.start.as_secs() + faas::ENDPOINT_DISPATCH_S + done_at,
                                attempts: p.attempt,
                                service: svc,
                            });
                        } else {
                            lost_once.insert(fi);
                            survivors.push((fi, svc));
                        }
                        elapsed = done_at;
                    }
                    if p.hedged {
                        // A hedged attempt's fate lands exactly once: all
                        // member families checkpointed out means the hedge
                        // still paid off; any survivor means it was wasted
                        // work (a further hedge may launch below).
                        if survivors.is_empty() {
                            hedges_won += 1;
                        } else {
                            hedges_wasted += 1;
                        }
                    }
                    if !survivors.is_empty() {
                        if p.attempt >= cfg.max_attempts {
                            failed_families += survivors.len() as u64;
                            for &(fi, _) in &survivors {
                                dead_letters.push(DeadLetter::new(
                                    FamilyId::new(fi as u64),
                                    FailureReason::RetryBudgetExhausted {
                                        extractor: class_kind(self.profiles[fi].class),
                                        error: XtractError::TaskLost {
                                            task: TaskId::new(p.task as u64),
                                        },
                                    },
                                    p.attempt,
                                ));
                            }
                        } else {
                            // Crash resubmissions are ready as soon as the
                            // loss is noticed; expiry losses wait for the
                            // next allocation window. With the straggler
                            // defense armed, a crashed task is noticed at
                            // its adaptive deadline (estimate × multiplier,
                            // clamped to the policy bounds) and hedged
                            // then, instead of waiting out a completion
                            // that never comes.
                            let hedging =
                                !straddled && cfg.hedge.as_ref().is_some_and(|h| h.enabled);
                            let retry_ready = if straddled {
                                SimTime::from_secs(window_end_s + cfg.restart_overhead_s)
                            } else if hedging {
                                let hp = cfg.hedge.as_ref().expect("hedging implies a policy");
                                let deadline_s = (estimate * hp.deadline_multiplier)
                                    .max(hp.deadline_floor_ms as f64 / 1000.0)
                                    .min(hp.deadline_ceiling_ms as f64 / 1000.0);
                                hedges_launched += 1;
                                a.finish
                                    .min(SimTime::from_secs(a.start.as_secs() + deadline_s))
                            } else {
                                a.finish
                            };
                            next_queue.push_back(Pending {
                                task: p.task,
                                remaining: survivors,
                                ready: retry_ready,
                                attempt: p.attempt + 1,
                                hedged: hedging,
                            });
                        }
                    }
                }
            }
            if next_queue.is_empty() {
                break;
            }
            if window_end_s.is_finite() {
                restarts += 1;
                window_start = SimTime::from_secs(window_end_s + cfg.restart_overhead_s);
            }
            ws_requests += next_queue.len().div_ceil(cfg.funcx_batch) as u64;
            queue = next_queue;
        }

        outcomes.sort_by(|a, b| a.finish.total_cmp(&b.finish));
        let makespan = outcomes.last().map_or(0.0, |o| o.finish);
        let mut phases = PhaseTimings::new();
        phases.add(Phase::Crawl, crawl_finish.as_secs());
        phases.add(Phase::Stage, transfer_finish.as_secs());
        phases.add(Phase::Dispatch, dispatcher_busy_s);
        phases.add(Phase::Extract, busy / cfg.workers as f64);
        CampaignReport {
            outcomes,
            makespan,
            busy_core_seconds: busy,
            ws_requests,
            restarts,
            lost_families: lost_once.len() as u64,
            failed_families,
            hedges_launched,
            hedges_won,
            hedges_wasted,
            dead_letters,
            crawl_finish: crawl_finish.as_secs(),
            transfer_finish: transfer_finish.as_secs(),
            bytes_transferred,
            batch_trajectory: Vec::new(),
            phases,
        }
    }

    /// The adaptive path: the same pipelined dispatcher + worker pool as
    /// the static path, re-tuned every *control block*. Each block:
    ///
    /// 1. asks the [`AdaptiveTuner`] for the current `(xtract, funcx)`
    ///    limits,
    /// 2. takes the next `workers × xtract × 2` families in ready order
    ///    (about two batches per worker — enough samples to trust the
    ///    block, short enough to re-tune frequently),
    /// 3. fuses them per class (heavy classes still cap at one family per
    ///    task, exactly like the static path), pushes the funcX chunks
    ///    through the serial dispatcher with the same superlinear payload
    ///    cost, and queues them on the shared worker pool — *no barrier*:
    ///    workers drain block N+1 the moment they finish their share of
    ///    block N,
    /// 4. feeds the per-family latency median (seconds from the block's
    ///    dispatch anchor) back into the controller.
    ///
    /// Because blocks pipeline, queueing backlog is part of the signal:
    /// undersized limits drown the serial dispatcher in requests and the
    /// backlog stretches block latency; oversized limits pay superlinear
    /// payload serialization and long serial batches. Either way pace
    /// degrades against the controller's best-pace anchor and it walks
    /// back toward the knee where dispatch and execution balance.
    fn run_adaptive(&self, policy: AdaptiveBatching) -> CampaignReport {
        let cfg = &self.config;
        assert!(
            cfg.fault_plan.is_none() && cfg.hedge.is_none(),
            "adaptive campaigns model fault-free sweeps; unset fault_plan/hedge"
        );
        assert!(
            cfg.allocation_limit_s
                .or(cfg.site.allocation_limit_s)
                .is_none(),
            "adaptive campaigns do not model allocation windows"
        );
        let streams = RngStreams::new(cfg.seed);
        let mut service_rng = streams.stream("campaign-service");
        let n = self.profiles.len();
        let (ready, crawl_finish, transfer_finish, bytes_transferred) = self.arrivals();

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| ready[a].cmp(&ready[b]).then(a.cmp(&b)));

        // The campaign models one facility = one endpoint.
        let ep = EndpointId::new(0);
        let mut tuner = AdaptiveTuner::new(policy, cfg.xtract_batch, cfg.funcx_batch);

        let mut outcomes: Vec<FamilyOutcome> = Vec::with_capacity(n);
        let mut trajectory: Vec<(usize, usize)> = Vec::new();
        let mut busy = 0.0f64;
        let mut ws_requests = 0u64;
        let mut dispatcher_busy_s = 0.0f64;
        let mut dispatcher_free = SimTime::ZERO;
        let mut pool = ServerPool::free_from(cfg.workers, SimTime::from_secs(cfg.cold_start_s));
        let mut next = 0usize;
        while next < n {
            let lim = tuner.limits(ep);
            trajectory.push((lim.xtract, lim.funcx));
            let target = (cfg.workers * lim.xtract * 2).max(1);
            let end = (next + target).min(n);
            let wave = &order[next..end];
            next = end;

            // The block's latency origin: when its last member is
            // visible and the dispatcher turns to it.
            let wave_ready = wave
                .iter()
                .map(|&i| ready[i])
                .max()
                .expect("blocks are non-empty");
            let wave_start = dispatcher_free.max(wave_ready);

            // Per-class Xtract batching at the tuner's limit; heavy
            // classes still ship one family per task (§4.3.1).
            let mut open: std::collections::HashMap<&'static str, (Vec<usize>, Vec<f64>)> =
                Default::default();
            let mut wtasks: Vec<(Vec<usize>, Vec<f64>)> = Vec::new();
            for &i in wave {
                let p = &self.profiles[i];
                let svc = self.sample_service(p.class, &mut service_rng);
                let cap = if mean_ref_service(p.class) > 60.0 {
                    1
                } else {
                    lim.xtract
                };
                let entry = open.entry(p.class).or_default();
                entry.0.push(i);
                entry.1.push(svc);
                if entry.0.len() >= cap {
                    wtasks.push(open.remove(p.class).expect("open"));
                }
            }
            let mut leftovers: Vec<&'static str> = open.keys().copied().collect();
            leftovers.sort_unstable();
            for class in leftovers {
                wtasks.push(open.remove(class).expect("open"));
            }
            // Longest-expected-first within the wave keeps a heavy task
            // from landing last and overhanging the barrier.
            let mut exec_order: Vec<usize> = (0..wtasks.len()).collect();
            exec_order.sort_by(|&a, &b| {
                let est = |t: usize| -> f64 {
                    wtasks[t]
                        .0
                        .iter()
                        .map(|&fi| mean_ref_service(self.profiles[fi].class))
                        .sum()
                };
                est(b).total_cmp(&est(a)).then(a.cmp(&b))
            });

            // funcX chunks through the serial dispatcher (same payload
            // physics as the static path).
            let mut task_ready: Vec<SimTime> = vec![SimTime::ZERO; wtasks.len()];
            for chunk in exec_order.chunks(lim.funcx.max(1)) {
                let families: usize = chunk.iter().map(|&t| wtasks[t].0.len()).sum();
                let payload_factor = 1.0 + families as f64 / faas::PAYLOAD_KNEE_FAMILIES;
                let duration = SimTime::from_secs(
                    faas::WS_REQUEST_S
                        + families as f64 * faas::SERIALIZE_PER_FAMILY_S * payload_factor,
                );
                let start = dispatcher_free.max(wave_start);
                dispatcher_free = start + duration;
                dispatcher_busy_s += duration.as_secs();
                ws_requests += 1;
                for &t in chunk {
                    task_ready[t] = dispatcher_free;
                }
            }

            // Queue on the shared pool (no barrier; workers carry their
            // own free times across blocks).
            let mut lats: Vec<f64> = Vec::with_capacity(wave.len());
            for &t in &exec_order {
                let (fams, svcs) = &wtasks[t];
                let service: f64 = faas::ENDPOINT_DISPATCH_S + svcs.iter().sum::<f64>();
                let a = pool.assign(task_ready[t], SimTime::from_secs(service));
                busy += service;
                let mut tcur = a.start.as_secs() + faas::ENDPOINT_DISPATCH_S;
                for (&fi, &svc) in fams.iter().zip(svcs.iter()) {
                    tcur += svc;
                    outcomes.push(FamilyOutcome {
                        class: self.profiles[fi].class,
                        ready: ready[fi].as_secs(),
                        start: a.start.as_secs(),
                        finish: tcur,
                        attempts: 1,
                        service: svc,
                    });
                    lats.push(tcur - wave_start.as_secs());
                }
            }

            // Evidence → controller: the block-exact latency median.
            lats.sort_by(f64::total_cmp);
            let p50 = if lats.is_empty() {
                None
            } else {
                Some(lats[(lats.len() - 1) / 2])
            };
            tuner.observe_wave(
                ep,
                &WaveEvidence {
                    p50_latency_s: p50,
                    samples: lats.len() as u64,
                    families: wave.len() as u64,
                    breaches: 0,
                    breaker_open: false,
                },
            );
        }

        outcomes.sort_by(|a, b| a.finish.total_cmp(&b.finish));
        let makespan = outcomes.last().map_or(0.0, |o| o.finish);
        let mut phases = PhaseTimings::new();
        phases.add(Phase::Crawl, crawl_finish.as_secs());
        phases.add(Phase::Stage, transfer_finish.as_secs());
        phases.add(Phase::Dispatch, dispatcher_busy_s);
        phases.add(Phase::Extract, busy / cfg.workers as f64);
        CampaignReport {
            outcomes,
            makespan,
            busy_core_seconds: busy,
            ws_requests,
            restarts: 0,
            lost_families: 0,
            failed_families: 0,
            hedges_launched: 0,
            hedges_won: 0,
            hedges_wasted: 0,
            dead_letters: Vec::new(),
            crawl_finish: crawl_finish.as_secs(),
            transfer_finish: transfer_finish.as_secs(),
            bytes_transferred,
            batch_trajectory: trajectory,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtract_sim::sites;

    fn profiles(n: usize, class: &'static str) -> Vec<FamilyProfile> {
        (0..n)
            .map(|_| FamilyProfile {
                class,
                files: 1,
                bytes: 100_000,
            })
            .collect()
    }

    #[test]
    fn more_workers_shorter_makespan() {
        let run = |workers| {
            let cfg = CampaignConfig::new(sites::midway(), workers, 1);
            Campaign::new(cfg, profiles(2000, "csv")).run().makespan
        };
        let m56 = run(56);
        let m224 = run(224);
        assert!(m224 < m56, "224 workers {m224} !< 56 workers {m56}");
    }

    #[test]
    fn all_families_complete_exactly_once() {
        let cfg = CampaignConfig::new(sites::midway(), 28, 2);
        let report = Campaign::new(cfg, profiles(500, "json")).run();
        assert_eq!(report.outcomes.len(), 500);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.lost_families, 0);
        assert!(report.makespan > 0.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn determinism_per_seed() {
        let run = || {
            let cfg = CampaignConfig::new(sites::midway(), 28, 7);
            let r = Campaign::new(cfg, profiles(300, "csv")).run();
            (r.makespan, r.busy_core_seconds, r.ws_requests)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn allocation_expiry_forces_restart_and_loses_work() {
        // ASE families (mean ≈4 000 s on Theta) against a 3 000 s window:
        // the duration estimate exceeds the window, so backfill cannot
        // defer them — they run, straddle the expiry, and are lost
        // (§5.8.1). Families whose true duration exceeds every window can
        // never finish and are abandoned after max_attempts.
        let mut cfg = CampaignConfig::new(sites::theta(), 4, 3);
        cfg.allocation_limit_s = Some(3000.0);
        cfg.checkpoint = false;
        cfg.max_attempts = 3;
        let report = Campaign::new(cfg, profiles(40, "ase")).run();
        assert_eq!(report.outcomes.len() as u64 + report.failed_families, 40);
        assert!(report.restarts > 0, "no restart happened");
        assert!(report.lost_families > 0);
        assert!(
            report.failed_families > 0,
            "some ASE families cannot fit 3000 s"
        );
    }

    #[test]
    fn checkpointing_reduces_rework() {
        // bert tasks of 8 families estimate ≈87 s against a 120 s window:
        // the estimate admits them, the heavy-tailed truth straddles, and
        // the checkpoint flag preserves the families that flushed before
        // the expiry (§5.8.1) — less re-execution, never a longer
        // campaign.
        let run = |checkpoint| {
            let mut cfg = CampaignConfig::new(sites::theta(), 4, 3);
            cfg.allocation_limit_s = Some(120.0);
            cfg.restart_overhead_s = 5.0;
            cfg.checkpoint = checkpoint;
            Campaign::new(cfg, profiles(200, "bert")).run()
        };
        let base = run(false);
        let ckpt = run(true);
        assert!(base.restarts > 0 && ckpt.restarts > 0);
        assert!(base.lost_families > 0);
        assert!(
            ckpt.busy_core_seconds < base.busy_core_seconds,
            "checkpointing did not reduce busy time: {} vs {}",
            ckpt.busy_core_seconds,
            base.busy_core_seconds
        );
        // Checkpointing never makes the campaign slower.
        assert!(ckpt.makespan <= base.makespan + 1.0);
    }

    #[test]
    fn prefetch_delays_execution_until_bytes_arrive() {
        let mut cfg = CampaignConfig::new(sites::midway(), 28, 4);
        cfg.prefetch = Some(PrefetchPlan {
            link: sites::link("petrel", "midway"),
            slots: 10,
            families_per_job: 50,
        });
        let report = Campaign::new(cfg, profiles(500, "csv")).run();
        assert!(report.transfer_finish > 0.0);
        assert!(report.bytes_transferred == 500 * 100_000);
        // No family starts before any bytes could arrive.
        let earliest = report
            .outcomes
            .iter()
            .map(|o| o.start)
            .fold(f64::MAX, f64::min);
        assert!(earliest > 0.0);
    }

    #[test]
    fn crawl_staggers_readiness() {
        let mut cfg = CampaignConfig::new(sites::midway(), 28, 5);
        let model = CrawlModel::from_stats(100, 5_000, 500);
        cfg.crawl = Some((model, 4));
        let report = Campaign::new(cfg, profiles(500, "yaml")).run();
        assert!(report.crawl_finish > 0.0);
        let first = report
            .outcomes
            .iter()
            .map(|o| o.ready)
            .fold(f64::MAX, f64::min);
        let last = report.outcomes.iter().map(|o| o.ready).fold(0.0, f64::max);
        assert!(last > first, "readiness should be staggered");
    }

    #[test]
    fn batch_size_one_costs_more_requests() {
        let run = |xb, fb| {
            let mut cfg = CampaignConfig::new(sites::midway(), 28, 6);
            cfg.xtract_batch = xb;
            cfg.funcx_batch = fb;
            Campaign::new(cfg, profiles(256, "csv")).run().ws_requests
        };
        assert!(run(1, 1) > run(8, 16));
        assert_eq!(run(1, 1), 256);
    }

    #[test]
    fn cold_start_shifts_first_completion() {
        let warm = CampaignConfig::new(sites::river(), 30, 8);
        let mut cold = CampaignConfig::new(sites::river(), 30, 8);
        cold.cold_start_s = 70.0;
        let w = Campaign::new(warm, profiles(64, "keyword")).run();
        let c = Campaign::new(cold, profiles(64, "keyword")).run();
        let wf = w.outcomes.iter().map(|o| o.start).fold(f64::MAX, f64::min);
        let cf = c.outcomes.iter().map(|o| o.start).fold(f64::MAX, f64::min);
        assert!(cf >= wf + 69.0, "cold start not applied: {cf} vs {wf}");
    }

    #[test]
    fn injected_crashes_retry_and_dead_letter_deterministically() {
        let run = || {
            let mut cfg = CampaignConfig::new(sites::midway(), 8, 12);
            cfg.max_attempts = 3;
            cfg.fault_plan = Some(FaultPlan {
                worker_crash_rate: 0.5,
                ..FaultPlan::new(99)
            });
            Campaign::new(cfg, profiles(100, "csv")).run()
        };
        let a = run();
        let b = run();
        // Every family terminates exactly once: completed or abandoned.
        assert_eq!(a.outcomes.len() as u64 + a.failed_families, 100);
        assert!(a.lost_families > 0, "a 50% crash rate should lose tasks");
        assert_eq!(a.failed_families as usize, a.dead_letters.len());
        for letter in &a.dead_letters {
            assert!(matches!(
                letter.reason,
                FailureReason::RetryBudgetExhausted { .. }
            ));
        }
        // Same plan + seed → identical dead-letter sets.
        let keys = |r: &CampaignReport| r.dead_letters.iter().map(|d| d.key()).collect::<Vec<_>>();
        assert_eq!(keys(&a), keys(&b));
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn hedging_recovers_crashed_tasks_sooner() {
        // A crashed task's unhedged retry waits until the (never-arriving)
        // completion instant before it is noticed; the straggler defense
        // notices it at the adaptive deadline instead. With an aggressive
        // ceiling the hedged campaign finishes strictly sooner, and every
        // launched hedge is accounted exactly once.
        let run = |hedge: Option<HedgePolicy>| {
            let mut cfg = CampaignConfig::new(sites::midway(), 8, 12);
            cfg.fault_plan = Some(FaultPlan {
                worker_crash_rate: 0.5,
                ..FaultPlan::new(99)
            });
            cfg.hedge = hedge;
            Campaign::new(cfg, profiles(100, "bert")).run()
        };
        let base = run(None);
        let aggressive = HedgePolicy {
            deadline_ceiling_ms: 1_000,
            ..HedgePolicy::default()
        };
        let hedged = run(Some(aggressive));
        assert!(base.lost_families > 0, "a 50% crash rate should lose tasks");
        assert_eq!(base.hedges_launched, 0);
        assert_eq!(
            hedged.outcomes.len() as u64 + hedged.failed_families,
            100,
            "hedging must preserve the exactly-once partition"
        );
        assert!(hedged.hedges_launched > 0);
        assert_eq!(
            hedged.hedges_launched,
            hedged.hedges_won + hedged.hedges_wasted,
            "every hedge resolves exactly once"
        );
        assert!(
            hedged.makespan < base.makespan,
            "hedged {} !< unhedged {}",
            hedged.makespan,
            base.makespan
        );
        // Same seed + policy → identical counters and clock.
        let again = run(Some(aggressive));
        assert_eq!(hedged.makespan, again.makespan);
        assert_eq!(hedged.hedges_launched, again.hedges_launched);
        assert_eq!(hedged.hedges_won, again.hedges_won);
    }

    #[test]
    fn degraded_links_delay_prefetch() {
        let run = |fault: Option<FaultPlan>| {
            let mut cfg = CampaignConfig::new(sites::midway(), 28, 4);
            cfg.prefetch = Some(PrefetchPlan {
                link: sites::link("petrel", "midway"),
                slots: 10,
                families_per_job: 50,
            });
            cfg.fault_plan = fault;
            Campaign::new(cfg, profiles(500, "csv")).run()
        };
        let clean = run(None);
        let slow = run(Some(FaultPlan {
            slow_link_rate: 1.0,
            slow_link_delay_ms: 30_000,
            ..FaultPlan::new(7)
        }));
        assert!(
            slow.transfer_finish >= clean.transfer_finish + 29.0,
            "universal slow links must delay transfers: {} vs {}",
            slow.transfer_finish,
            clean.transfer_finish
        );
    }

    #[test]
    fn phase_marks_mirror_the_virtual_clock() {
        let mut cfg = CampaignConfig::new(sites::midway(), 28, 5);
        let model = CrawlModel::from_stats(100, 5_000, 500);
        cfg.crawl = Some((model, 4));
        cfg.prefetch = Some(PrefetchPlan {
            link: sites::link("petrel", "midway"),
            slots: 10,
            families_per_job: 50,
        });
        let report = Campaign::new(cfg, profiles(500, "csv")).run();
        assert_eq!(report.phases.get(Phase::Crawl), report.crawl_finish);
        assert_eq!(report.phases.get(Phase::Stage), report.transfer_finish);
        assert!(report.phases.get(Phase::Dispatch) > 0.0);
        assert!(report.phases.get(Phase::Extract) > 0.0);
        // Stage marks are virtual-clock spans; none can exceed the
        // campaign's own makespan-scale envelope.
        assert!(report.phases.get(Phase::Extract) <= report.makespan);
        assert_eq!(report.phases.get(Phase::Plan), 0.0);
        assert_eq!(report.phases.get(Phase::Index), 0.0);
    }

    #[test]
    fn stage_overlap_measures_extraction_hidden_inside_transfers() {
        let mut cfg = CampaignConfig::new(sites::midway(), 28, 4);
        cfg.prefetch = Some(PrefetchPlan {
            link: sites::link("petrel", "midway"),
            slots: 10,
            families_per_job: 50,
        });
        let report = Campaign::new(cfg, profiles(500, "csv")).run();
        let overlap = report.stage_overlap_s();
        // 500 families drip out of a 10-slot prefetch queue, so early
        // families must extract while later transfers are still moving.
        assert!(overlap > 0.0, "no overlap despite staggered prefetch");
        // The overlap is bounded by the summed execution spans.
        let total_exec: f64 = report.outcomes.iter().map(|o| o.finish - o.start).sum();
        assert!(overlap <= total_exec + 1e-9);
        // Without prefetch there is no transfer window to hide inside.
        let no_prefetch = Campaign::new(
            CampaignConfig::new(sites::midway(), 28, 4),
            profiles(100, "csv"),
        )
        .run();
        assert_eq!(no_prefetch.stage_overlap_s(), 0.0);
    }

    #[test]
    fn adaptive_campaign_is_deterministic_and_exactly_once() {
        let run = || {
            let mut cfg = CampaignConfig::new(sites::midway(), 28, 21);
            cfg.xtract_batch = 2;
            cfg.funcx_batch = 2;
            cfg.adaptive = Some(AdaptiveBatching::enabled());
            Campaign::new(cfg, profiles(3000, "csv")).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes.len(), 3000);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.ws_requests, b.ws_requests);
        assert_eq!(a.batch_trajectory, b.batch_trajectory);
        assert!(!a.batch_trajectory.is_empty());
    }

    #[test]
    fn adaptive_trajectory_moves_and_stays_within_policy_bounds() {
        let mut cfg = CampaignConfig::new(sites::midway(), 56, 22);
        cfg.xtract_batch = 2;
        cfg.funcx_batch = 2;
        let policy = AdaptiveBatching::enabled();
        cfg.adaptive = Some(policy);
        let report = Campaign::new(cfg, profiles(20_000, "csv")).run();
        assert_eq!(report.outcomes.len(), 20_000);
        for &(x, f) in &report.batch_trajectory {
            assert!((policy.xtract_floor..=policy.xtract_ceiling).contains(&x));
            assert!((policy.funcx_floor..=policy.funcx_ceiling).contains(&f));
        }
        // The controller actually tuned: the trajectory left its start.
        assert!(
            report
                .batch_trajectory
                .iter()
                .any(|&(x, f)| (x, f) != (2, 2)),
            "trajectory never moved: {:?}",
            report.batch_trajectory
        );
    }

    #[test]
    fn adaptive_beats_the_static_extremes() {
        // The acceptance sweep at smoke scale: from a deliberately bad
        // starting point the controller must land a makespan below both
        // degenerate grid corners — (1,1) drowns the serial dispatcher in
        // requests, (32,32) pays superlinear payload serialization and a
        // long straggler tail.
        let static_run = |xb, fb| {
            let mut cfg = CampaignConfig::new(sites::midway(), 56, 23);
            cfg.xtract_batch = xb;
            cfg.funcx_batch = fb;
            Campaign::new(cfg, profiles(20_000, "csv")).run().makespan
        };
        let mut cfg = CampaignConfig::new(sites::midway(), 56, 23);
        cfg.xtract_batch = 2;
        cfg.funcx_batch = 2;
        cfg.adaptive = Some(AdaptiveBatching::enabled());
        let adaptive = Campaign::new(cfg, profiles(20_000, "csv")).run().makespan;
        let tiny = static_run(1, 1);
        let huge = static_run(32, 32);
        assert!(adaptive < tiny, "adaptive {adaptive} !< static(1,1) {tiny}");
        assert!(
            adaptive < huge,
            "adaptive {adaptive} !< static(32,32) {huge}"
        );
    }

    #[test]
    fn disabled_adaptive_policy_takes_the_static_path() {
        let mut with_disabled = CampaignConfig::new(sites::midway(), 28, 9);
        with_disabled.adaptive = Some(AdaptiveBatching::disabled());
        let a = Campaign::new(with_disabled, profiles(300, "xml")).run();
        let b = Campaign::new(
            CampaignConfig::new(sites::midway(), 28, 9),
            profiles(300, "xml"),
        )
        .run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.ws_requests, b.ws_requests);
        assert!(a.batch_trajectory.is_empty());
    }

    #[test]
    fn timeline_buckets_sum_to_total() {
        let cfg = CampaignConfig::new(sites::midway(), 28, 9);
        let report = Campaign::new(cfg, profiles(300, "xml")).run();
        let total: u64 = report
            .completion_timeline(10.0)
            .iter()
            .map(|(_, c)| c)
            .sum();
        assert_eq!(total, 300);
    }
}
