//! The concurrent staging pipeline's wire types.
//!
//! The paper's headline result (§5.6, Fig. 8) is that extraction time is
//! *hidden inside* transfer time: Xtract processes a 61 TB repository in
//! roughly half the time it would take to merely move the bytes, because
//! families extract while other families are still in flight. The live
//! orchestrator realizes that overlap with a bounded pool of staging
//! workers: `run_job_inner` submits [`StageRequest`]s over a channel, the
//! pool prefetches each family via the `Arc`-shared `TransferService`,
//! and [`StageOutcome`]s stream back into the wave loop — so wave 1 of
//! already-local families dispatches while remote families are still
//! moving. Restaging after a circuit-breaker reroute rides the same
//! channel instead of blocking the wave loop.
//!
//! The types live in their own module so the worker-pool plumbing in
//! `service.rs` stays about control flow, not payload shape.

use xtract_types::{EndpointId, FailureReason, Family, FileRecord};

/// One family prefetch for the staging pool, either the initial staging
/// pass (`generation == 0`) or a post-reroute restage (`generation > 0`).
#[derive(Debug)]
pub struct StageRequest {
    /// Index of the family in the job's `active` table.
    pub index: usize,
    /// The family to stage, with paths as currently known.
    pub family: Family,
    /// The family's original crawl-time file records — restages always
    /// re-pull from the origin, never from a possibly-dark prior site.
    pub origin_files: Vec<FileRecord>,
    /// The endpoint the origin files live on.
    pub origin_source: EndpointId,
    /// The compute endpoint the bytes are headed to.
    pub exec: EndpointId,
    /// The destination endpoint's staging store root.
    pub store: String,
    /// Base fault salt for this (family, generation); the per-attempt
    /// retry loop adds the attempt number on top.
    pub salt_base: u64,
    /// 0 for initial staging, incremented per breaker reroute.
    pub generation: u32,
}

/// What a staging worker sends back for one [`StageRequest`].
#[derive(Debug)]
pub struct StageOutcome {
    /// Index of the family in the job's `active` table.
    pub index: usize,
    /// Echo of the request's generation.
    pub generation: u32,
    /// Echo of the request's destination endpoint.
    pub exec: EndpointId,
    /// The base path the pass staged (or tried to stage) under. Recorded
    /// even on failure: a partial transfer may have landed files there,
    /// and cleanup must sweep every site a family ever touched.
    pub base: String,
    /// The staged family (with rewritten paths) or the terminal reason.
    pub result: Result<StagedFamily, FailureReason>,
    /// Seconds from job start when the worker picked the request up.
    pub started_s: f64,
    /// Seconds from job start when the worker finished.
    pub finished_s: f64,
}

/// A successfully staged family.
#[derive(Debug)]
pub struct StagedFamily {
    /// The family with paths rewritten to the staging store.
    pub family: Family,
    /// Bytes moved for this staging pass.
    pub bytes: u64,
}

/// The fault salt base for one (family, generation) staging pass.
///
/// Initial staging used to pass `salt_base = 0` for *every* family, so
/// `submit_with_salt(…, 0 + attempt)` gave all families identical
/// fault-sampling salts and injected transfer faults fired in lockstep
/// across the whole job. Deriving the base from the family id (and the
/// reroute generation) decorrelates them: each family, each generation,
/// each attempt rolls its own dice. The multipliers keep the three
/// components in disjoint ranges for any plausible attempt count.
pub fn stage_salt_base(family: xtract_types::FamilyId, generation: u32) -> u64 {
    family
        .raw()
        .wrapping_mul(1_000_000)
        .wrapping_add(generation as u64 * 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtract_types::FamilyId;

    #[test]
    fn salt_bases_are_distinct_per_family_generation_and_attempt() {
        let mut seen = std::collections::HashSet::new();
        for fam in 0..50u64 {
            for generation in 0..8u32 {
                for attempt in 0..32u64 {
                    let salt = stage_salt_base(FamilyId::new(fam), generation) + attempt;
                    assert!(
                        seen.insert(salt),
                        "salt collision at family {fam}, gen {generation}, attempt {attempt}"
                    );
                }
            }
        }
    }
}
