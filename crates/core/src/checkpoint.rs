//! Checkpointing (§5.8.1).
//!
//! "For this experiment we checkpointed progress via a 'checkpoint-flag'
//! in the extractor that, when present, flushes each processed group's
//! metadata to disk on completion. When funcX returns a heartbeat ...
//! stating that a family's task id is lost (i.e., the allocation ended),
//! then the entire family is resubmitted, and in the presence of the
//! 'checkpoint-flag', the metadata are re-loaded."
//!
//! The store is keyed by `(family, extractor)` so a resubmitted family
//! skips extractors whose output already flushed — only unfinished steps
//! re-execute. Serialization round-trips through JSON so a checkpoint can
//! live on any data layer.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use xtract_obs::{Counter, MetricsHub};
use xtract_types::{DeadLetter, FamilyId, Metadata, Result, XtractError};

/// One flushed entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// The family.
    pub family: FamilyId,
    /// Extractor name whose output this is.
    pub extractor: String,
    /// The flushed metadata, shared with the recovery log's
    /// `StepCompleted` record for the same step — one allocation per
    /// completed step, however many consumers hold it. Serializes
    /// transparently (serde's `rc` feature), so the image's JSON is
    /// byte-identical to the pre-`Arc` format.
    pub metadata: Arc<Metadata>,
}

/// The serialized form: flushed outputs plus the job's dead letters, so a
/// restart knows both what succeeded and what was terminally abandoned.
/// Also the snapshot payload the recovery log compacts a job's history
/// into, so the frame is public and round-trip-tested (JSON and the WAL
/// framing) by proptests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointImage {
    /// Flushed `(family, extractor)` outputs, sorted for determinism.
    pub entries: Vec<CheckpointEntry>,
    /// Terminally abandoned families.
    #[serde(default)]
    pub dead_letters: Vec<DeadLetter>,
}

/// Flushed outputs plus the per-family secondary index that makes
/// resume-time skip checks O(extractors-per-family) instead of a scan of
/// every entry in the job. Both structures live under one lock so they
/// can never disagree.
#[derive(Debug, Default)]
struct Flushed {
    entries: HashMap<(FamilyId, String), Arc<Metadata>>,
    by_family: HashMap<FamilyId, BTreeSet<String>>,
}

impl Flushed {
    fn insert(&mut self, family: FamilyId, extractor: String, metadata: Arc<Metadata>) {
        self.by_family
            .entry(family)
            .or_default()
            .insert(extractor.clone());
        self.entries.insert((family, extractor), metadata);
    }
}

/// A thread-safe checkpoint store for one job.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    flushed: RwLock<Flushed>,
    dead_letters: RwLock<Vec<DeadLetter>>,
    flushes: Counter,
    hits: Counter,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store whose flush/hit counters are interned in `hub` as
    /// `checkpoint.flushes` and `checkpoint.hits`.
    pub fn with_obs(hub: &MetricsHub) -> Self {
        let mut store = Self::new();
        store.flushes = hub.counter("checkpoint.flushes");
        store.hits = hub.counter("checkpoint.hits");
        store
    }

    /// Flushes one completed extractor's output for a family.
    pub fn flush(&self, family: FamilyId, extractor: &str, metadata: Arc<Metadata>) {
        self.flushes.incr();
        self.flushed
            .write()
            .insert(family, extractor.to_string(), metadata);
    }

    /// Rehydrates one entry during log replay *without* charging the
    /// `checkpoint.flushes` counter: the flush already happened (and was
    /// counted) in the run that journaled it, so resume restoring it must
    /// not make the cumulative flush count disagree with an uninterrupted
    /// run's.
    pub fn restore(&self, family: FamilyId, extractor: &str, metadata: Arc<Metadata>) {
        self.flushed
            .write()
            .insert(family, extractor.to_string(), metadata);
    }

    /// Loads a previously-flushed output, if any. The returned handle
    /// shares the stored allocation (no deep copy).
    pub fn load(&self, family: FamilyId, extractor: &str) -> Option<Arc<Metadata>> {
        let found = self
            .flushed
            .read()
            .entries
            .get(&(family, extractor.to_string()))
            .cloned();
        if found.is_some() {
            self.hits.incr();
        }
        found
    }

    /// Extractor names already completed for `family`, sorted. Served
    /// from the per-family index: cost is proportional to the family's
    /// own completed steps, not to every entry in the job.
    pub fn completed_extractors(&self, family: FamilyId) -> Vec<String> {
        self.flushed
            .read()
            .by_family
            .get(&family)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of flushed entries.
    pub fn len(&self) -> usize {
        self.flushed.read().entries.len()
    }

    /// True when nothing has flushed.
    pub fn is_empty(&self) -> bool {
        self.flushed.read().entries.is_empty()
    }

    /// Records a family's terminal dead letter, so a restarted job knows
    /// not to resubmit a family the previous run already gave up on.
    ///
    /// Latest wins: a later letter for the same family (e.g. a richer
    /// timeline after a restage failure) replaces the earlier one in
    /// place, keeping arrival order.
    pub fn record_dead_letter(&self, letter: DeadLetter) {
        let mut letters = self.dead_letters.write();
        match letters.iter_mut().find(|l| l.family == letter.family) {
            Some(existing) => *existing = letter,
            None => letters.push(letter),
        }
    }

    /// The dead letters recorded so far, in arrival order.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.read().clone()
    }

    /// True when a previous run terminally abandoned `family`.
    pub fn is_dead(&self, family: FamilyId) -> bool {
        self.dead_letters.read().iter().any(|l| l.family == family)
    }

    /// A point-in-time image of the store: entries sorted by
    /// `(family, extractor)` so two stores with the same contents always
    /// produce byte-identical images (the recovery log's compaction
    /// invariant leans on this).
    pub fn image(&self) -> CheckpointImage {
        let mut entries: Vec<CheckpointEntry> = self
            .flushed
            .read()
            .entries
            .iter()
            .map(|((family, extractor), metadata)| CheckpointEntry {
                family: *family,
                extractor: extractor.clone(),
                metadata: Arc::clone(metadata),
            })
            .collect();
        entries.sort_by(|a, b| (a.family, &a.extractor).cmp(&(b.family, &b.extractor)));
        CheckpointImage {
            entries,
            dead_letters: self.dead_letters.read().clone(),
        }
    }

    /// Rebuilds a store from an image (counters start at zero — restored
    /// entries were already counted by the run that flushed them).
    pub fn from_image(image: CheckpointImage) -> Self {
        let store = Self::new();
        {
            let mut flushed = store.flushed.write();
            for e in image.entries {
                flushed.insert(e.family, e.extractor, e.metadata);
            }
        }
        *store.dead_letters.write() = image.dead_letters;
        store
    }

    /// Serializes the whole store (for persisting to a data layer).
    pub fn serialize(&self) -> Vec<u8> {
        serde_json::to_vec(&self.image()).expect("checkpoint serialization is infallible")
    }

    /// Restores a store from serialized bytes. Accepts both the current
    /// image format and the legacy bare entry list (pre-dead-letter
    /// checkpoints deserialize with no dead letters).
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        let image: CheckpointImage = match serde_json::from_slice(bytes) {
            Ok(image) => image,
            Err(image_err) => {
                let entries: Vec<CheckpointEntry> =
                    serde_json::from_slice(bytes).map_err(|_| XtractError::CheckpointCorrupt {
                        reason: image_err.to_string(),
                    })?;
                CheckpointImage {
                    entries,
                    dead_letters: Vec::new(),
                }
            }
        };
        Ok(Self::from_image(image))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn md(k: &str) -> Arc<Metadata> {
        let mut m = Metadata::new();
        m.insert(k, 1);
        Arc::new(m)
    }

    #[test]
    fn flush_then_load() {
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(1), "keyword", md("kw"));
        assert_eq!(store.load(FamilyId::new(1), "keyword"), Some(md("kw")));
        assert_eq!(store.load(FamilyId::new(1), "tabular"), None);
        assert_eq!(store.load(FamilyId::new(2), "keyword"), None);
    }

    #[test]
    fn completed_extractors_per_family() {
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(1), "keyword", md("a"));
        store.flush(FamilyId::new(1), "tabular", md("b"));
        store.flush(FamilyId::new(2), "keyword", md("c"));
        assert_eq!(
            store.completed_extractors(FamilyId::new(1)),
            vec!["keyword".to_string(), "tabular".to_string()]
        );
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn reflush_overwrites() {
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(1), "keyword", md("old"));
        store.flush(FamilyId::new(1), "keyword", md("new"));
        assert_eq!(store.load(FamilyId::new(1), "keyword"), Some(md("new")));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn serialization_roundtrip() {
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(7), "matio", md("energy"));
        store.flush(FamilyId::new(8), "images", md("class"));
        let bytes = store.serialize();
        let restored = CheckpointStore::deserialize(&bytes).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.load(FamilyId::new(7), "matio"), Some(md("energy")));
    }

    #[test]
    fn corrupt_bytes_are_an_error() {
        let err = CheckpointStore::deserialize(b"{broken").unwrap_err();
        assert!(matches!(err, XtractError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = CheckpointStore::new();
        assert!(store.is_empty());
        let restored = CheckpointStore::deserialize(&store.serialize()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn dead_letters_roundtrip_and_dedupe() {
        use xtract_types::FailureReason;
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(1), "keyword", md("kw"));
        let letter = DeadLetter::new(
            FamilyId::new(2),
            FailureReason::Internal {
                reason: "bad".into(),
            },
            3,
        );
        store.record_dead_letter(letter.clone());
        store.record_dead_letter(letter.clone()); // same family: replaced in place
        assert_eq!(store.dead_letters(), vec![letter]);
        assert!(store.is_dead(FamilyId::new(2)));
        assert!(!store.is_dead(FamilyId::new(1)));
        let restored = CheckpointStore::deserialize(&store.serialize()).unwrap();
        assert!(restored.is_dead(FamilyId::new(2)));
        assert_eq!(restored.load(FamilyId::new(1), "keyword"), Some(md("kw")));
    }

    #[test]
    fn later_dead_letter_for_a_family_wins() {
        use xtract_types::FailureReason;
        let store = CheckpointStore::new();
        let first = DeadLetter::new(
            FamilyId::new(2),
            FailureReason::Internal {
                reason: "first attempt".into(),
            },
            1,
        );
        let other = DeadLetter::new(
            FamilyId::new(3),
            FailureReason::Internal {
                reason: "other family".into(),
            },
            1,
        );
        // A later letter carries the richer timeline (e.g. a restage
        // failure after the first abandonment); it must replace the
        // first, not be silently dropped.
        let richer = DeadLetter::new(
            FamilyId::new(2),
            FailureReason::Internal {
                reason: "richer timeline".into(),
            },
            5,
        );
        store.record_dead_letter(first);
        store.record_dead_letter(other.clone());
        store.record_dead_letter(richer.clone());
        // Latest-wins, and arrival order of *families* is preserved.
        assert_eq!(store.dead_letters(), vec![richer.clone(), other]);
        assert_eq!(store.dead_letters()[0].attempts, richer.attempts);
    }

    #[test]
    fn completed_extractors_uses_the_family_index() {
        let store = CheckpointStore::new();
        for f in 0..50 {
            store.flush(FamilyId::new(f), "keyword", md("k"));
        }
        store.flush(FamilyId::new(7), "tabular", md("t"));
        // Sorted, and scoped to the one family regardless of job size.
        assert_eq!(
            store.completed_extractors(FamilyId::new(7)),
            vec!["keyword".to_string(), "tabular".to_string()]
        );
        assert_eq!(store.completed_extractors(FamilyId::new(999)).len(), 0);
        // Re-flushing the same step does not duplicate index entries.
        store.flush(FamilyId::new(7), "tabular", md("t2"));
        assert_eq!(store.completed_extractors(FamilyId::new(7)).len(), 2);
    }

    #[test]
    fn restore_rehydrates_without_charging_the_flush_counter() {
        let hub = MetricsHub::new();
        let store = CheckpointStore::with_obs(&hub);
        store.restore(FamilyId::new(1), "keyword", md("kw"));
        assert_eq!(hub.counter_value("checkpoint.flushes", None), 0);
        assert_eq!(store.load(FamilyId::new(1), "keyword"), Some(md("kw")));
        assert_eq!(
            store.completed_extractors(FamilyId::new(1)),
            vec!["keyword".to_string()]
        );
    }

    #[test]
    fn image_is_sorted_and_deterministic() {
        let a = CheckpointStore::new();
        let b = CheckpointStore::new();
        // Insert in different orders; images must be identical.
        for (f, e) in [(3u64, "tabular"), (1, "keyword"), (3, "images"), (2, "kw")] {
            a.flush(FamilyId::new(f), e, md(e));
        }
        for (f, e) in [(2u64, "kw"), (3, "images"), (3, "tabular"), (1, "keyword")] {
            b.flush(FamilyId::new(f), e, md(e));
        }
        let ia = a.image();
        assert_eq!(ia, b.image());
        let keys: Vec<(FamilyId, String)> = ia
            .entries
            .iter()
            .map(|e| (e.family, e.extractor.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // from_image round-trips.
        let back = CheckpointStore::from_image(ia);
        assert_eq!(back.image(), b.image());
    }

    #[test]
    fn hub_backed_store_counts_flushes_and_hits() {
        let hub = MetricsHub::new();
        let store = CheckpointStore::with_obs(&hub);
        store.flush(FamilyId::new(1), "keyword", md("kw"));
        store.flush(FamilyId::new(1), "tabular", md("tb"));
        assert!(store.load(FamilyId::new(1), "keyword").is_some()); // hit
        assert!(store.load(FamilyId::new(9), "keyword").is_none()); // miss
        assert_eq!(hub.counter_value("checkpoint.flushes", None), 2);
        assert_eq!(hub.counter_value("checkpoint.hits", None), 1);
    }

    #[test]
    fn legacy_entry_list_still_deserializes() {
        // Pre-dead-letter checkpoints were a bare Vec<CheckpointEntry>.
        let legacy = serde_json::to_vec(&vec![CheckpointEntry {
            family: FamilyId::new(4),
            extractor: "tabular".to_string(),
            metadata: md("t"),
        }])
        .unwrap();
        let restored = CheckpointStore::deserialize(&legacy).unwrap();
        assert_eq!(restored.load(FamilyId::new(4), "tabular"), Some(md("t")));
        assert!(restored.dead_letters().is_empty());
    }
}
