//! Checkpointing (§5.8.1).
//!
//! "For this experiment we checkpointed progress via a 'checkpoint-flag'
//! in the extractor that, when present, flushes each processed group's
//! metadata to disk on completion. When funcX returns a heartbeat ...
//! stating that a family's task id is lost (i.e., the allocation ended),
//! then the entire family is resubmitted, and in the presence of the
//! 'checkpoint-flag', the metadata are re-loaded."
//!
//! The store is keyed by `(family, extractor)` so a resubmitted family
//! skips extractors whose output already flushed — only unfinished steps
//! re-execute. Serialization round-trips through JSON so a checkpoint can
//! live on any data layer.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xtract_obs::{Counter, MetricsHub};
use xtract_types::{DeadLetter, FamilyId, Metadata, Result, XtractError};

/// One flushed entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// The family.
    pub family: FamilyId,
    /// Extractor name whose output this is.
    pub extractor: String,
    /// The flushed metadata.
    pub metadata: Metadata,
}

/// The serialized form: flushed outputs plus the job's dead letters, so a
/// restart knows both what succeeded and what was terminally abandoned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointImage {
    entries: Vec<CheckpointEntry>,
    #[serde(default)]
    dead_letters: Vec<DeadLetter>,
}

/// A thread-safe checkpoint store for one job.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    entries: RwLock<HashMap<(FamilyId, String), Metadata>>,
    dead_letters: RwLock<Vec<DeadLetter>>,
    flushes: Counter,
    hits: Counter,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store whose flush/hit counters are interned in `hub` as
    /// `checkpoint.flushes` and `checkpoint.hits`.
    pub fn with_obs(hub: &MetricsHub) -> Self {
        let mut store = Self::new();
        store.flushes = hub.counter("checkpoint.flushes");
        store.hits = hub.counter("checkpoint.hits");
        store
    }

    /// Flushes one completed extractor's output for a family.
    pub fn flush(&self, family: FamilyId, extractor: &str, metadata: Metadata) {
        self.flushes.incr();
        self.entries
            .write()
            .insert((family, extractor.to_string()), metadata);
    }

    /// Loads a previously-flushed output, if any.
    pub fn load(&self, family: FamilyId, extractor: &str) -> Option<Metadata> {
        let found = self
            .entries
            .read()
            .get(&(family, extractor.to_string()))
            .cloned();
        if found.is_some() {
            self.hits.incr();
        }
        found
    }

    /// Extractor names already completed for `family`.
    pub fn completed_extractors(&self, family: FamilyId) -> Vec<String> {
        let mut v: Vec<String> = self
            .entries
            .read()
            .keys()
            .filter(|(f, _)| *f == family)
            .map(|(_, e)| e.clone())
            .collect();
        v.sort();
        v
    }

    /// Number of flushed entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when nothing has flushed.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Records a family's terminal dead letter, so a restarted job knows
    /// not to resubmit a family the previous run already gave up on.
    pub fn record_dead_letter(&self, letter: DeadLetter) {
        let mut letters = self.dead_letters.write();
        if !letters.iter().any(|l| l.family == letter.family) {
            letters.push(letter);
        }
    }

    /// The dead letters recorded so far, in arrival order.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.read().clone()
    }

    /// True when a previous run terminally abandoned `family`.
    pub fn is_dead(&self, family: FamilyId) -> bool {
        self.dead_letters.read().iter().any(|l| l.family == family)
    }

    /// Serializes the whole store (for persisting to a data layer).
    pub fn serialize(&self) -> Vec<u8> {
        let entries: Vec<CheckpointEntry> = self
            .entries
            .read()
            .iter()
            .map(|((family, extractor), metadata)| CheckpointEntry {
                family: *family,
                extractor: extractor.clone(),
                metadata: metadata.clone(),
            })
            .collect();
        let image = CheckpointImage {
            entries,
            dead_letters: self.dead_letters.read().clone(),
        };
        serde_json::to_vec(&image).expect("checkpoint serialization is infallible")
    }

    /// Restores a store from serialized bytes. Accepts both the current
    /// image format and the legacy bare entry list (pre-dead-letter
    /// checkpoints deserialize with no dead letters).
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        let image: CheckpointImage = match serde_json::from_slice(bytes) {
            Ok(image) => image,
            Err(image_err) => {
                let entries: Vec<CheckpointEntry> =
                    serde_json::from_slice(bytes).map_err(|_| XtractError::CheckpointCorrupt {
                        reason: image_err.to_string(),
                    })?;
                CheckpointImage {
                    entries,
                    dead_letters: Vec::new(),
                }
            }
        };
        let store = Self::new();
        {
            let mut map = store.entries.write();
            for e in image.entries {
                map.insert((e.family, e.extractor), e.metadata);
            }
        }
        *store.dead_letters.write() = image.dead_letters;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn md(k: &str) -> Metadata {
        let mut m = Metadata::new();
        m.insert(k, 1);
        m
    }

    #[test]
    fn flush_then_load() {
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(1), "keyword", md("kw"));
        assert_eq!(store.load(FamilyId::new(1), "keyword"), Some(md("kw")));
        assert_eq!(store.load(FamilyId::new(1), "tabular"), None);
        assert_eq!(store.load(FamilyId::new(2), "keyword"), None);
    }

    #[test]
    fn completed_extractors_per_family() {
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(1), "keyword", md("a"));
        store.flush(FamilyId::new(1), "tabular", md("b"));
        store.flush(FamilyId::new(2), "keyword", md("c"));
        assert_eq!(
            store.completed_extractors(FamilyId::new(1)),
            vec!["keyword".to_string(), "tabular".to_string()]
        );
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn reflush_overwrites() {
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(1), "keyword", md("old"));
        store.flush(FamilyId::new(1), "keyword", md("new"));
        assert_eq!(store.load(FamilyId::new(1), "keyword"), Some(md("new")));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn serialization_roundtrip() {
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(7), "matio", md("energy"));
        store.flush(FamilyId::new(8), "images", md("class"));
        let bytes = store.serialize();
        let restored = CheckpointStore::deserialize(&bytes).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.load(FamilyId::new(7), "matio"), Some(md("energy")));
    }

    #[test]
    fn corrupt_bytes_are_an_error() {
        let err = CheckpointStore::deserialize(b"{broken").unwrap_err();
        assert!(matches!(err, XtractError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = CheckpointStore::new();
        assert!(store.is_empty());
        let restored = CheckpointStore::deserialize(&store.serialize()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn dead_letters_roundtrip_and_dedupe() {
        use xtract_types::FailureReason;
        let store = CheckpointStore::new();
        store.flush(FamilyId::new(1), "keyword", md("kw"));
        let letter = DeadLetter::new(
            FamilyId::new(2),
            FailureReason::Internal {
                reason: "bad".into(),
            },
            3,
        );
        store.record_dead_letter(letter.clone());
        store.record_dead_letter(letter.clone()); // same family: ignored
        assert_eq!(store.dead_letters(), vec![letter]);
        assert!(store.is_dead(FamilyId::new(2)));
        assert!(!store.is_dead(FamilyId::new(1)));
        let restored = CheckpointStore::deserialize(&store.serialize()).unwrap();
        assert!(restored.is_dead(FamilyId::new(2)));
        assert_eq!(restored.load(FamilyId::new(1), "keyword"), Some(md("kw")));
    }

    #[test]
    fn hub_backed_store_counts_flushes_and_hits() {
        let hub = MetricsHub::new();
        let store = CheckpointStore::with_obs(&hub);
        store.flush(FamilyId::new(1), "keyword", md("kw"));
        store.flush(FamilyId::new(1), "tabular", md("tb"));
        assert!(store.load(FamilyId::new(1), "keyword").is_some()); // hit
        assert!(store.load(FamilyId::new(9), "keyword").is_none()); // miss
        assert_eq!(hub.counter_value("checkpoint.flushes", None), 2);
        assert_eq!(hub.counter_value("checkpoint.hits", None), 1);
    }

    #[test]
    fn legacy_entry_list_still_deserializes() {
        // Pre-dead-letter checkpoints were a bare Vec<CheckpointEntry>.
        let legacy = serde_json::to_vec(&vec![CheckpointEntry {
            family: FamilyId::new(4),
            extractor: "tabular".to_string(),
            metadata: md("t"),
        }])
        .unwrap();
        let restored = CheckpointStore::deserialize(&legacy).unwrap();
        assert_eq!(restored.load(FamilyId::new(4), "tabular"), Some(md("t")));
        assert!(restored.dead_letters().is_empty());
    }
}
