//! FaaS payload wiring: serializing Xtract batches into function inputs
//! and building the [`FunctionBody`] closures that execute extractors at
//! endpoints (the Rust analogue of the paper's Listing 1).
//!
//! The payload round-trips through JSON deliberately — serialization cost
//! is part of what batching amortizes (§4.3.2), and the live batching
//! micro-bench measures exactly this path.

use crate::batcher::XtractBatch;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use xtract_datafabric::DataFabric;
use xtract_extractors::{Extractor, FileSource};
use xtract_faas::FunctionBody;
use xtract_types::{Family, FamilyId, FileType, Metadata, Result, XtractError};

/// The wire form of one Xtract batch (Listing 1's `event`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchPayload {
    /// Extractor name (for provenance; the function already embeds its
    /// extractor).
    pub extractor: String,
    /// Families to process serially.
    pub families: Vec<Family>,
    /// Remove staged copies after extraction (Listing 1's
    /// `delete_files`).
    pub delete_files: bool,
}

/// The wire form of one family's result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyResult {
    /// Which family.
    pub family: FamilyId,
    /// Extractor output, namespaced under the extractor name, with
    /// per-file entries under `"files"`.
    pub metadata: Metadata,
    /// Type discoveries for the planner.
    pub discoveries: Vec<(String, FileType)>,
    /// Per-family hard error, if the invocation failed.
    pub error: Option<String>,
}

/// Encodes a batch for submission.
pub fn encode_batch(batch: &XtractBatch, delete_files: bool) -> serde_json::Value {
    serde_json::to_value(BatchPayload {
        extractor: batch.extractor.name().to_string(),
        families: batch.families.clone(),
        delete_files,
    })
    .expect("payload serialization is infallible")
}

/// Decodes a function's result list.
pub fn decode_results(value: &serde_json::Value) -> Result<Vec<FamilyResult>> {
    serde_json::from_value(value.clone()).map_err(|e| XtractError::ValidationFailed {
        schema: "family-result".to_string(),
        reason: e.to_string(),
    })
}

/// A [`FileSource`] reading through the data fabric — what an endpoint
/// worker sees after the prefetcher staged (or confirmed local) all of a
/// family's files.
pub struct FabricSource {
    fabric: Arc<DataFabric>,
}

impl FabricSource {
    /// A source over the fabric.
    pub fn new(fabric: Arc<DataFabric>) -> Self {
        Self { fabric }
    }
}

impl FileSource for FabricSource {
    fn read(&self, file: &xtract_types::FileRecord) -> Result<bytes::Bytes> {
        self.fabric.get(file.endpoint)?.backend.read(&file.path)
    }
}

/// Builds the FaaS function body for one extractor: decode the batch, run
/// the extractor over each family, package results (Listing 1's loop),
/// and honour `delete_files`.
pub fn make_function_body(extractor: Arc<dyn Extractor>, fabric: Arc<DataFabric>) -> FunctionBody {
    Arc::new(move |input: serde_json::Value| {
        let payload: BatchPayload =
            serde_json::from_value(input).map_err(|e| XtractError::ValidationFailed {
                schema: "batch-payload".to_string(),
                reason: e.to_string(),
            })?;
        let source = FabricSource::new(fabric.clone());
        let mut results = Vec::with_capacity(payload.families.len());
        for family in &payload.families {
            let result = match extractor.extract(family, &source) {
                Ok(out) => {
                    let mut metadata = Metadata::new();
                    let mut ns = out.family_metadata;
                    if !out.per_file.is_empty() {
                        let files: serde_json::Map<String, serde_json::Value> = out
                            .per_file
                            .into_iter()
                            .map(|(p, m)| (p, serde_json::Value::Object(m.0)))
                            .collect();
                        ns.insert("files", serde_json::Value::Object(files));
                    }
                    metadata.merge_namespaced(extractor.kind().name(), ns);
                    FamilyResult {
                        family: family.id,
                        metadata,
                        discoveries: out.discovered,
                        error: None,
                    }
                }
                Err(e) => FamilyResult {
                    family: family.id,
                    metadata: Metadata::new(),
                    discoveries: Vec::new(),
                    error: Some(e.to_string()),
                },
            };
            results.push(result);
            if payload.delete_files {
                if let Some(base) = &family.base_path {
                    if let Ok(ep) = fabric.get(family.source) {
                        let _ = ep.backend.remove(base);
                    }
                }
            }
        }
        Ok(serde_json::to_value(results).expect("results serialize"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use xtract_datafabric::{MemFs, StorageBackend};
    use xtract_extractors::library;
    use xtract_types::{EndpointId, ExtractorKind, FileRecord, Group, GroupId};

    fn fabric_with_file(path: &str, contents: &[u8]) -> Arc<DataFabric> {
        let fabric = Arc::new(DataFabric::new());
        let ep = EndpointId::new(0);
        let fs = Arc::new(MemFs::new(ep));
        fs.write(path, Bytes::copy_from_slice(contents)).unwrap();
        fabric.register(ep, "test", fs);
        fabric
    }

    fn one_family_batch(path: &str, hint: FileType, kind: ExtractorKind) -> XtractBatch {
        let f = FileRecord::new(path, 0, EndpointId::new(0), hint);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        let fam = Family::new(FamilyId::new(9), vec![f], vec![g], EndpointId::new(0));
        XtractBatch {
            endpoint: EndpointId::new(0),
            extractor: kind,
            families: vec![fam],
        }
    }

    #[test]
    fn body_runs_extractor_end_to_end() {
        let fabric = fabric_with_file("/d/t.csv", b"a,b\n1,2\n3,4\n");
        let lib = library();
        let body = make_function_body(lib[&ExtractorKind::Tabular].clone(), fabric);
        let batch = one_family_batch("/d/t.csv", FileType::Tabular, ExtractorKind::Tabular);
        let out = body(encode_batch(&batch, false)).unwrap();
        let results = decode_results(&out).unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.family, FamilyId::new(9));
        assert!(r.error.is_none());
        let tab = r.metadata.get("tabular").unwrap();
        assert_eq!(tab["files"]["/d/t.csv"]["rows"], 2);
        assert_eq!(tab["tables"], 1);
    }

    #[test]
    fn discoveries_travel_back() {
        let fabric = fabric_with_file("/d/x.txt", b"h1,h2\n1,2\n3,4\n");
        let lib = library();
        let body = make_function_body(lib[&ExtractorKind::Keyword].clone(), fabric);
        let batch = one_family_batch("/d/x.txt", FileType::FreeText, ExtractorKind::Keyword);
        let out = body(encode_batch(&batch, false)).unwrap();
        let results = decode_results(&out).unwrap();
        assert_eq!(
            results[0].discoveries,
            vec![("/d/x.txt".to_string(), FileType::Tabular)]
        );
    }

    #[test]
    fn missing_file_is_a_family_error_not_a_crash() {
        let fabric = fabric_with_file("/other.txt", b"x");
        let lib = library();
        let body = make_function_body(lib[&ExtractorKind::Keyword].clone(), fabric);
        let batch = one_family_batch("/gone.txt", FileType::FreeText, ExtractorKind::Keyword);
        let out = body(encode_batch(&batch, false)).unwrap();
        let results = decode_results(&out).unwrap();
        assert!(results[0]
            .error
            .as_deref()
            .unwrap()
            .contains("no such path"));
    }

    #[test]
    fn delete_files_removes_staged_copies() {
        let fabric = fabric_with_file("/stage/fam-9/d/t.csv", b"a,b\n1,2\n");
        let lib = library();
        let body = make_function_body(lib[&ExtractorKind::Tabular].clone(), fabric.clone());
        let mut batch = one_family_batch(
            "/stage/fam-9/d/t.csv",
            FileType::Tabular,
            ExtractorKind::Tabular,
        );
        batch.families[0].base_path = Some("/stage/fam-9".to_string());
        let out = body(encode_batch(&batch, true)).unwrap();
        assert!(decode_results(&out).unwrap()[0].error.is_none());
        let backend = &fabric.get(EndpointId::new(0)).unwrap().backend;
        assert!(backend.read("/stage/fam-9/d/t.csv").is_err());
    }

    #[test]
    fn garbage_payload_is_rejected() {
        let fabric = fabric_with_file("/x", b"");
        let lib = library();
        let body = make_function_body(lib[&ExtractorKind::Keyword].clone(), fabric);
        assert!(body(serde_json::json!({"not": "a batch"})).is_err());
    }
}
