//! Cross-process shard workers: the coordinator wire protocol.
//!
//! [`crate::shard`] scales one job across N wave loops *in one
//! process*; this module moves each wave loop into its own OS process.
//! The coordinator (the process that ran the crawl and owns the root
//! WAL) listens on a Unix domain socket inside the WAL directory
//! (`wal/coord.sock`); each worker process runs `run_worker`, claims
//! its shard's WAL under a fencing lease, and speaks the seven
//! [`ShardLink`] verbs over length-prefixed CRC32-framed JSON — the
//! same framing discipline the WAL itself uses, so a torn or corrupt
//! frame is detected, never trusted.
//!
//! **Lease-fenced ownership.** In-process custody dies with the thread
//! that holds it; a killed *process* can leave a zombie child or a
//! half-written WAL behind. Every shard WAL is therefore owned through
//! an epoch-numbered lease file ([`LogDirLease`]): the worker pins its
//! open log to its lease epoch, and every group commit re-reads the
//! lease and refuses to write a single byte under a superseded epoch.
//! When the coordinator declares a worker dead it *preempts* the lease
//! (bumping the epoch) before adopting the WAL, so the dead worker's
//! straggling writes — if the process is in fact still alive — are
//! rejected at the commit boundary, not discovered later as
//! interleaved corruption.
//!
//! **Death detection.** A running worker heartbeats on a background
//! pinger every `ShardPolicy::heartbeat_ms`; the coordinator's monitor
//! parks in [`ShardCoordinator::await_timeout`] and declares any
//! *running* slot dead once its last beat ages past
//! `heartbeat_timeout_ms`. Idle workers are exempt — they park inside
//! a blocking `IdleWait` RPC — and their death surfaces as the
//! connection's EOF instead. Either way the coordinator fences the
//! WAL, replays it, and migrates every non-terminal family to a
//! survivor, exactly as the in-process path does on a thread death.
//!
//! **Coordinator crash recovery.** The coordinator journals its own
//! custody view to the root WAL: a [`RecoveryRecord::ShardEpoch`] per
//! admission and fencing (the floor the next worker's lease must
//! exceed) and a [`RecoveryRecord::CustodyMoved`] per brokered
//! hand-over (the chain-walk hint for migrations that crashed between
//! the donor's out-record and the recipient's in-record). A restarted
//! coordinator replays both, fences every shard WAL above any epoch a
//! zombie might still hold, repairs half-finished hand-overs, and
//! re-admits fresh workers — while orphaned workers of the previous
//! incarnation exit on their next RPC (socket EOF) or group commit
//! (lease fenced), whichever fires first.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use xtract_datafabric::{AuthService, DataFabric, LocalFs, MemFs, Scope, Token};
use xtract_obs::{Event, Obs};
use xtract_types::config::ContainerRuntime;
use xtract_types::{
    DeadLetter, EndpointId, EndpointSpec, FamilyId, GroupingStrategy, JobSpec, Result, XtractError,
};

use crate::recovery::{crc32, LogDirLease, RecoveryLog, RecoveryRecord};
use crate::service::{JobReport, XtractService};
use crate::shard::{
    adopt_orphans, merge_reports, prepare_root, redistribute, resolve_and_seed, sub_spec_for,
    IdleVerdict, Migrant, RootPlan, ShardCoordinator, ShardLayout, ShardLink, StealRequest,
};

/// The coordinator's listening socket, rooted in the WAL directory so
/// one job's workers can never dial another job's coordinator.
pub const COORD_SOCK: &str = "coord.sock";

/// The serialized [`WorldSpec`] workers bootstrap their service from.
pub const PROC_JOB_FILE: &str = "proc-job.json";

/// Frames larger than this are rejected as corrupt rather than
/// allocated: a garbage length prefix must not OOM the peer.
const MAX_FRAME: usize = 64 << 20;

fn tfail(reason: impl Into<String>) -> XtractError {
    XtractError::TransportFailed {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// Framing: [len u32 LE][crc32 u32 LE][payload], the WAL's own discipline.
// ---------------------------------------------------------------------

fn write_frame(stream: &mut UnixStream, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(tfail(format!(
            "frame of {} bytes exceeds cap",
            payload.len()
        )));
    }
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    stream
        .write_all(&buf)
        .map_err(|e| tfail(format!("socket write: {e}")))
}

fn read_frame(stream: &mut UnixStream) -> Result<Vec<u8>> {
    let mut head = [0u8; 8];
    stream
        .read_exact(&mut head)
        .map_err(|e| tfail(format!("socket read: {e}")))?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len > MAX_FRAME {
        return Err(tfail(format!("frame length {len} exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .map_err(|e| tfail(format!("socket read: {e}")))?;
    if crc32(&payload) != crc {
        return Err(tfail("frame crc mismatch"));
    }
    Ok(payload)
}

/// One framed, counted connection end. Every send/recv bumps the
/// `transport.*` counters so a run's chattiness is observable.
struct Framed {
    stream: UnixStream,
    obs: Obs,
}

impl Framed {
    fn send<T: Serialize>(&mut self, msg: &T) -> Result<()> {
        let payload = serde_json::to_vec(msg).map_err(|e| tfail(format!("encode: {e}")))?;
        write_frame(&mut self.stream, &payload)?;
        self.obs.hub.counter("transport.frames_sent").add(1);
        Ok(())
    }

    fn recv<T: serde::de::DeserializeOwned>(&mut self) -> Result<T> {
        let payload = read_frame(&mut self.stream)?;
        self.obs.hub.counter("transport.frames_recv").add(1);
        serde_json::from_slice(&payload).map_err(|e| tfail(format!("decode: {e}")))
    }
}

// ---------------------------------------------------------------------
// Wire messages.
// ---------------------------------------------------------------------

/// Worker → coordinator. The shard index is implicit after `Hello`
/// binds the connection.
#[derive(Debug, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum WorkerMsg {
    /// Handshake: the worker claims `shard` under lease `epoch`.
    /// Admission requires the epoch to exceed every epoch the
    /// coordinator has seen for the shard — a zombie re-presenting a
    /// fenced epoch is refused before it can touch coordinator state.
    Hello { shard: usize, pid: u32, epoch: u64 },
    /// Liveness + load: wave number and non-terminal family count.
    Heartbeat { wave: u64, pending: u64 },
    /// Drain delivered migrants (stay in custody until `Ack`).
    Drain,
    /// In-records for these adopted families are durable.
    Ack { families: Vec<FamilyId> },
    /// Take the shard's pending steal directive, if any.
    TakeSteal,
    /// Hand a migrant to shard `to` (out-record already durable).
    Deliver { to: usize, migrant: Migrant },
    /// Park until migrants arrive or the whole run is drained.
    IdleWait,
    /// The wave loop completed; the WAL lease is already released.
    Finished { report: JobReport },
    /// The wave loop failed terminally (not a scheduled kill).
    Failed { error: XtractError },
}

/// Coordinator → worker replies.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) enum CoordMsg {
    /// Admission granted under the worker's lease epoch.
    Welcome { epoch: u64 },
    /// Bare acknowledgement.
    Ok,
    /// Reply to `Drain`.
    Migrants { migrants: Vec<Migrant> },
    /// Reply to `TakeSteal`.
    Steal { steal: Option<StealRequest> },
    /// Reply to `IdleWait`: adopt (false) or break out (true).
    Idle { finished: bool },
    /// The worker's epoch is stale: it was fenced and must exit. Sent
    /// in place of any other reply once the coordinator has moved on.
    Fenced { epoch: u64 },
}

// ---------------------------------------------------------------------
// Worker side: ShardClient (the socket-backed ShardLink) + run_worker.
// ---------------------------------------------------------------------

struct PingState {
    wave: u64,
    pending: u64,
    stop: bool,
}

/// The worker's connection to its coordinator: a mutex-serialized RPC
/// channel plus a background pinger that re-sends the last wave-top
/// heartbeat every `heartbeat_ms`, so a worker deep inside a long wave
/// still reads as alive. Implements [`ShardLink`], so the wave loop is
/// byte-for-byte the in-process one.
pub(crate) struct ShardClient {
    shard: usize,
    epoch: u64,
    conn: Arc<Mutex<Framed>>,
    ping: Arc<(Mutex<PingState>, Condvar)>,
    pinger: Option<std::thread::JoinHandle<()>>,
}

impl ShardClient {
    fn start(shard: usize, epoch: u64, conn: Arc<Mutex<Framed>>, heartbeat_ms: u64) -> Self {
        let ping = Arc::new((
            Mutex::new(PingState {
                wave: 0,
                pending: 0,
                stop: false,
            }),
            Condvar::new(),
        ));
        let pinger = {
            let conn = Arc::clone(&conn);
            let ping = Arc::clone(&ping);
            std::thread::spawn(move || loop {
                let (wave, pending) = {
                    let (lock, cv) = &*ping;
                    let mut st = lock.lock();
                    if st.stop {
                        return;
                    }
                    cv.wait_for(&mut st, Duration::from_millis(heartbeat_ms.max(1)));
                    if st.stop {
                        return;
                    }
                    (st.wave, st.pending)
                };
                // While the main thread is parked in a blocking
                // `IdleWait` RPC it holds the connection, and the slot
                // is timeout-exempt anyway; we just queue behind it.
                let mut framed = conn.lock();
                if framed
                    .send(&WorkerMsg::Heartbeat { wave, pending })
                    .is_err()
                {
                    return;
                }
                if framed.recv::<CoordMsg>().is_err() {
                    return;
                }
            })
        };
        Self {
            shard,
            epoch,
            conn,
            ping,
            pinger: Some(pinger),
        }
    }

    fn rpc(&self, msg: &WorkerMsg) -> Result<CoordMsg> {
        let mut framed = self.conn.lock();
        framed.send(msg)?;
        let reply: CoordMsg = framed.recv()?;
        if let CoordMsg::Fenced { epoch } = reply {
            return Err(XtractError::LeaseFenced {
                dir: format!("shard-{}", self.shard),
                held: self.epoch,
                current: epoch,
            });
        }
        Ok(reply)
    }

    /// Stops the pinger. Must run before `Finished`/`Failed` goes out:
    /// a straggling ping after the terminal message would re-mark the
    /// slot running on the coordinator.
    fn shutdown(&mut self) {
        {
            let (lock, cv) = &*self.ping;
            lock.lock().stop = true;
            cv.notify_all();
        }
        if let Some(h) = self.pinger.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ShardClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ShardLink for ShardClient {
    fn shard(&self) -> usize {
        self.shard
    }

    fn heartbeat(&self, wave: u64, pending: u64) -> Result<()> {
        {
            let (lock, _) = &*self.ping;
            let mut st = lock.lock();
            st.wave = wave;
            st.pending = pending;
        }
        match self.rpc(&WorkerMsg::Heartbeat { wave, pending })? {
            CoordMsg::Ok => Ok(()),
            other => Err(tfail(format!("unexpected reply to heartbeat: {other:?}"))),
        }
    }

    fn drain(&self) -> Result<Vec<Migrant>> {
        match self.rpc(&WorkerMsg::Drain)? {
            CoordMsg::Migrants { migrants } => Ok(migrants),
            other => Err(tfail(format!("unexpected reply to drain: {other:?}"))),
        }
    }

    fn ack(&self, families: &[FamilyId]) -> Result<()> {
        match self.rpc(&WorkerMsg::Ack {
            families: families.to_vec(),
        })? {
            CoordMsg::Ok => Ok(()),
            other => Err(tfail(format!("unexpected reply to ack: {other:?}"))),
        }
    }

    fn take_steal(&self) -> Result<Option<StealRequest>> {
        match self.rpc(&WorkerMsg::TakeSteal)? {
            CoordMsg::Steal { steal } => Ok(steal),
            other => Err(tfail(format!("unexpected reply to take_steal: {other:?}"))),
        }
    }

    fn deliver(&self, to: usize, migrant: Migrant) -> Result<()> {
        match self.rpc(&WorkerMsg::Deliver { to, migrant })? {
            CoordMsg::Ok => Ok(()),
            other => Err(tfail(format!("unexpected reply to deliver: {other:?}"))),
        }
    }

    fn idle_wait(&self) -> Result<IdleVerdict> {
        match self.rpc(&WorkerMsg::IdleWait)? {
            CoordMsg::Idle { finished: false } => Ok(IdleVerdict::Adopt),
            CoordMsg::Idle { finished: true } => Ok(IdleVerdict::Finished),
            other => Err(tfail(format!("unexpected reply to idle_wait: {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// World bootstrap: the spec a worker process rebuilds its service from.
// ---------------------------------------------------------------------

/// Everything a worker process needs to reconstruct the coordinator's
/// world: the on-disk corpus root, the service seed, and the full job
/// spec (fault plan included — each worker slices out its own kill
/// schedule). Serialized to `wal/proc-job.json` by the coordinator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldSpec {
    /// Directory the `LocalFs` endpoint serves.
    pub data_dir: PathBuf,
    /// Service RNG seed — identical across coordinator and workers so
    /// simulation-mode substrates roll the same dice.
    pub seed: u64,
    /// The job, shard policy and all.
    pub spec: JobSpec,
}

impl WorldSpec {
    /// The CLI's standard extraction world over a real directory:
    /// `LocalFs` corpus on endpoint 0, in-memory results endpoint 1,
    /// MDF validation, materials-aware grouping. `shards == 0` leaves
    /// the shard policy disabled (the unsharded baseline shape).
    pub fn standard(data_dir: impl Into<PathBuf>, workers: usize, shards: usize) -> Self {
        let ep = EndpointId::new(0);
        let results_ep = EndpointId::new(1);
        let mut spec = JobSpec::single_endpoint(
            EndpointSpec {
                endpoint: ep,
                read_path: "/".into(),
                store_path: Some("/.xtract-stage".into()),
                available_bytes: u64::MAX / 4,
                workers: Some(workers),
                runtime: ContainerRuntime::Docker,
            },
            "/",
        );
        spec.endpoints.push(EndpointSpec {
            endpoint: results_ep,
            read_path: "/".into(),
            store_path: Some("/".into()),
            available_bytes: u64::MAX / 4,
            workers: None,
            runtime: ContainerRuntime::Docker,
        });
        spec.results_endpoint = Some(results_ep);
        spec.validation = xtract_types::ValidationSchema::Mdf("mdf-generic".into());
        spec.grouping = GroupingStrategy::MaterialsAware;
        if shards > 0 {
            spec.shard = xtract_types::ShardPolicy::sharded(shards);
        }
        Self {
            data_dir: data_dir.into(),
            seed: 0xC11,
            spec,
        }
    }

    /// Reads a serialized world from `path`.
    pub fn load(path: &Path) -> Result<Self> {
        let bytes =
            std::fs::read(path).map_err(|e| tfail(format!("read {}: {e}", path.display())))?;
        serde_json::from_slice(&bytes).map_err(|e| tfail(format!("parse {}: {e}", path.display())))
    }

    /// Writes the world to `path` for workers to bootstrap from.
    pub fn store(&self, path: &Path) -> Result<()> {
        let json =
            serde_json::to_vec_pretty(self).map_err(|e| tfail(format!("encode world: {e}")))?;
        std::fs::write(path, json).map_err(|e| tfail(format!("write {}: {e}", path.display())))
    }
}

/// Builds the service + token for a [`WorldSpec`]: each process — the
/// coordinator and every worker — constructs its own identical copy.
pub fn build_world_service(world: &WorldSpec) -> Result<(XtractService, Token)> {
    let fabric = Arc::new(DataFabric::new());
    let ep = world.spec.endpoints[0].endpoint;
    fabric.register(ep, "local", Arc::new(LocalFs::new(ep, &world.data_dir)?));
    if let Some(results_ep) = world.spec.results_endpoint {
        fabric.register(results_ep, "results", Arc::new(MemFs::new(results_ep)));
    }
    let auth = Arc::new(AuthService::new());
    let token = auth.login(
        "proc-shard",
        &[
            Scope::Crawl,
            Scope::Extract,
            Scope::Transfer,
            Scope::Validate,
        ],
    );
    let service = XtractService::new(fabric, auth, world.seed);
    service.connect_endpoint(&world.spec.endpoints[0])?;
    Ok((service, token))
}

// ---------------------------------------------------------------------
// Worker entry point.
// ---------------------------------------------------------------------

/// Dies the way a SIGKILL would: no unwinding, no destructors — the
/// lease file is left claiming this pid. Used when a scheduled chaos
/// kill fires, so cross-process kill tests exercise the exact zombie
/// path a real `kill -9` produces.
fn die_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    // If kill(1) is unavailable, abort still skips destructors.
    std::process::abort();
}

/// One cross-process shard worker: claims `root/shard-{k}` under a
/// fencing lease, dials `root/coord.sock`, and runs the shard's wave
/// loop against its own WAL until the coordinator says the run is
/// drained. The CLI's `shard-worker` subcommand is a thin wrapper.
pub fn run_worker(root: &Path, shard: usize) -> Result<()> {
    let world = WorldSpec::load(&root.join(PROC_JOB_FILE))?;
    let (service, token) = build_world_service(&world)?;
    let sd = root.join(format!("shard-{shard}"));
    let lease = LogDirLease::acquire(&sd)?;
    let stream = UnixStream::connect(root.join(COORD_SOCK))
        .map_err(|e| tfail(format!("connect coordinator: {e}")))?;
    let conn = Arc::new(Mutex::new(Framed {
        stream,
        obs: service.obs.clone(),
    }));

    // Hello/Welcome before the WAL is touched: a refused worker must
    // leave no trace.
    let reply: CoordMsg = {
        let mut framed = conn.lock();
        framed.send(&WorkerMsg::Hello {
            shard,
            pid: std::process::id(),
            epoch: lease.epoch(),
        })?;
        framed.recv()?
    };
    match reply {
        CoordMsg::Welcome { epoch } if epoch == lease.epoch() => {}
        CoordMsg::Welcome { epoch } => {
            return Err(tfail(format!(
                "coordinator admitted epoch {epoch}, lease holds {}",
                lease.epoch()
            )))
        }
        CoordMsg::Fenced { epoch } => {
            return Err(XtractError::LeaseFenced {
                dir: sd.display().to_string(),
                held: lease.epoch(),
                current: epoch,
            })
        }
        other => return Err(tfail(format!("expected Welcome, got {other:?}"))),
    }

    let sub_spec = sub_spec_for(&world.spec, shard);
    if let Some(plan) = &sub_spec.fault_plan {
        service.arm_faults(plan);
    }
    let label = format!("shard-{shard}");
    let ctx = service.open_recovery(&sub_spec, &sd, Some(&label))?;
    ctx.log.set_fence(&lease);
    let mut client = ShardClient::start(
        shard,
        lease.epoch(),
        Arc::clone(&conn),
        world.spec.shard.heartbeat_ms,
    );
    let result = service.run_job_inner(
        token,
        &sub_spec,
        Some(&ctx),
        None,
        Some(&client as &dyn ShardLink),
    );
    client.shutdown();
    match result {
        Ok(report) => {
            // Release the WAL before announcing completion: the
            // coordinator may immediately re-open it to redistribute
            // custody leftovers the wave loop will never drain.
            drop(ctx);
            drop(lease);
            let mut framed = conn.lock();
            framed.send(&WorkerMsg::Finished { report })?;
            let _ = framed.recv::<CoordMsg>();
            Ok(())
        }
        // A scheduled chaos kill: the in-process path propagates this
        // error to the fan-out; a real worker process dies for real.
        Err(XtractError::OrchestratorKilled { .. }) => die_hard(),
        Err(e) => {
            drop(ctx);
            drop(lease);
            let mut framed = conn.lock();
            let _ = framed.send(&WorkerMsg::Failed { error: e.clone() });
            let _ = framed.recv::<CoordMsg>();
            Err(e)
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------

/// How the coordinator launches a worker process: `program args...
/// --root DIR --shard K`. The CLI re-invokes itself as `shard-worker`.
#[derive(Debug, Clone)]
pub struct WorkerCmd {
    /// The worker executable.
    pub program: PathBuf,
    /// Leading arguments (e.g. the `shard-worker` subcommand).
    pub args: Vec<String>,
}

impl WorkerCmd {
    /// The current executable re-invoked with `args` — the CLI's own
    /// spawn shape, also what integration tests use via
    /// `CARGO_BIN_EXE_*`.
    pub fn current_exe(args: Vec<String>) -> Result<Self> {
        let program = std::env::current_exe().map_err(|e| tfail(format!("current_exe: {e}")))?;
        Ok(Self { program, args })
    }
}

/// Coordinator-internal events, funneled from connection handlers and
/// the heartbeat monitor into the single decision loop.
enum Ev {
    Finished(usize, JobReport),
    Failed(usize, XtractError),
    Lost(usize, String),
}

/// Serves one worker connection: admission (epoch check against the
/// fencing floor), then the RPC loop dispatching into the shared
/// [`ShardCoordinator`]. Every message re-checks the shard's admitted
/// epoch, so a worker fenced mid-run gets `Fenced` on its next verb
/// instead of silently mutating coordinator state.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: UnixStream,
    shards: usize,
    coordinator: &ShardCoordinator,
    admissions: &Mutex<Vec<u64>>,
    offsets: &Mutex<Vec<f64>>,
    root_log: &RecoveryLog,
    obs: &Obs,
    started: Instant,
    tx: &mpsc::Sender<Ev>,
) {
    let mut framed = Framed {
        stream,
        obs: obs.clone(),
    };
    let Ok(first) = framed.recv::<WorkerMsg>() else {
        return;
    };
    let WorkerMsg::Hello { shard, pid, epoch } = first else {
        let _ = framed.send(&CoordMsg::Fenced { epoch: 0 });
        return;
    };
    if shard >= shards {
        let _ = framed.send(&CoordMsg::Fenced { epoch: 0 });
        return;
    }
    let my_epoch = {
        let mut adm = admissions.lock();
        if epoch <= adm[shard] {
            // A zombie of a fenced incarnation (or a replayed epoch):
            // refused at the door.
            let cur = adm[shard];
            drop(adm);
            obs.hub.counter("transport.fenced").add(1);
            let _ = framed.send(&CoordMsg::Fenced { epoch: cur });
            return;
        }
        adm[shard] = epoch;
        epoch
    };
    offsets.lock()[shard] = started.elapsed().as_secs_f64();
    // Journal the admitted epoch before welcoming: a coordinator that
    // dies right after this line still fences the next incarnation's
    // workers above this worker's epoch.
    let _ = root_log.append(&RecoveryRecord::ShardEpoch {
        shard: shard as u64,
        epoch: my_epoch,
    });
    obs.journal.record(Event::WorkerAdmitted {
        shard: shard as u64,
        pid: u64::from(pid),
        epoch: my_epoch,
    });
    if framed.send(&CoordMsg::Welcome { epoch: my_epoch }).is_err() {
        let _ = tx.send(Ev::Lost(
            shard,
            "connection severed during admission".into(),
        ));
        return;
    }
    let mut clean = false;
    while let Ok(msg) = framed.recv::<WorkerMsg>() {
        {
            let adm = admissions.lock();
            if adm[shard] != my_epoch {
                let cur = adm[shard];
                drop(adm);
                obs.hub.counter("transport.fenced").add(1);
                let _ = framed.send(&CoordMsg::Fenced { epoch: cur });
                // No Lost event for a fenced zombie: whoever fenced it
                // already owns the shard's story.
                clean = true;
                break;
            }
        }
        let reply = match msg {
            WorkerMsg::Heartbeat { wave, pending } => {
                coordinator.heartbeat(shard, wave, pending);
                CoordMsg::Ok
            }
            WorkerMsg::Drain => CoordMsg::Migrants {
                migrants: coordinator.drain(shard),
            },
            WorkerMsg::Ack { families } => {
                coordinator.ack(shard, &families);
                CoordMsg::Ok
            }
            WorkerMsg::TakeSteal => CoordMsg::Steal {
                steal: coordinator.take_steal(shard),
            },
            WorkerMsg::Deliver { to, migrant } => {
                // Journal the brokered placement before the hand-over:
                // a restarted coordinator replays these as chain-walk
                // hints for migrations with no surviving in-record.
                let _ = root_log.append(&RecoveryRecord::CustodyMoved {
                    family: migrant.family.id,
                    from: migrant.from,
                    to: to as u64,
                });
                coordinator.deliver(to, migrant);
                CoordMsg::Ok
            }
            WorkerMsg::IdleWait => match coordinator.idle_wait(shard) {
                IdleVerdict::Adopt => CoordMsg::Idle { finished: false },
                IdleVerdict::Finished => CoordMsg::Idle { finished: true },
            },
            WorkerMsg::Finished { report } => {
                let _ = framed.send(&CoordMsg::Ok);
                let _ = tx.send(Ev::Finished(shard, report));
                clean = true;
                break;
            }
            WorkerMsg::Failed { error } => {
                let _ = framed.send(&CoordMsg::Ok);
                let _ = tx.send(Ev::Failed(shard, error));
                clean = true;
                break;
            }
            WorkerMsg::Hello { .. } => CoordMsg::Fenced { epoch: my_epoch },
        };
        if framed.send(&reply).is_err() {
            break;
        }
    }
    if !clean {
        let _ = tx.send(Ev::Lost(shard, "connection severed".into()));
    }
}

/// Runs `world.spec` across `shards` worker *processes*, each spawned
/// via `worker` and owning `dir/shard-{k}` under a fencing lease. The
/// coordinator process runs the crawl, seeds the shard WALs, brokers
/// stealing and migration over `dir/coord.sock`, detects worker death
/// (heartbeat timeout or socket EOF), fences and adopts dead shards'
/// WALs, and journals admissions + hand-overs to the root WAL so a
/// killed coordinator can itself be restarted against the same `dir`.
pub fn run_proc_sharded(
    service: &XtractService,
    // The coordinator never runs a wave loop itself; workers mint their
    // own tokens in their own processes. Kept for call-shape symmetry
    // with the in-process entry points.
    _token: Token,
    world: &WorldSpec,
    dir: &Path,
    worker: &WorkerCmd,
) -> Result<JobReport> {
    let spec = &world.spec;
    spec.validate()
        .map_err(|reason| XtractError::InvalidJob { reason })?;
    if !spec.shard.enabled {
        return Err(XtractError::InvalidJob {
            reason: "run_proc_sharded needs an enabled shard policy".into(),
        });
    }
    let shards = spec.shard.shards;
    let started = Instant::now();
    std::fs::create_dir_all(dir).map_err(|e| tfail(format!("create {}: {e}", dir.display())))?;

    let root_lease = LogDirLease::acquire(dir)?;
    let RootPlan {
        root,
        mut report,
        plan,
    } = prepare_root(service, spec, dir, started)?;
    root.log.set_fence(&root_lease);

    // Fence first, ask questions later: bump every shard WAL's lease
    // epoch past any prior incarnation — a zombie worker orphaned by a
    // killed coordinator may still be extracting into it — journal the
    // new floor to the root WAL, then release (epoch preserved) so the
    // fresh worker can claim the next epoch. The journaled floor also
    // covers admissions the previous incarnation recorded
    // ([`RecoveryCtx::shard_epochs`] replays them into `prepare_root`'s
    // context, and `preempt` bumps past whatever is on disk).
    let mut floors: Vec<u64> = Vec::with_capacity(shards);
    let mut fence_batch: Vec<RecoveryRecord> = Vec::with_capacity(shards);
    for k in 0..shards {
        let sd = dir.join(format!("shard-{k}"));
        let l = LogDirLease::preempt(&sd)?;
        if l.epoch() > 1 {
            service.obs.journal.record(Event::ShardFenced {
                shard: k as u64,
                epoch: l.epoch(),
            });
            service.obs.hub.counter("transport.fenced").add(1);
        }
        fence_batch.push(RecoveryRecord::ShardEpoch {
            shard: k as u64,
            epoch: l.epoch(),
        });
        floors.push(l.epoch());
    }
    root.log.append_batch(&fence_batch)?;

    // Ownership resolution + WAL seeding, with the replayed custody
    // hints steering the chain walk for hand-overs that crashed
    // between out-record and in-record.
    let ShardLayout {
        shard_dirs,
        subsets,
    } = resolve_and_seed(service, spec, dir, &plan, Some(&root.custody))?;

    world.store(&dir.join(PROC_JOB_FILE))?;
    let sock_path = dir.join(COORD_SOCK);
    let _ = std::fs::remove_file(&sock_path);
    let listener = UnixListener::bind(&sock_path)
        .map_err(|e| tfail(format!("bind {}: {e}", sock_path.display())))?;

    let coordinator = Arc::new(ShardCoordinator::new(
        spec.shard,
        service.obs.clone(),
        shards,
    ));
    let admissions: Mutex<Vec<u64>> = Mutex::new(floors);
    let offsets: Mutex<Vec<f64>> = Mutex::new(vec![0.0; shards]);
    let stop = AtomicBool::new(false);

    let mut children: Vec<Child> = Vec::new();
    for (k, subset) in subsets.iter().enumerate() {
        service.obs.journal.record(Event::ShardStarted {
            shard: k as u64,
            families: subset.len() as u64,
        });
        service.obs.hub.counter("shard.started").add(1);
        let child = Command::new(&worker.program)
            .args(&worker.args)
            .arg("--root")
            .arg(dir)
            .arg("--shard")
            .arg(k.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| tfail(format!("spawn worker {k}: {e}")))?;
        let _ = std::fs::write(dir.join(format!("worker-{k}.pid")), child.id().to_string());
        children.push(child);
    }

    let mut shard_reports: Vec<Option<(JobReport, f64)>> = (0..shards).map(|_| None).collect();
    let mut orphan_letters: Vec<DeadLetter> = Vec::new();
    let mut first_death: Option<(usize, String)> = None;
    let mut stranded = false;

    let scope_result = std::thread::scope(|scope| -> Result<()> {
        let (tx, rx) = mpsc::channel::<Ev>();

        // Accept loop: one handler thread per connection.
        {
            let tx = tx.clone();
            let listener = &listener;
            let stop = &stop;
            let coordinator = &coordinator;
            let admissions = &admissions;
            let offsets = &offsets;
            let root_log = &root.log;
            let obs = &service.obs;
            scope.spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    let tx = tx.clone();
                    scope.spawn(move || {
                        serve_connection(
                            stream,
                            shards,
                            coordinator,
                            admissions,
                            offsets,
                            root_log,
                            obs,
                            started,
                            &tx,
                        );
                    });
                }
            });
        }

        // Heartbeat monitor: running slots whose last beat aged past
        // the budget surface as Lost. Already-reported slots are muted
        // until the main loop marks them dead, so the monitor cannot
        // busy-loop on a death still being processed.
        {
            let tx = tx.clone();
            let coordinator = Arc::clone(&coordinator);
            let budget = Duration::from_millis(spec.shard.heartbeat_timeout_ms);
            scope.spawn(move || {
                let mut reported: Vec<usize> = Vec::new();
                loop {
                    let expired = coordinator.await_timeout(budget, &reported);
                    if expired.is_empty() {
                        return;
                    }
                    for k in expired {
                        reported.push(k);
                        let reason =
                            format!("no heartbeat for {}ms while running", budget.as_millis());
                        if tx.send(Ev::Lost(k, reason)).is_err() {
                            return;
                        }
                    }
                }
            });
        }
        drop(tx);

        // The decision loop: one terminal event per shard.
        let outcome: Result<()> = (|| {
            let mut terminal = vec![false; shards];
            let mut done = 0usize;
            while done < shards {
                let ev = rx.recv().map_err(|_| XtractError::Internal {
                    reason: "coordinator event channel closed".into(),
                })?;
                let (k, point) = match ev {
                    Ev::Finished(k, rep) => {
                        if !terminal[k] {
                            coordinator.mark_done(k);
                            // A delivery can race the finish: the wave
                            // loop exited and will never drain it.
                            // Fence the WAL (the worker released its
                            // lease before announcing) and re-route
                            // from parent custody.
                            let leftovers = coordinator.take_custody(k);
                            if !leftovers.is_empty() {
                                let lease = LogDirLease::preempt(&shard_dirs[k])?;
                                admissions.lock()[k] = lease.epoch();
                                stranded |= redistribute(
                                    &coordinator,
                                    service,
                                    spec,
                                    &shard_dirs[k],
                                    k,
                                    leftovers,
                                    Some(&lease),
                                )?;
                            }
                            let offset = offsets.lock()[k];
                            shard_reports[k] = Some((rep, offset));
                            terminal[k] = true;
                            done += 1;
                        }
                        continue;
                    }
                    Ev::Failed(k, e) => {
                        let point = match &e {
                            XtractError::OrchestratorKilled { point } => point.clone(),
                            other => other.to_string(),
                        };
                        (k, point)
                    }
                    Ev::Lost(k, reason) => (k, reason),
                };
                if terminal[k] {
                    continue;
                }
                // A worker died (or stopped answering): fence its WAL
                // above its lease epoch — any straggling zombie write
                // is now rejected at the commit boundary — journal the
                // new floor, adopt every non-terminal family into a
                // survivor, and journal the brokered placements.
                service.obs.journal.record(Event::WorkerLost {
                    shard: k as u64,
                    reason: point.clone(),
                });
                service.obs.journal.record(Event::ShardDied {
                    shard: k as u64,
                    point: point.clone(),
                });
                service.obs.hub.counter("shard.deaths").add(1);
                service.obs.hub.counter("transport.worker_deaths").add(1);
                let lease = LogDirLease::preempt(&shard_dirs[k])?;
                admissions.lock()[k] = lease.epoch();
                service.obs.journal.record(Event::ShardFenced {
                    shard: k as u64,
                    epoch: lease.epoch(),
                });
                service.obs.hub.counter("transport.fenced").add(1);
                let mut moves: Vec<RecoveryRecord> = vec![RecoveryRecord::ShardEpoch {
                    shard: k as u64,
                    epoch: lease.epoch(),
                }];
                let start_owned: HashSet<FamilyId> = subsets[k].iter().map(|f| f.id).collect();
                stranded |= adopt_orphans(
                    &coordinator,
                    service,
                    spec,
                    &shard_dirs[k],
                    k,
                    &start_owned,
                    &mut orphan_letters,
                    Some(&lease),
                    Some(&mut moves),
                )?;
                root.log.append_batch(&moves)?;
                if first_death.is_none() {
                    first_death = Some((k, point));
                }
                coordinator.mark_dead(k);
                terminal[k] = true;
                done += 1;
            }
            Ok(())
        })();

        if outcome.is_err() {
            // Unwedge handlers parked in idle_wait on behalf of
            // still-connected workers before the scope joins.
            for k in 0..shards {
                let _ = coordinator.take_custody(k);
                coordinator.mark_dead(k);
            }
        }
        // Shut the door: wake the accept loop, then kill any worker
        // still attached so its handler sees EOF. On the success path
        // every worker has already finished (and released its lease)
        // or been fenced; the kill is a no-op for exited processes.
        stop.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&sock_path);
        for c in &mut children {
            let _ = c.kill();
        }
        outcome
    });

    for c in &mut children {
        let _ = c.wait();
    }
    let _ = std::fs::remove_file(&sock_path);
    scope_result?;

    if stranded {
        // No survivor was live to adopt the orphans: surface the first
        // death; every WAL survives for a coordinator restart.
        let (shard, point) = first_death.unwrap_or((0, "unknown".to_string()));
        return Err(XtractError::ShardDied { shard, point });
    }

    merge_reports(
        &mut report,
        shard_reports,
        orphan_letters,
        &coordinator,
        shards,
    );
    root.log.append(&RecoveryRecord::JobCompleted)?;
    Ok(report)
}

// ---------------------------------------------------------------------
// Bench probes (public so the root package's bench target can reach
// them without exposing the wire internals).
// ---------------------------------------------------------------------

/// Measures `n` request/reply round-trips over a real Unix socket pair
/// using the wire framing (a `TakeSteal` / empty-`Steal` exchange), and
/// returns the total elapsed time. The echo peer runs in a thread.
#[doc(hidden)]
pub fn measure_wire_roundtrip(n: usize) -> Result<Duration> {
    let (a, b) = UnixStream::pair().map_err(|e| tfail(format!("socketpair: {e}")))?;
    let obs = Obs::new();
    let echo_obs = obs.clone();
    let echo = std::thread::spawn(move || {
        let mut framed = Framed {
            stream: b,
            obs: echo_obs,
        };
        for _ in 0..n {
            if framed.recv::<WorkerMsg>().is_err() {
                return;
            }
            if framed.send(&CoordMsg::Steal { steal: None }).is_err() {
                return;
            }
        }
    });
    let mut framed = Framed { stream: a, obs };
    let t0 = Instant::now();
    for _ in 0..n {
        framed.send(&WorkerMsg::TakeSteal)?;
        let _: CoordMsg = framed.recv()?;
    }
    let elapsed = t0.elapsed();
    let _ = echo.join();
    Ok(elapsed)
}

/// Measures `n` in-process steal round-trips (a `take_steal` call on
/// the shared coordinator) for comparison against the wire path.
#[doc(hidden)]
pub fn measure_local_roundtrip(n: usize) -> Duration {
    let coordinator = ShardCoordinator::new(xtract_types::ShardPolicy::sharded(2), Obs::new(), 2);
    let t0 = Instant::now();
    for _ in 0..n {
        std::hint::black_box(coordinator.take_steal(0));
    }
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        write_frame(&mut a, b"hello frames").unwrap();
        assert_eq!(read_frame(&mut b).unwrap(), b"hello frames");

        // A corrupted payload byte must fail the CRC, not be returned.
        let payload = b"zombie payload".to_vec();
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        let mut bad = payload.clone();
        bad[3] ^= 0xFF;
        buf.extend_from_slice(&bad);
        a.write_all(&buf).unwrap();
        let err = read_frame(&mut b).unwrap_err();
        assert!(
            matches!(err, XtractError::TransportFailed { ref reason } if reason.contains("crc")),
            "got {err:?}"
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let mut head = Vec::new();
        head.extend_from_slice(&u32::MAX.to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes());
        a.write_all(&head).unwrap();
        let err = read_frame(&mut b).unwrap_err();
        assert!(
            matches!(err, XtractError::TransportFailed { ref reason } if reason.contains("cap")),
            "got {err:?}"
        );
    }

    #[test]
    fn worker_messages_survive_the_wire() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let obs = Obs::new();
        let mut left = Framed {
            stream: a.try_clone().unwrap(),
            obs: obs.clone(),
        };
        let mut right = Framed {
            stream: b.try_clone().unwrap(),
            obs: obs.clone(),
        };
        left.send(&WorkerMsg::Hello {
            shard: 3,
            pid: 4242,
            epoch: 7,
        })
        .unwrap();
        match right.recv::<WorkerMsg>().unwrap() {
            WorkerMsg::Hello { shard, pid, epoch } => {
                assert_eq!((shard, pid, epoch), (3, 4242, 7));
            }
            other => panic!("decoded {other:?}"),
        }
        right.send(&CoordMsg::Welcome { epoch: 7 }).unwrap();
        match left.recv::<CoordMsg>().unwrap() {
            CoordMsg::Welcome { epoch } => assert_eq!(epoch, 7),
            other => panic!("decoded {other:?}"),
        }
        assert_eq!(obs.hub.counter_value("transport.frames_sent", None), 2);
        assert_eq!(obs.hub.counter_value("transport.frames_recv", None), 2);
        drop((a, b));
    }
}
