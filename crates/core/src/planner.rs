//! Dynamic extraction planning — the `next(E, g)` of §2.2/§3.
//!
//! "Xtract dequeues each group and identifies an initial set of extractors
//! to be applied ... Based on the results, Xtract determines if additional
//! steps should be added to the extraction plan."
//!
//! An [`ExtractionPlan`] is a per-family work list: extractors still to
//! run, extractors completed, and the type discoveries that extended the
//! plan. Termination is guaranteed: an extractor kind is never scheduled
//! twice for the same family, and the kind set is finite — property-tested
//! below.

use std::collections::BTreeSet;
use xtract_types::{ExtractorKind, Family, FileType};

/// The evolving plan for one family.
///
/// ```
/// use xtract_core::ExtractionPlan;
/// use xtract_types::{ExtractorKind, FileType};
///
/// let mut plan = ExtractionPlan::fixed(&[ExtractorKind::Keyword]);
/// assert_eq!(plan.next(), Some(ExtractorKind::Keyword));
/// // The keyword extractor discovers tabular content (§5.8.2)...
/// plan.complete(ExtractorKind::Keyword, &[("/f.txt".into(), FileType::Tabular)]);
/// // ...so tabular + null-value are appended dynamically.
/// assert_eq!(plan.next(), Some(ExtractorKind::Tabular));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractionPlan {
    pending: BTreeSet<ExtractorKind>,
    completed: BTreeSet<ExtractorKind>,
    /// Files whose type was refined mid-plan: `(path, new type)`.
    pub discoveries: Vec<(String, FileType)>,
}

impl ExtractionPlan {
    /// Seeds the plan from a family's crawl-time type hints (§3: "an
    /// initial set of extractors ... as identified by the crawler's
    /// grouping function").
    pub fn for_family(family: &Family) -> Self {
        let mut pending = BTreeSet::new();
        for file in &family.files {
            pending.extend(ExtractorKind::initial_plan(file.hint).iter().copied());
        }
        Self {
            pending,
            completed: BTreeSet::new(),
            discoveries: Vec::new(),
        }
    }

    /// Seeds a plan from explicit kinds (used by the scaling benches that
    /// pin a single extractor).
    pub fn fixed(kinds: &[ExtractorKind]) -> Self {
        Self {
            pending: kinds.iter().copied().collect(),
            completed: BTreeSet::new(),
            discoveries: Vec::new(),
        }
    }

    /// The next extractor to run, or `None` when the plan is complete
    /// (`next(E, g) = ⊥`, §2.2).
    pub fn next(&self) -> Option<ExtractorKind> {
        self.pending.iter().next().copied()
    }

    /// Marks `kind` finished and folds in the type discoveries its output
    /// reported, extending the plan with any extractor not yet run.
    pub fn complete(&mut self, kind: ExtractorKind, discovered: &[(String, FileType)]) {
        self.pending.remove(&kind);
        self.completed.insert(kind);
        for (path, t) in discovered {
            self.discoveries.push((path.clone(), *t));
            for e in ExtractorKind::initial_plan(*t) {
                if !self.completed.contains(e) {
                    self.pending.insert(*e);
                }
            }
        }
    }

    /// Marks `kind` finished without discoveries.
    pub fn complete_simple(&mut self, kind: ExtractorKind) {
        self.complete(kind, &[]);
    }

    /// True when nothing remains.
    pub fn is_done(&self) -> bool {
        self.pending.is_empty()
    }

    /// Extractors already run.
    pub fn completed(&self) -> impl Iterator<Item = ExtractorKind> + '_ {
        self.completed.iter().copied()
    }

    /// Number of extractor invocations so far plus pending — total plan
    /// length (Table 3: "each extraction plan for a file may contain up to
    /// five extractors").
    pub fn len(&self) -> usize {
        self.pending.len() + self.completed.len()
    }

    /// True if the plan never had work.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xtract_types::{EndpointId, FamilyId, FileRecord, Group, GroupId};

    fn family(hints: &[FileType]) -> Family {
        let files: Vec<FileRecord> = hints
            .iter()
            .enumerate()
            .map(|(i, t)| FileRecord::new(format!("/f{i}"), 1, EndpointId::new(0), *t))
            .collect();
        let g = Group::new(
            GroupId::new(0),
            files.iter().map(|f| f.path.clone()).collect(),
        );
        Family::new(FamilyId::new(0), files, vec![g], EndpointId::new(0))
    }

    #[test]
    fn initial_plan_unions_file_types() {
        let plan = ExtractionPlan::for_family(&family(&[FileType::Tabular, FileType::FreeText]));
        let kinds: BTreeSet<_> = std::iter::from_fn({
            let mut p = plan.clone();
            move || {
                let k = p.next()?;
                p.complete_simple(k);
                Some(k)
            }
        })
        .collect();
        assert!(kinds.contains(&ExtractorKind::Keyword));
        assert!(kinds.contains(&ExtractorKind::Tabular));
        assert!(kinds.contains(&ExtractorKind::NullValue));
    }

    #[test]
    fn discovery_extends_plan() {
        let mut plan = ExtractionPlan::for_family(&family(&[FileType::FreeText]));
        assert_eq!(plan.next(), Some(ExtractorKind::Keyword));
        plan.complete(
            ExtractorKind::Keyword,
            &[("/f0".to_string(), FileType::Tabular)],
        );
        // Tabular + NullValue appended (§5.8.2's dual-pipeline files).
        let mut rest = Vec::new();
        while let Some(k) = plan.next() {
            rest.push(k);
            plan.complete_simple(k);
        }
        assert_eq!(rest, vec![ExtractorKind::Tabular, ExtractorKind::NullValue]);
        assert!(plan.is_done());
        assert_eq!(plan.discoveries.len(), 1);
    }

    #[test]
    fn completed_extractor_is_never_rescheduled() {
        let mut plan = ExtractionPlan::fixed(&[ExtractorKind::Keyword]);
        plan.complete(
            ExtractorKind::Keyword,
            // Discovery pointing back at free text must not re-add Keyword.
            &[("/f0".to_string(), FileType::FreeText)],
        );
        assert!(plan.is_done(), "keyword was rescheduled: {plan:?}");
    }

    #[test]
    fn plan_len_counts_both_sides() {
        let mut plan = ExtractionPlan::fixed(&[ExtractorKind::Keyword, ExtractorKind::Bert]);
        assert_eq!(plan.len(), 2);
        let k = plan.next().unwrap();
        plan.complete_simple(k);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.completed().count(), 1);
    }

    proptest! {
        /// Whatever discoveries extractors report, a plan terminates in at
        /// most |ExtractorKind::ALL| steps.
        #[test]
        fn plans_always_terminate(
            hints in proptest::collection::vec(0usize..FileType::ALL.len(), 1..6),
            discoveries in proptest::collection::vec(0usize..FileType::ALL.len(), 0..32),
        ) {
            let types: Vec<FileType> = hints.iter().map(|&i| FileType::ALL[i]).collect();
            let mut plan = ExtractionPlan::for_family(&family(&types));
            let mut disc_iter = discoveries.into_iter();
            let mut steps = 0;
            while let Some(k) = plan.next() {
                steps += 1;
                prop_assert!(steps <= ExtractorKind::ALL.len(), "non-terminating plan");
                // Report 0–2 discoveries per completion.
                let d: Vec<(String, FileType)> = disc_iter
                    .by_ref()
                    .take(2)
                    .map(|i| ("/x".to_string(), FileType::ALL[i]))
                    .collect();
                plan.complete(k, &d);
            }
            prop_assert!(plan.is_done());
        }
    }
}
