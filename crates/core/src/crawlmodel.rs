//! The calibrated crawl-time model behind Fig. 4 and §5.8.1.
//!
//! Crawl wall time decomposes into a parallelizable listing component and
//! a shared network (NIC) component on the crawl host:
//!
//! ```text
//! T(w) = directories × RTT / w  +  entries / NIC_rate
//! ```
//!
//! The first term is the per-directory Globus listing round trips divided
//! across `w` workers; the second is the host-wide cost of receiving and
//! parsing listing payloads, which §5.4 identifies as the bottleneck past
//! 16 workers ("network congestion on the instance caused by large file
//! lists simultaneously returning from Globus"). With the MDF tree shape
//! this reproduces the paper's 50 min @ 2 workers → ≈25 min @ 16–32
//! workers curve.

use xtract_sim::calibration::crawl;
use xtract_sim::SimTime;

/// A crawlable tree's shape, as the model sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrawlModel {
    /// Directories to list.
    pub directories: u64,
    /// Total entries returned across listings (files + dirs).
    pub entries: u64,
    /// Families/groups the crawl will emit (for progress curves).
    pub families: u64,
}

impl CrawlModel {
    /// Builds from generated-repository statistics.
    pub fn from_stats(directories: u64, files: u64, groups: u64) -> Self {
        Self {
            directories,
            entries: files + directories,
            families: groups,
        }
    }

    /// Serial listing work (one worker), seconds.
    pub fn serial_listing_s(&self) -> f64 {
        self.directories as f64 * crawl::GLOBUS_LIST_RTT_S
            + self.entries as f64 * crawl::PER_ENTRY_S
    }

    /// Shared NIC floor, seconds.
    pub fn nic_floor_s(&self) -> f64 {
        self.entries as f64 / crawl::HOST_NIC_ENTRIES_PER_S
    }

    /// Total crawl time with `workers` threads.
    pub fn completion_time(&self, workers: usize) -> SimTime {
        assert!(workers > 0);
        SimTime::from_secs(self.serial_listing_s() / workers as f64 + self.nic_floor_s())
    }

    /// Families emitted by time `t` (progress is effectively linear: the
    /// work queue stays saturated for a breadth-first crawl of a bushy
    /// tree).
    pub fn families_at(&self, workers: usize, t: SimTime) -> u64 {
        let total = self.completion_time(workers).as_secs();
        if total <= 0.0 {
            return self.families;
        }
        let frac = (t.as_secs() / total).clamp(0.0, 1.0);
        (self.families as f64 * frac) as u64
    }

    /// The instant the `i`-th family (0-based) becomes available to the
    /// Xtract service — the asynchronous hand-off of §5.8.1 ("The Xtract
    /// service begins extracting data within 3 seconds of the crawler
    /// being initiated").
    pub fn family_ready_time(&self, workers: usize, i: u64) -> SimTime {
        let total = self.completion_time(workers).as_secs();
        if self.families == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs(total * (i as f64 + 1.0) / self.families as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The MDF crawl shape: 2.3 M files in ≈31 k directories (≈74
    /// entries/dir, matching the generator).
    fn mdf_shape() -> CrawlModel {
        CrawlModel::from_stats(31_000, 2_300_000, 2_300_000)
    }

    #[test]
    fn two_workers_take_about_fifty_minutes() {
        let t = mdf_shape().completion_time(2).as_secs() / 60.0;
        assert!(
            (45.0..55.0).contains(&t),
            "2 workers: {t:.1} min (paper ≈50)"
        );
    }

    #[test]
    fn sixteen_workers_take_about_25_minutes() {
        let m = mdf_shape();
        let t16 = m.completion_time(16).as_secs() / 60.0;
        assert!(
            (21.0..28.0).contains(&t16),
            "16 workers: {t16:.1} min (paper ≈25)"
        );
        // Minimal benefit past 16 (§5.4).
        let t32 = m.completion_time(32).as_secs() / 60.0;
        assert!(t16 - t32 < 2.0, "16→32 saved {:.1} min", t16 - t32);
    }

    #[test]
    fn monotone_in_workers() {
        let m = mdf_shape();
        let times: Vec<f64> = [1, 2, 4, 8, 16, 32]
            .iter()
            .map(|&w| m.completion_time(w).as_secs())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn progress_is_monotone_and_complete() {
        let m = mdf_shape();
        let total = m.completion_time(8);
        assert_eq!(m.families_at(8, SimTime::ZERO), 0);
        assert_eq!(m.families_at(8, total), m.families);
        let half = SimTime::from_secs(total.as_secs() / 2.0);
        let at_half = m.families_at(8, half);
        assert!((at_half as f64 / m.families as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn first_family_arrives_promptly_at_scale() {
        // §5.8.1: extraction starts within seconds of crawl start.
        let m = mdf_shape();
        let first = m.family_ready_time(16, 0);
        assert!(first.as_secs() < 3.0, "first family at {first}");
    }

    #[test]
    fn full_mdf_crawl_matches_26_minutes() {
        // §5.8.1: "We crawl the entire repository in 26.3 minutes using 16
        // parallel crawlers" (2.5 M groups over the full tree).
        let m = CrawlModel::from_stats(33_500, 2_500_000, 2_500_000);
        let t = m.completion_time(16).as_secs() / 60.0;
        assert!((22.0..30.0).contains(&t), "16-crawler full MDF: {t:.1} min");
    }
}
