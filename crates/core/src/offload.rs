//! Offloading policies (§4.3.3).
//!
//! "Xtract can offload tasks to other idle resources in order to maximize
//! total task throughput. ... These rules are implemented as
//! user-configurable modes: offload n bytes (ONB) and random (RAND)."
//!
//! * **ONB(max)** — when the home endpoint is saturated, families larger
//!   than the byte limit move to the secondary endpoint.
//! * **ONB(min)** — same, for families *smaller* than the limit.
//! * **RAND(p)** — a fixed percentage of families, chosen at random, move
//!   (the Table 2 policy: 0 / 10 / 20 % from Midway to Jetstream).
//!
//! Per §4.3.3, transfers are initiated before extractors ship: the
//! decision is made once per family, up front.

use rand::rngs::SmallRng;
use rand::Rng;
use xtract_types::{EndpointId, Family, OffloadMode};

/// Where a family should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Stay at the home (primary) compute endpoint.
    Home,
    /// Move to the secondary endpoint.
    Offload,
}

/// A stateful offload decider for one job.
#[derive(Debug)]
pub struct Offloader {
    mode: OffloadMode,
    home: EndpointId,
    secondary: Option<EndpointId>,
    rng: SmallRng,
    /// Is the home endpoint currently saturated? (ONB only applies then.)
    pub home_saturated: bool,
    decisions: u64,
    offloaded: u64,
}

impl Offloader {
    /// A decider routing between `home` and `secondary` under `mode`.
    /// `seed` drives RAND reproducibly.
    pub fn new(
        mode: OffloadMode,
        home: EndpointId,
        secondary: Option<EndpointId>,
        seed: u64,
    ) -> Self {
        use rand::SeedableRng;
        Self {
            mode,
            home,
            secondary,
            rng: SmallRng::seed_from_u64(seed),
            home_saturated: true,
            decisions: 0,
            offloaded: 0,
        }
    }

    /// Decides a family's placement and returns the endpoint to run on.
    pub fn place(&mut self, family: &Family) -> EndpointId {
        self.place_decision(family).0
    }

    /// Like [`Self::place`], but also returns the *typed* decision so the
    /// orchestrator can distinguish "actively offload to the secondary"
    /// from "no active decision" ([`Placement::Home`]). The distinction
    /// matters for non-home-local families: `Offload` is an instruction
    /// to move the family to the secondary, while `Home` means the
    /// policy expressed no preference and source locality should stand —
    /// the home endpoint is never a *forced* destination, because pulling
    /// a family off the endpoint that already holds its bytes is pure
    /// added transfer with no §4.3.3 rule asking for it.
    pub fn place_decision(&mut self, family: &Family) -> (EndpointId, Placement) {
        self.decisions += 1;
        let Some(secondary) = self.secondary else {
            return (self.home, Placement::Home);
        };
        let placement = match self.mode {
            OffloadMode::None => Placement::Home,
            OffloadMode::OnbMax { limit_bytes } => {
                if self.home_saturated && family.total_bytes() > limit_bytes {
                    Placement::Offload
                } else {
                    Placement::Home
                }
            }
            OffloadMode::OnbMin { limit_bytes } => {
                if self.home_saturated && family.total_bytes() < limit_bytes {
                    Placement::Offload
                } else {
                    Placement::Home
                }
            }
            OffloadMode::Rand { percent } => {
                if self.rng.gen_range(0.0..100.0) < percent {
                    Placement::Offload
                } else {
                    Placement::Home
                }
            }
        };
        match placement {
            Placement::Home => (self.home, Placement::Home),
            Placement::Offload => {
                self.offloaded += 1;
                (secondary, Placement::Offload)
            }
        }
    }

    /// Fraction of decisions that offloaded, in percent.
    pub fn offload_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.offloaded as f64 / self.decisions as f64 * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtract_types::{FamilyId, FileRecord, FileType, Group, GroupId};

    fn family(bytes: u64) -> Family {
        let f = FileRecord::new("/f", bytes, EndpointId::new(0), FileType::FreeText);
        let g = Group::new(GroupId::new(0), vec![f.path.clone()]);
        Family::new(FamilyId::new(0), vec![f], vec![g], EndpointId::new(0))
    }

    const HOME: EndpointId = EndpointId(10);
    const SEC: EndpointId = EndpointId(20);

    #[test]
    fn none_never_offloads() {
        let mut o = Offloader::new(OffloadMode::None, HOME, Some(SEC), 1);
        for _ in 0..100 {
            assert_eq!(o.place(&family(1 << 30)), HOME);
        }
        assert_eq!(o.offload_rate(), 0.0);
    }

    #[test]
    fn rand_hits_the_requested_rate() {
        let mut o = Offloader::new(OffloadMode::Rand { percent: 10.0 }, HOME, Some(SEC), 42);
        let n = 100_000;
        let mut off = 0;
        for _ in 0..n {
            if o.place(&family(1)) == SEC {
                off += 1;
            }
        }
        let rate = off as f64 / n as f64 * 100.0;
        assert!((rate - 10.0).abs() < 0.5, "rate {rate}%");
        assert!((o.offload_rate() - rate).abs() < 1e-9);
    }

    #[test]
    fn onb_max_moves_big_families_when_saturated() {
        let mut o = Offloader::new(
            OffloadMode::OnbMax { limit_bytes: 1000 },
            HOME,
            Some(SEC),
            1,
        );
        assert_eq!(o.place(&family(2000)), SEC);
        assert_eq!(o.place(&family(500)), HOME);
        o.home_saturated = false;
        assert_eq!(o.place(&family(2000)), HOME); // idle home keeps work
    }

    #[test]
    fn onb_min_moves_small_families() {
        let mut o = Offloader::new(
            OffloadMode::OnbMin { limit_bytes: 1000 },
            HOME,
            Some(SEC),
            1,
        );
        assert_eq!(o.place(&family(10)), SEC);
        assert_eq!(o.place(&family(5000)), HOME);
    }

    #[test]
    fn missing_secondary_disables_offload() {
        let mut o = Offloader::new(OffloadMode::Rand { percent: 100.0 }, HOME, None, 1);
        assert_eq!(o.place(&family(1)), HOME);
    }

    #[test]
    fn place_decision_types_the_choice() {
        let mut o = Offloader::new(OffloadMode::Rand { percent: 100.0 }, HOME, Some(SEC), 1);
        assert_eq!(o.place_decision(&family(1)), (SEC, Placement::Offload));
        let mut o = Offloader::new(OffloadMode::Rand { percent: 0.0 }, HOME, Some(SEC), 1);
        assert_eq!(o.place_decision(&family(1)), (HOME, Placement::Home));
        // No secondary: always an inactive Home decision, never Offload.
        let mut o = Offloader::new(OffloadMode::Rand { percent: 100.0 }, HOME, None, 1);
        assert_eq!(o.place_decision(&family(1)), (HOME, Placement::Home));
        assert_eq!(o.offload_rate(), 0.0);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let run = |seed| {
            let mut o = Offloader::new(OffloadMode::Rand { percent: 50.0 }, HOME, Some(SEC), seed);
            (0..64)
                .map(|_| o.place(&family(1)) == SEC)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
