//! Sharded orchestrator scale-out: one job, N wave loops.
//!
//! A sharded run partitions the job's family plan across `N` shard
//! workers (§5.8's scale-out direction: the single orchestrator wave
//! loop is the bottleneck once crawling and extraction parallelize).
//! Each shard runs the *unmodified* wave loop over its own subset,
//! against its own WAL segment subdirectory (`wal/shard-{k}/`, guarded
//! by a per-shard [`LogDirLease`]), while a [`ShardCoordinator`] tracks
//! heartbeats and drives two recovery paths:
//!
//! * **work stealing** — a shard that lags past a quantile-derived
//!   threshold (or simply goes idle while a sibling still holds a
//!   backlog) triggers a migration: the donor journals a
//!   [`RecoveryRecord::FamilyMigrated`] out-record *before* handing the
//!   family over, and the recipient journals the symmetric in-record
//!   when it takes the family in — replaying either log never
//!   double-dispatches a `(family, extractor)` step;
//! * **shard death** — a shard that dies mid-run (its scheduled
//!   [`xtract_types::ShardCrash`] fired, or a real fault surfaced) is
//!   adopted by the survivors: the coordinator re-acquires the dead
//!   shard's lapsed lease, replays its WAL, and migrates every
//!   non-terminal family to the least-loaded healthy shard. Only when
//!   *no* survivor remains does the job surface
//!   [`XtractError::ShardDied`]; `resume_job` then replays every
//!   shard's log and re-adopts the orphans.
//!
//! The root WAL (at the job's log dir itself) journals the crawl and
//! the full plan before any shard fans out, so family identity is
//! pinned across resumes exactly as in the single-loop path.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use xtract_datafabric::Token;
use xtract_obs::{Event, Phase, SpanUnion};
use xtract_types::{DeadLetter, Family, FamilyId, JobSpec, PartitionerKind, Result, XtractError};

use crate::recovery::{spec_fingerprint, LogDirLease, MigratedStep, RecoveryLog, RecoveryRecord};
use crate::service::{JobReport, XtractService};
use crate::tenancy::TenantCtx;

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

/// Disperses a family id onto a shard — the same splitmix64 finalizer
/// the search index uses for document dispersal, so sequential ids
/// (the allocator hands them out in crawl order) spread evenly.
pub fn shard_of(family: FamilyId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut z = family.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

/// Maps every family of a plan onto a shard. Implementations must be
/// *deterministic*: a resumed job recomputes the base assignment from
/// the replayed plan and applies journaled migrations on top, so the
/// same ids must land on the same shards across runs.
pub trait Partitioner: Send + Sync {
    /// One shard index (`< shards`) per id, in order.
    fn assign(&self, ids: &[FamilyId], shards: usize) -> Vec<usize>;
    /// Stable name for reports and logs.
    fn name(&self) -> &'static str;
}

/// Stateless hash partitioning via [`shard_of`].
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn assign(&self, ids: &[FamilyId], shards: usize) -> Vec<usize> {
        ids.iter().map(|&id| shard_of(id, shards)).collect()
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Contiguous range partitioning: ids are rank-sorted and cut into
/// `shards` blocks whose sizes differ by at most one. Keeps
/// crawl-adjacent families together (better staging locality) at the
/// cost of hash's statistical balance under skewed file sizes.
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn assign(&self, ids: &[FamilyId], shards: usize) -> Vec<usize> {
        let n = ids.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (ids[i].raw(), i));
        let base = n / shards.max(1);
        let extra = n % shards.max(1);
        let mut out = vec![0usize; n];
        let mut rank = 0usize;
        for shard in 0..shards {
            let len = base + usize::from(shard < extra);
            for _ in 0..len {
                out[order[rank]] = shard;
                rank += 1;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "range"
    }
}

/// The partitioner a [`PartitionerKind`] configures.
pub fn build_partitioner(kind: PartitionerKind) -> Box<dyn Partitioner> {
    match kind {
        PartitionerKind::Hash => Box::new(HashPartitioner),
        PartitionerKind::Range => Box::new(RangePartitioner),
    }
}

// ---------------------------------------------------------------------------
// Coordinator state
// ---------------------------------------------------------------------------

/// A family in flight between shards: the donor's planned view plus
/// everything the recipient needs for exactly-once adoption. Serde so
/// the cross-process transport ([`crate::transport`]) can carry it over
/// the coordinator socket unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Migrant {
    /// The family, as the donor had it planned (origin view).
    pub family: Family,
    /// Steps the family completed before migrating.
    pub steps: Vec<MigratedStep>,
    /// Retry attempts already charged against the family.
    pub charges: u32,
    /// Donor shard.
    pub from: u64,
}

/// A pending steal directive against a donor shard: at its next wave
/// boundary it donates up to `max` eligible families to shard `to`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct StealRequest {
    pub to: usize,
    pub max: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotStatus {
    /// The shard's wave loop is live.
    Running,
    /// The shard drained its subset and is parked in
    /// [`ShardCtl::idle_wait`], available for adoptions.
    Idle,
    /// The shard's runner returned its report.
    Done,
    /// The shard died and its orphans were processed.
    Dead,
}

struct Slot {
    status: SlotStatus,
    /// Non-terminal families, from the last heartbeat.
    pending: u64,
    /// Wave number from the last heartbeat.
    wave: u64,
    last_beat: Instant,
    steal: Option<StealRequest>,
    /// Delivered migrants the shard has not drained yet.
    inbox: Vec<Migrant>,
    /// Drained migrants whose in-record is not yet durable; the parent
    /// redistributes these if the shard dies before acknowledging.
    unacked: Vec<Migrant>,
    /// Families whose adoption this shard acknowledged (its in-record
    /// is durable). Never cleared: a dead donor's WAL can then be
    /// audited for hand-overs that left no trace anywhere.
    adopted: HashSet<FamilyId>,
}

impl Slot {
    fn is_live(&self) -> bool {
        matches!(self.status, SlotStatus::Running | SlotStatus::Idle)
    }

    fn custody_empty(&self) -> bool {
        self.inbox.is_empty() && self.unacked.is_empty()
    }
}

struct Inner {
    slots: Vec<Slot>,
    /// Observed wave durations (seconds) across all shards; the lag
    /// threshold derives from their quantile.
    wave_samples: Vec<f64>,
    stolen: u64,
    deaths: u64,
}

/// Shared coordination state for one sharded run: per-shard heartbeat
/// and progress slots, the steal scheduler, and the migration mailbox.
pub(crate) struct ShardCoordinator {
    inner: Mutex<Inner>,
    cv: Condvar,
    policy: xtract_types::ShardPolicy,
    obs: xtract_obs::Obs,
}

/// What an idle shard should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IdleVerdict {
    /// Migrants landed in the inbox: drain them and keep looping.
    Adopt,
    /// Every shard is drained and no migration is in flight: break out
    /// of the wave loop and finish.
    Finished,
}

impl ShardCoordinator {
    pub fn new(policy: xtract_types::ShardPolicy, obs: xtract_obs::Obs, shards: usize) -> Self {
        let now = Instant::now();
        Self {
            inner: Mutex::new(Inner {
                slots: (0..shards)
                    .map(|_| Slot {
                        status: SlotStatus::Running,
                        pending: 0,
                        wave: 0,
                        last_beat: now,
                        steal: None,
                        inbox: Vec::new(),
                        unacked: Vec::new(),
                        adopted: HashSet::new(),
                    })
                    .collect(),
                wave_samples: Vec::new(),
                stolen: 0,
                deaths: 0,
            }),
            cv: Condvar::new(),
            policy,
            obs,
        }
    }

    /// Records a shard's wave-top heartbeat and runs a steal scan.
    pub fn heartbeat(&self, shard: usize, wave: u64, pending: u64) {
        let mut inner = self.inner.lock();
        // Terminal slots stay terminal: a cross-process zombie's ping
        // can race its own death handling (a heartbeat-timeout false
        // positive fences a still-live worker), and must not resurrect
        // a slot the coordinator already adopted.
        if matches!(
            inner.slots[shard].status,
            SlotStatus::Done | SlotStatus::Dead
        ) {
            return;
        }
        let now = Instant::now();
        let sample = {
            let slot = &inner.slots[shard];
            // One completed wave between consecutive heartbeats.
            (wave > slot.wave && slot.wave > 0)
                .then(|| now.duration_since(slot.last_beat).as_secs_f64())
        };
        if let Some(sample) = sample {
            if inner.wave_samples.len() < 4096 {
                inner.wave_samples.push(sample);
            }
        }
        let slot = &mut inner.slots[shard];
        slot.status = SlotStatus::Running;
        slot.wave = wave.max(slot.wave);
        slot.pending = pending;
        slot.last_beat = now;
        self.obs.journal.record(Event::ShardHeartbeat {
            shard: shard as u64,
            wave,
            pending,
        });
        self.obs
            .hub
            .counter_with("shard.heartbeats", Some(&format!("shard-{shard}")))
            .add(1);
        self.scan_locked(&mut inner, now);
        self.cv.notify_all();
    }

    /// Takes and clears the shard's pending steal directive.
    pub fn take_steal(&self, shard: usize) -> Option<StealRequest> {
        self.inner.lock().slots[shard].steal.take()
    }

    /// Drains the shard's inbox. Drained migrants stay in custody until
    /// [`Self::ack`] confirms their in-records are durable.
    pub fn drain(&self, shard: usize) -> Vec<Migrant> {
        let mut inner = self.inner.lock();
        let slot = &mut inner.slots[shard];
        let items = std::mem::take(&mut slot.inbox);
        slot.unacked.extend(items.iter().cloned());
        items
    }

    /// Confirms the shard journaled in-records for these families.
    pub fn ack(&self, shard: usize, families: &[FamilyId]) {
        let mut inner = self.inner.lock();
        let slot = &mut inner.slots[shard];
        slot.unacked.retain(|m| !families.contains(&m.family.id));
        slot.adopted.extend(families.iter().copied());
        self.cv.notify_all();
    }

    /// True when any slot holds the family — delivered, in unacked
    /// custody, or acknowledged. Used when auditing a dead donor's
    /// out-records for hand-overs that vanished in flight.
    pub fn knows_any(&self, family: FamilyId) -> bool {
        let inner = self.inner.lock();
        inner.slots.iter().any(|s| {
            s.adopted.contains(&family)
                || s.inbox.iter().any(|m| m.family.id == family)
                || s.unacked.iter().any(|m| m.family.id == family)
        })
    }

    /// Hands a migrant to `to`'s inbox and journals the migration.
    ///
    /// If `to` stopped being live since the directive was issued (its
    /// death raced the donor's hand-over), the delivery redirects to
    /// the least-loaded live slot — falling back to the donor itself,
    /// which is live by definition while donating. Resume resolution is
    /// presence-first (the recipient's durable in-record decides
    /// ownership), so the out-record's stale `to` is harmless.
    pub fn deliver(&self, to: usize, migrant: Migrant) {
        let mut inner = self.inner.lock();
        let to = if inner.slots[to].is_live() {
            to
        } else {
            inner
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_live())
                .min_by_key(|(j, s)| (s.pending, *j))
                .map(|(j, _)| j)
                .unwrap_or(migrant.from as usize)
        };
        self.obs.journal.record(Event::FamilyMigrated {
            family: migrant.family.id,
            from: migrant.from,
            to: to as u64,
        });
        self.obs.hub.counter("shard.stolen").add(1);
        inner.stolen += 1;
        inner.slots[to].inbox.push(migrant);
        self.cv.notify_all();
    }

    /// The live (running or idle) shard with the smallest pending load,
    /// excluding `not` — the adoption and steal target.
    pub fn least_loaded_live(&self, not: Option<usize>) -> Option<usize> {
        let inner = self.inner.lock();
        inner
            .slots
            .iter()
            .enumerate()
            .filter(|(k, s)| s.is_live() && Some(*k) != not)
            .min_by_key(|(k, s)| (s.pending, *k))
            .map(|(k, _)| k)
    }

    pub fn mark_done(&self, shard: usize) {
        let mut inner = self.inner.lock();
        let slot = &mut inner.slots[shard];
        slot.status = SlotStatus::Done;
        slot.steal = None;
        slot.pending = 0;
        self.cv.notify_all();
    }

    pub fn mark_dead(&self, shard: usize) {
        let mut inner = self.inner.lock();
        let slot = &mut inner.slots[shard];
        slot.status = SlotStatus::Dead;
        slot.steal = None;
        slot.pending = 0;
        inner.deaths += 1;
        self.cv.notify_all();
    }

    /// Everything delivered to the shard that it never acknowledged —
    /// redistributed by the parent when the shard dies (or finishes
    /// with a stale delivery it will never drain).
    pub fn take_custody(&self, shard: usize) -> Vec<Migrant> {
        let mut inner = self.inner.lock();
        let slot = &mut inner.slots[shard];
        let mut items = std::mem::take(&mut slot.inbox);
        items.extend(std::mem::take(&mut slot.unacked));
        items
    }

    pub fn stolen(&self) -> u64 {
        self.inner.lock().stolen
    }

    pub fn deaths(&self) -> u64 {
        self.inner.lock().deaths
    }

    /// Parks an idle shard until either migrants arrive or the whole
    /// run is drained. Runs a steal scan on every wake-up so idle-pull
    /// stealing fires even while every runner is blocked here or deep
    /// in a slow wave.
    pub fn idle_wait(&self, shard: usize) -> IdleVerdict {
        let mut inner = self.inner.lock();
        {
            let slot = &mut inner.slots[shard];
            slot.status = SlotStatus::Idle;
            slot.steal = None;
            slot.pending = 0;
            slot.last_beat = Instant::now();
        }
        self.cv.notify_all();
        loop {
            if !inner.slots[shard].inbox.is_empty() {
                // Re-arm the heartbeat deadline on the idle → running
                // transition: the shard was exempt from the timeout
                // while parked, and the next beat is a full wave away.
                inner.slots[shard].status = SlotStatus::Running;
                inner.slots[shard].last_beat = Instant::now();
                return IdleVerdict::Adopt;
            }
            if self.finished_locked(&inner) {
                return IdleVerdict::Finished;
            }
            let now = Instant::now();
            self.scan_locked(&mut inner, now);
            self.cv.wait_for(&mut inner, Duration::from_millis(20));
        }
    }

    /// True when no shard can produce further work: every slot is
    /// idle, done, or dead, and no migrant is awaiting adoption.
    fn finished_locked(&self, inner: &Inner) -> bool {
        inner
            .slots
            .iter()
            .all(|s| s.status != SlotStatus::Running && s.custody_empty())
    }

    /// The steal scheduler. Two triggers, both one-directive-per-donor:
    ///
    /// * *quantile lag* — a running shard whose current wave has aged
    ///   past `quantile(lag_quantile) * lag_multiplier` of the observed
    ///   wave durations donates half its pending families to the least
    ///   loaded live sibling;
    /// * *idle pull* — an idle shard pulls half the backlog of the most
    ///   loaded running shard holding at least `steal_min_pending`.
    fn scan_locked(&self, inner: &mut Inner, now: Instant) {
        let threshold_s = if inner.wave_samples.len() as u64 >= self.policy.min_lag_samples {
            let mut sorted = inner.wave_samples.clone();
            sorted.sort_by(f64::total_cmp);
            let idx = ((self.policy.lag_quantile * (sorted.len() - 1) as f64).round() as usize)
                .min(sorted.len() - 1);
            Some(sorted[idx] * self.policy.lag_multiplier)
        } else {
            None
        };
        // Quantile lag.
        if let Some(threshold) = threshold_s {
            for k in 0..inner.slots.len() {
                let slot = &inner.slots[k];
                if slot.status != SlotStatus::Running || slot.steal.is_some() || slot.pending < 2 {
                    continue;
                }
                let age = now.duration_since(slot.last_beat).as_secs_f64();
                if age <= threshold {
                    continue;
                }
                let to = inner
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(j, s)| *j != k && s.is_live())
                    .min_by_key(|(j, s)| (s.pending, *j))
                    .map(|(j, _)| j);
                if let Some(to) = to {
                    let max = (inner.slots[k].pending / 2).max(1) as usize;
                    self.obs.journal.record(Event::ShardLagging {
                        shard: k as u64,
                        lag_ms: (age * 1000.0) as u64,
                        threshold_ms: (threshold * 1000.0) as u64,
                    });
                    self.obs.hub.counter("shard.lagging").add(1);
                    inner.slots[k].steal = Some(StealRequest { to, max });
                }
            }
        }
        // Idle pull.
        let idle = inner
            .slots
            .iter()
            .position(|s| s.status == SlotStatus::Idle && s.custody_empty());
        if let Some(to) = idle {
            let victim = inner
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.status == SlotStatus::Running
                        && s.steal.is_none()
                        && s.pending >= self.policy.steal_min_pending
                })
                .max_by_key(|(j, s)| (s.pending, usize::MAX - *j))
                .map(|(j, _)| j);
            if let Some(k) = victim {
                let max = (inner.slots[k].pending / 2).max(1) as usize;
                inner.slots[k].steal = Some(StealRequest { to, max });
            }
        }
    }

    /// Blocks until a *running* shard's heartbeat goes silent for longer
    /// than `budget`, returning the expired slots — or returns empty
    /// once every slot is terminal (done or dead). Slots listed in
    /// `muted` are skipped: the caller has already been told about them
    /// and is mid-recovery (they stay `Running` until their orphans are
    /// placed, so idle siblings cannot conclude the run finished under
    /// them).
    ///
    /// Condvar-driven, not a polling grid: a beat re-arms the deadline
    /// and wakes the wait, a status change re-evaluates immediately, and
    /// the sleep never overshoots the nearest live deadline — so a
    /// silent death is detected within one heartbeat budget of the last
    /// beat (plus scheduler noise). Idle slots are exempt: a parked
    /// shard's handler is blocked in [`Self::idle_wait`] and cannot
    /// beat; a dead idle *process* surfaces as its connection's EOF
    /// instead.
    pub fn await_timeout(&self, budget: Duration, muted: &[usize]) -> Vec<usize> {
        let mut inner = self.inner.lock();
        loop {
            if inner.slots.iter().all(|s| !s.is_live()) {
                return Vec::new();
            }
            let now = Instant::now();
            let expired: Vec<usize> = inner
                .slots
                .iter()
                .enumerate()
                .filter(|(k, s)| {
                    s.status == SlotStatus::Running
                        && !muted.contains(k)
                        && now.duration_since(s.last_beat) > budget
                })
                .map(|(k, _)| k)
                .collect();
            if !expired.is_empty() {
                return expired;
            }
            let nearest = inner
                .slots
                .iter()
                .enumerate()
                .filter(|(k, s)| s.status == SlotStatus::Running && !muted.contains(k))
                .map(|(_, s)| (s.last_beat + budget).saturating_duration_since(now))
                .min()
                .unwrap_or(budget);
            self.cv
                .wait_for(&mut inner, nearest.max(Duration::from_millis(1)));
        }
    }

    #[cfg(test)]
    fn steal_of(&self, shard: usize) -> Option<StealRequest> {
        self.inner.lock().slots[shard].steal
    }
}

/// One shard's handle into the coordinator, threaded through the wave
/// loop (`run_job_inner` consults it at every wave boundary).
pub(crate) struct ShardCtl {
    coord: Arc<ShardCoordinator>,
    pub shard: usize,
}

impl ShardCtl {
    pub fn new(coord: Arc<ShardCoordinator>, shard: usize) -> Self {
        Self { coord, shard }
    }

    pub fn heartbeat(&self, wave: u64, pending: u64) {
        self.coord.heartbeat(self.shard, wave, pending);
    }

    pub fn drain(&self) -> Vec<Migrant> {
        self.coord.drain(self.shard)
    }

    pub fn ack(&self, families: &[FamilyId]) {
        self.coord.ack(self.shard, families);
    }

    pub fn take_steal(&self) -> Option<StealRequest> {
        self.coord.take_steal(self.shard)
    }

    pub fn deliver(&self, to: usize, migrant: Migrant) {
        self.coord.deliver(to, migrant);
    }

    pub fn idle_wait(&self) -> IdleVerdict {
        self.coord.idle_wait(self.shard)
    }
}

/// The wave loop's view of its shard coordinator, abstracted over
/// locality. [`ShardCtl`] calls straight into the shared in-process
/// [`ShardCoordinator`] and never fails; a
/// [`crate::transport::ShardClient`] speaks the same seven verbs over
/// the coordinator's Unix socket, where a severed connection or a
/// fencing refusal surfaces as an error — the wave loop propagates it
/// and the worker exits, leaving its WAL for adoption.
pub(crate) trait ShardLink: Sync {
    /// This link's shard index.
    fn shard(&self) -> usize;
    /// Wave-top heartbeat: wave number and non-terminal family count.
    fn heartbeat(&self, wave: u64, pending: u64) -> Result<()>;
    /// Drains delivered migrants (they stay in coordinator custody
    /// until [`Self::ack`]).
    fn drain(&self) -> Result<Vec<Migrant>>;
    /// Confirms in-records for these adopted families are durable.
    fn ack(&self, families: &[FamilyId]) -> Result<()>;
    /// Takes this shard's pending steal directive, if any.
    fn take_steal(&self) -> Result<Option<StealRequest>>;
    /// Hands a migrant to shard `to` (out-record already durable).
    fn deliver(&self, to: usize, migrant: Migrant) -> Result<()>;
    /// Parks until migrants arrive or the whole run is drained.
    fn idle_wait(&self) -> Result<IdleVerdict>;
}

impl ShardLink for ShardCtl {
    fn shard(&self) -> usize {
        self.shard
    }

    fn heartbeat(&self, wave: u64, pending: u64) -> Result<()> {
        ShardCtl::heartbeat(self, wave, pending);
        Ok(())
    }

    fn drain(&self) -> Result<Vec<Migrant>> {
        Ok(ShardCtl::drain(self))
    }

    fn ack(&self, families: &[FamilyId]) -> Result<()> {
        ShardCtl::ack(self, families);
        Ok(())
    }

    fn take_steal(&self) -> Result<Option<StealRequest>> {
        Ok(ShardCtl::take_steal(self))
    }

    fn deliver(&self, to: usize, migrant: Migrant) -> Result<()> {
        ShardCtl::deliver(self, to, migrant);
        Ok(())
    }

    fn idle_wait(&self) -> Result<IdleVerdict> {
        Ok(ShardCtl::idle_wait(self))
    }
}

// ---------------------------------------------------------------------------
// WAL folding (ownership resolution, orphan adoption)
// ---------------------------------------------------------------------------

/// A shard WAL's replayed family state: who it currently owns, what
/// those families completed, and what it abandoned.
struct WalState {
    planned: Vec<Family>,
    steps: HashMap<FamilyId, Vec<MigratedStep>>,
    charges: HashMap<FamilyId, u32>,
    dead: HashMap<FamilyId, DeadLetter>,
    /// Families this WAL handed away and never took back: the last
    /// out-record's payload, so an aborted hand-over can be audited
    /// and re-routed from the donor's side alone.
    departed: HashMap<FamilyId, (Family, Vec<MigratedStep>, u32)>,
}

fn fold_wal(records: &[RecoveryRecord]) -> WalState {
    let mut st = WalState {
        planned: Vec::new(),
        steps: HashMap::new(),
        charges: HashMap::new(),
        dead: HashMap::new(),
        departed: HashMap::new(),
    };
    for r in records {
        match r {
            RecoveryRecord::FamilyPlanned { family } => st.planned.push(family.clone()),
            RecoveryRecord::StepCompleted {
                family,
                kind,
                metadata,
                discoveries,
            } => st.steps.entry(*family).or_default().push(MigratedStep {
                kind: *kind,
                metadata: Arc::clone(metadata),
                discoveries: discoveries.clone(),
            }),
            RecoveryRecord::RetryCharged { family, amount } => {
                *st.charges.entry(*family).or_insert(0) += amount;
            }
            RecoveryRecord::DeadLettered { letter } => {
                st.dead.insert(letter.family, letter.clone());
            }
            RecoveryRecord::FamilyMigrated {
                family,
                adopted,
                steps,
                charges,
                ..
            } => {
                if *adopted {
                    st.planned.retain(|f| f.id != family.id);
                    st.planned.push(family.clone());
                    st.departed.remove(&family.id);
                    let slot = st.steps.entry(family.id).or_default();
                    for s in steps {
                        if !slot.iter().any(|have| have.kind == s.kind) {
                            slot.push(s.clone());
                        }
                    }
                    // The carried count is the family's total at
                    // hand-over; local RetryCharged deltas appended
                    // after this record add on top.
                    let cur = st.charges.entry(family.id).or_insert(0);
                    *cur = (*cur).max(*charges);
                } else {
                    st.planned.retain(|f| f.id != family.id);
                    st.departed
                        .insert(family.id, (family.clone(), steps.clone(), *charges));
                }
            }
            _ => {}
        }
    }
    st
}

// ---------------------------------------------------------------------------
// The sharded run
// ---------------------------------------------------------------------------

/// Everything the root WAL pins before any shard fans out: the open
/// root log, a report seeded with crawl totals and the crawl phase
/// span, and the full family plan (journaled, so family identity
/// survives resumes).
pub(crate) struct RootPlan {
    pub root: crate::service::RecoveryCtx,
    pub report: JobReport,
    pub plan: Vec<Family>,
}

/// Opens (or replays) the root WAL and produces the family plan: a
/// fresh run crawls and journals `CrawlCompleted` plus the plan before
/// returning; a resumed run replays the journaled plan and skips the
/// crawl. Shared by the in-process fan-out ([`run_sharded`]) and the
/// cross-process coordinator ([`crate::transport::run_proc_sharded`]).
pub(crate) fn prepare_root(
    service: &XtractService,
    spec: &JobSpec,
    dir: &Path,
    started: Instant,
) -> Result<RootPlan> {
    let mut report = JobReport::default();
    let root = service.open_recovery(spec, dir, Some("root"))?;
    let t_crawl0 = started.elapsed().as_secs_f64();
    let plan: Vec<Family> = if root.resumed && !root.planned.is_empty() {
        let (crawled, groups, redundant) = root.crawl.unwrap_or((0, 0, 0));
        report.crawled_files = crawled;
        report.groups = groups;
        report.redundant_files = redundant;
        root.planned.clone()
    } else {
        let mut families = Vec::new();
        service.crawl_and_plan(spec, &mut report, &mut families)?;
        let mut batch = vec![RecoveryRecord::CrawlCompleted {
            crawled_files: report.crawled_files,
            groups: report.groups,
            redundant_files: report.redundant_files,
        }];
        batch.extend(
            families
                .iter()
                .map(|f| RecoveryRecord::FamilyPlanned { family: f.clone() }),
        );
        root.log.append_batch(&batch)?;
        families
    };
    let t_crawl1 = started.elapsed().as_secs_f64();
    report.phases.add(Phase::Crawl, t_crawl1 - t_crawl0);
    report.phase_spans.push((Phase::Crawl, t_crawl0, t_crawl1));
    report.families = plan.len() as u64;
    report.resumed = root.resumed;
    report.replayed_records = root.replayed;
    report.truncated_records = root.truncated;
    Ok(RootPlan { root, report, plan })
}

/// A shard's copy of the job spec: the shared fault plan sliced to the
/// shard's own kill schedule (its scheduled [`xtract_types::ShardCrash`]
/// entries become that runner's orchestrator crashes; sibling schedules
/// are dropped). The fingerprint is unaffected — fault plans are
/// excluded from [`spec_fingerprint`] — so a sub-spec replays cleanly
/// against a WAL the coordinator seeded from the parent spec.
pub(crate) fn sub_spec_for(spec: &JobSpec, k: usize) -> JobSpec {
    let mut sub = spec.clone();
    if let Some(plan) = &spec.fault_plan {
        let mut p = plan.clone();
        p.orchestrator_crashes = plan.crashes_for_shard(k);
        p.shard_crashes = Vec::new();
        sub.fault_plan = Some(p);
    }
    sub
}

/// Per-shard WAL layout for one sharded run: the WAL subdirectories
/// (`dir/shard-{k}`) and each shard's owned subset of the plan after
/// ownership resolution.
pub(crate) struct ShardLayout {
    pub shard_dirs: Vec<PathBuf>,
    pub subsets: Vec<Vec<Family>>,
}

/// Runs `spec` across `spec.shard.shards` wave loops. See the module
/// docs for the protocol; the entry point is
/// [`XtractService::run_job`] with a [`xtract_types::ShardPolicy`]
/// enabled and a recovery-log dir supplied.
pub(crate) fn run_sharded(
    service: &XtractService,
    token: Token,
    spec: &JobSpec,
    dir: &Path,
    tenant: Option<&Arc<TenantCtx>>,
) -> Result<JobReport> {
    let started = Instant::now();
    let shards = spec.shard.shards;

    // Root WAL: crawl + plan, durable before any shard fans out.
    let RootPlan {
        root,
        mut report,
        plan,
    } = prepare_root(service, spec, dir, started)?;
    let ShardLayout {
        shard_dirs,
        subsets,
    } = resolve_and_seed(service, spec, dir, &plan, None)?;

    // Fan out: one runner per shard, each with its own lease, its own
    // replayed RecoveryCtx, and its shard's slice of the kill schedule.
    let coordinator = Arc::new(ShardCoordinator::new(
        spec.shard,
        service.obs.clone(),
        shards,
    ));
    let sub_specs: Vec<JobSpec> = (0..shards).map(|k| sub_spec_for(spec, k)).collect();

    type ShardOutcome = (
        usize,
        f64,
        std::result::Result<(JobReport, LogDirLease), XtractError>,
    );
    let mut shard_reports: Vec<Option<(JobReport, f64)>> = (0..shards).map(|_| None).collect();
    let mut orphan_letters: Vec<DeadLetter> = Vec::new();
    let mut first_death: Option<(usize, String)> = None;
    let mut stranded = false;

    std::thread::scope(|scope| -> Result<()> {
        let (tx, rx) = mpsc::channel::<ShardOutcome>();
        for k in 0..shards {
            let tx = tx.clone();
            let ctl = ShardCtl::new(Arc::clone(&coordinator), k);
            let sub_spec = &sub_specs[k];
            let sd = &shard_dirs[k];
            service.obs.journal.record(Event::ShardStarted {
                shard: k as u64,
                families: subsets[k].len() as u64,
            });
            service.obs.hub.counter("shard.started").add(1);
            scope.spawn(move || {
                let offset = started.elapsed().as_secs_f64();
                let label = format!("shard-{k}");
                let result = (|| {
                    let lease = LogDirLease::acquire(sd)?;
                    let ctx = service.open_recovery(sub_spec, sd, Some(&label))?;
                    ctx.log.set_fence(&lease);
                    let rep = service.run_job_inner(
                        token,
                        sub_spec,
                        Some(&ctx),
                        tenant,
                        Some(&ctl as &dyn ShardLink),
                    )?;
                    Ok((rep, lease))
                })();
                let _ = tx.send((k, offset, result));
            });
        }
        drop(tx);

        for _ in 0..shards {
            let (k, offset, result) = rx.recv().map_err(|_| XtractError::Internal {
                reason: "shard runner exited without reporting".to_string(),
            })?;
            match result {
                Ok((rep, lease)) => {
                    coordinator.mark_done(k);
                    // A delivery can race a shard's finish: the runner
                    // exited its wave loop and will never drain it.
                    // Redistribute from parent custody.
                    let leftovers = coordinator.take_custody(k);
                    if !leftovers.is_empty() {
                        stranded |= redistribute(
                            &coordinator,
                            service,
                            spec,
                            &shard_dirs[k],
                            k,
                            leftovers,
                            None,
                        )?;
                    }
                    shard_reports[k] = Some((rep, offset));
                    drop(lease);
                }
                Err(e) => {
                    let point = match &e {
                        XtractError::OrchestratorKilled { point } => point.clone(),
                        other => other.to_string(),
                    };
                    service.obs.journal.record(Event::ShardDied {
                        shard: k as u64,
                        point: point.clone(),
                    });
                    service.obs.hub.counter("shard.deaths").add(1);
                    // The runner's lease lapsed with it; re-acquire the
                    // shard's WAL (fencing any straggling writer) and
                    // hand every orphan to a survivor. The slot stays
                    // Running until the orphans are placed, so idle
                    // siblings cannot conclude Finished while adoptions
                    // are still in flight.
                    let lease = LogDirLease::acquire(&shard_dirs[k])?;
                    let start_owned: HashSet<FamilyId> = subsets[k].iter().map(|f| f.id).collect();
                    stranded |= adopt_orphans(
                        &coordinator,
                        service,
                        spec,
                        &shard_dirs[k],
                        k,
                        &start_owned,
                        &mut orphan_letters,
                        Some(&lease),
                        None,
                    )?;
                    if first_death.is_none() {
                        first_death = Some((k, point));
                    }
                    coordinator.mark_dead(k);
                }
            }
        }
        Ok(())
    })?;

    if stranded {
        // No survivor was live to adopt the orphans: surface the first
        // death; every WAL survives for `resume_job`.
        let (shard, point) = first_death.unwrap_or((0, "unknown".to_string()));
        return Err(XtractError::ShardDied { shard, point });
    }

    merge_reports(
        &mut report,
        shard_reports,
        orphan_letters,
        &coordinator,
        shards,
    );
    root.log.append(&RecoveryRecord::JobCompleted)?;
    Ok(report)
}

/// Resolves family ownership across the shard WALs and seeds or repairs
/// each shard's WAL so every family of `plan` is planned in exactly
/// one. `custody_hint` — a restarted coordinator's replayed view of the
/// moves it brokered (root-WAL `CustodyMoved` records) — seeds the
/// chain walk for families no WAL holds; `None` starts the walk at the
/// base assignment.
pub(crate) fn resolve_and_seed(
    service: &XtractService,
    spec: &JobSpec,
    dir: &Path,
    plan: &[Family],
    custody_hint: Option<&HashMap<FamilyId, u64>>,
) -> Result<ShardLayout> {
    let shards = spec.shard.shards;
    let fingerprint = spec_fingerprint(spec);
    // Ownership resolution, presence first: the shard whose replayed
    // WAL currently holds the family (its seed `FamilyPlanned` or a
    // durable migration in-record, minus later out-records) owns it.
    // Only a family *no* replay holds — a hand-over crashed between
    // the donor's out-record and the recipient's in-record — falls
    // back to walking the out-record chain from its base assignment
    // (or from the coordinator's custody hint, when one replayed).
    // The walk is consumption-ordered (each out-record moves the
    // family once), so even A→B→A round trips resolve.
    let ids: Vec<FamilyId> = plan.iter().map(|f| f.id).collect();
    let partitioner = build_partitioner(spec.shard.partitioner);
    let mut owner = partitioner.assign(&ids, shards);
    let shard_dirs: Vec<PathBuf> = (0..shards)
        .map(|k| dir.join(format!("shard-{k}")))
        .collect();
    let mut replays: Vec<Option<Vec<RecoveryRecord>>> = Vec::with_capacity(shards);
    for sd in &shard_dirs {
        if sd.is_dir() {
            let (_log, replay) = RecoveryLog::open(sd, spec.recovery)?;
            replays.push(Some(replay.effective().to_vec()));
        } else {
            replays.push(None);
        }
    }
    let states: Vec<WalState> = replays
        .iter()
        .map(|r| fold_wal(r.as_deref().unwrap_or_default()))
        .collect();
    let mut present_at: HashMap<FamilyId, usize> = HashMap::new();
    for (k, st) in states.iter().enumerate() {
        for f in &st.planned {
            present_at.entry(f.id).or_insert(k);
        }
    }
    let mut outs: Vec<HashMap<FamilyId, VecDeque<RecoveryRecord>>> = replays
        .iter()
        .map(|r| {
            let mut m: HashMap<FamilyId, VecDeque<RecoveryRecord>> = HashMap::new();
            for rec in r.as_deref().unwrap_or_default() {
                if let RecoveryRecord::FamilyMigrated {
                    family,
                    adopted: false,
                    ..
                } = rec
                {
                    m.entry(family.id).or_default().push_back(rec.clone());
                }
            }
            m
        })
        .collect();
    let mut last_hop: HashMap<FamilyId, RecoveryRecord> = HashMap::new();
    for (i, id) in ids.iter().enumerate() {
        if let Some(&k) = present_at.get(id) {
            owner[i] = k;
            continue;
        }
        let mut cur = custody_hint
            .and_then(|hint| hint.get(id))
            .map(|&s| (s as usize).min(shards - 1))
            .unwrap_or(owner[i]);
        while let Some(rec) = outs
            .get_mut(cur)
            .and_then(|m| m.get_mut(id))
            .and_then(|q| q.pop_front())
        {
            let RecoveryRecord::FamilyMigrated { to, .. } = &rec else {
                break;
            };
            cur = (*to as usize).min(shards - 1);
            last_hop.insert(*id, rec);
        }
        owner[i] = cur;
    }

    // Prepare each shard's WAL: seed a fresh one with the job identity
    // and its subset of the plan; repair a crashed hand-over's missing
    // in-record from the donor's out-record ([`RecoveryRecord::flip_side`]).
    let subsets: Vec<Vec<Family>> = (0..shards)
        .map(|k| {
            plan.iter()
                .enumerate()
                .filter(|(i, _)| owner[*i] == k)
                .map(|(_, f)| f.clone())
                .collect()
        })
        .collect();
    for (k, sd) in shard_dirs.iter().enumerate() {
        let present: HashSet<FamilyId> = states[k].planned.iter().map(|f| f.id).collect();
        let mut batch = Vec::new();
        if replays[k].is_none() {
            batch.push(RecoveryRecord::JobStarted { fingerprint });
        }
        let mut repaired = 0u64;
        for f in &subsets[k] {
            if present.contains(&f.id) {
                continue;
            }
            match last_hop.get(&f.id) {
                Some(out) => {
                    batch.push(out.clone().flip_side());
                    repaired += 1;
                }
                None => batch.push(RecoveryRecord::FamilyPlanned { family: f.clone() }),
            }
        }
        if !batch.is_empty() {
            let (log, _) = RecoveryLog::open(sd, spec.recovery)?;
            log.append_batch(&batch)?;
        }
        if repaired > 0 {
            service.obs.journal.record(Event::ShardAdopted {
                shard: k as u64,
                families: repaired,
            });
            service.obs.hub.counter("shard.adopted").add(repaired);
        }
    }
    Ok(ShardLayout {
        shard_dirs,
        subsets,
    })
}

/// Merges the shard reports into the root report: concatenated
/// record/letter sets (exactly-once by construction: a family lives in
/// exactly one shard's plan at any instant), summed scalar tallies, and
/// phase spans unioned on the coordinator's clock so concurrent shard
/// work is not double-counted against the wall.
pub(crate) fn merge_reports(
    report: &mut JobReport,
    shard_reports: Vec<Option<(JobReport, f64)>>,
    orphan_letters: Vec<DeadLetter>,
    coordinator: &ShardCoordinator,
    shards: usize,
) {
    let mut spans: Vec<(Phase, f64, f64)> = report.phase_spans.clone();
    for (rep, offset) in shard_reports.into_iter().flatten() {
        report.records.extend(rep.records);
        report.failures.extend(rep.failures);
        for (name, n) in rep.invocations {
            *report.invocations.entry(name).or_insert(0) += n;
        }
        report.bytes_prefetched += rep.bytes_prefetched;
        report.waves += rep.waves;
        report.resubmitted += rep.resubmitted;
        report.rerouted += rep.rerouted;
        report.replayed_records += rep.replayed_records;
        report.truncated_records += rep.truncated_records;
        for (phase, s, e) in rep.phase_spans {
            spans.push((phase, s + offset, e + offset));
        }
    }
    report.failures.extend(orphan_letters);
    let mut phases = xtract_obs::PhaseTimings::new();
    for phase in Phase::ALL {
        let mut union = SpanUnion::new();
        for &(_, s, e) in spans.iter().filter(|(p, _, _)| *p == phase) {
            union.add(s, e);
        }
        phases.add(phase, union.covered());
    }
    report.phases = phases;
    report.phase_spans = spans;
    report.shards = shards as u64;
    report.stolen_families = coordinator.stolen();
    report.shard_deaths = coordinator.deaths();
}

/// Replays a dead shard's WAL and migrates every non-terminal family
/// to a surviving shard; terminal dead letters are collected into the
/// merged report directly (the dead runner never returned one). Returns
/// true when orphans were stranded because no survivor was live.
///
/// `fence` is the adopter's freshly-bumped lease over the dead shard's
/// WAL: the out-records written here carry its fencing token, so a
/// zombie writer that raced the adoption cannot interleave. When
/// `root_moves` is supplied (the cross-process coordinator), one
/// [`RecoveryRecord::CustodyMoved`] per migration is pushed for the
/// caller to journal to the root WAL.
#[allow(clippy::too_many_arguments)]
pub(crate) fn adopt_orphans(
    coordinator: &ShardCoordinator,
    service: &XtractService,
    spec: &JobSpec,
    sd: &Path,
    from: usize,
    start_owned: &HashSet<FamilyId>,
    orphan_letters: &mut Vec<DeadLetter>,
    fence: Option<&LogDirLease>,
    root_moves: Option<&mut Vec<RecoveryRecord>>,
) -> Result<bool> {
    let (log, replay) = RecoveryLog::open(sd, spec.recovery)?;
    if let Some(lease) = fence {
        log.set_fence(lease);
    }
    let st = fold_wal(replay.effective());
    let planned_ids: HashSet<FamilyId> = st.planned.iter().map(|f| f.id).collect();
    let mut stranded = false;
    let mut out_records = Vec::new();
    let mut migrants: Vec<(usize, Migrant)> = Vec::new();
    let mut adopted_per_shard: HashMap<usize, u64> = HashMap::new();
    for f in &st.planned {
        if let Some(letter) = st.dead.get(&f.id) {
            orphan_letters.push(letter.clone());
            continue;
        }
        let Some(to) = coordinator.least_loaded_live(None) else {
            stranded = true;
            continue;
        };
        let steps = st.steps.get(&f.id).cloned().unwrap_or_default();
        let charges = st.charges.get(&f.id).copied().unwrap_or(0);
        out_records.push(RecoveryRecord::FamilyMigrated {
            family: f.clone(),
            from: from as u64,
            to: to as u64,
            adopted: false,
            steps: steps.clone(),
            charges,
        });
        migrants.push((
            to,
            Migrant {
                family: f.clone(),
                steps,
                charges,
                from: from as u64,
            },
        ));
        *adopted_per_shard.entry(to).or_insert(0) += 1;
    }
    // Migrants delivered to the dead shard that it never journaled in:
    // re-route them, extending the chain through the dead shard's WAL
    // so a later resume resolves ownership the same way.
    for m in coordinator.take_custody(from) {
        if planned_ids.contains(&m.family.id) {
            continue; // the in-record made it; handled above
        }
        let Some(to) = coordinator.least_loaded_live(None) else {
            stranded = true;
            continue;
        };
        out_records.push(RecoveryRecord::FamilyMigrated {
            family: m.family.clone(),
            from: from as u64,
            to: to as u64,
            adopted: false,
            steps: m.steps.clone(),
            charges: m.charges,
        });
        migrants.push((
            to,
            Migrant {
                from: from as u64,
                ..m
            },
        ));
        *adopted_per_shard.entry(to).or_insert(0) += 1;
    }
    // A hand-over whose out-record is durable but whose migrant never
    // reached the coordinator (the donor died between journaling and
    // delivering — a mid-batch I/O error surfacing as the death) would
    // silently lose the family for this run. Re-route any departure of
    // a family this shard owned at fan-out that no slot has a trace of.
    for (id, (family, steps, charges)) in &st.departed {
        if !start_owned.contains(id) || coordinator.knows_any(*id) {
            continue;
        }
        let Some(to) = coordinator.least_loaded_live(None) else {
            stranded = true;
            continue;
        };
        out_records.push(RecoveryRecord::FamilyMigrated {
            family: family.clone(),
            from: from as u64,
            to: to as u64,
            adopted: false,
            steps: steps.clone(),
            charges: *charges,
        });
        migrants.push((
            to,
            Migrant {
                family: family.clone(),
                steps: steps.clone(),
                charges: *charges,
                from: from as u64,
            },
        ));
        *adopted_per_shard.entry(to).or_insert(0) += 1;
    }
    if !out_records.is_empty() {
        log.append_batch(&out_records)?;
    }
    if let Some(moves) = root_moves {
        for r in &out_records {
            if let RecoveryRecord::FamilyMigrated {
                family, from, to, ..
            } = r
            {
                moves.push(RecoveryRecord::CustodyMoved {
                    family: family.id,
                    from: *from,
                    to: *to,
                });
            }
        }
    }
    for (to, m) in migrants {
        coordinator.deliver(to, m);
    }
    for (shard, families) in adopted_per_shard {
        service.obs.journal.record(Event::ShardAdopted {
            shard: shard as u64,
            families,
        });
        service.obs.hub.counter("shard.adopted").add(families);
    }
    Ok(stranded)
}

/// Re-routes custody leftovers of a shard that can no longer drain
/// them, journaling the chain hop through that shard's WAL (under the
/// caller's fence, when one is held).
pub(crate) fn redistribute(
    coordinator: &ShardCoordinator,
    service: &XtractService,
    spec: &JobSpec,
    sd: &Path,
    from: usize,
    items: Vec<Migrant>,
    fence: Option<&LogDirLease>,
) -> Result<bool> {
    let (log, _) = RecoveryLog::open(sd, spec.recovery)?;
    if let Some(lease) = fence {
        log.set_fence(lease);
    }
    let mut stranded = false;
    for m in items {
        let Some(to) = coordinator.least_loaded_live(None) else {
            stranded = true;
            continue;
        };
        log.append(&RecoveryRecord::FamilyMigrated {
            family: m.family.clone(),
            from: from as u64,
            to: to as u64,
            adopted: false,
            steps: m.steps.clone(),
            charges: m.charges,
        })?;
        coordinator.deliver(
            to,
            Migrant {
                from: from as u64,
                ..m
            },
        );
        service.obs.hub.counter("shard.adopted").add(1);
    }
    Ok(stranded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fam(id: u64) -> FamilyId {
        FamilyId::new(id)
    }

    #[test]
    fn hash_assignment_matches_shard_of_and_is_total() {
        let ids: Vec<FamilyId> = (0..100).map(fam).collect();
        for shards in 1..=16 {
            let got = HashPartitioner.assign(&ids, shards);
            assert_eq!(got.len(), ids.len());
            for (i, &s) in got.iter().enumerate() {
                assert!(s < shards);
                assert_eq!(s, shard_of(ids[i], shards));
            }
        }
        // One shard degenerates to the identity.
        assert!(HashPartitioner.assign(&ids, 1).iter().all(|&s| s == 0));
    }

    #[test]
    fn range_assignment_is_contiguous_by_rank_and_balanced() {
        // Shuffled-ish ids: ranks must decide the blocks, not positions.
        let ids: Vec<FamilyId> = [7u64, 3, 11, 1, 9, 5, 2, 10, 4, 8, 0, 6]
            .iter()
            .map(|&i| fam(i))
            .collect();
        let got = RangePartitioner.assign(&ids, 4);
        // 12 ids over 4 shards: ranks 0..2 → 0, 3..5 → 1, etc.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(got[i], (id.raw() / 3) as usize, "id {}", id.raw());
        }
        let mut load = [0usize; 4];
        for &s in &got {
            load[s] += 1;
        }
        assert!(load.iter().max().unwrap() - load.iter().min().unwrap() <= 1);
    }

    #[test]
    fn build_partitioner_honors_kind() {
        assert_eq!(build_partitioner(PartitionerKind::Hash).name(), "hash");
        assert_eq!(build_partitioner(PartitionerKind::Range).name(), "range");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Satellite invariant: every family lands on exactly one shard,
        /// the assignment is deterministic across replays, and the load
        /// ratio stays bounded for ≥ 64 families per shard.
        #[test]
        fn partitioners_are_total_deterministic_and_balanced(
            start in any::<u64>(),
            extra in 0usize..64,
            shards in 1usize..=16,
        ) {
            // Sequential ids, as the allocator hands them out.
            let n = 64 * shards + extra;
            let ids: Vec<FamilyId> =
                (0..n as u64).map(|i| fam(start.wrapping_add(i))).collect();
            for kind in [PartitionerKind::Hash, PartitionerKind::Range] {
                let p = build_partitioner(kind);
                let got = p.assign(&ids, shards);
                // Total: one shard per family, all in range.
                prop_assert_eq!(got.len(), n);
                prop_assert!(got.iter().all(|&s| s < shards));
                // Deterministic across replays.
                prop_assert_eq!(&got, &p.assign(&ids, shards));
                // Balanced: mean load is ≥ 64, so max/min stays tight
                // (range is exact; hash concentrates around the mean).
                let mut load = vec![0usize; shards];
                for &s in &got {
                    load[s] += 1;
                }
                let max = *load.iter().max().unwrap() as f64;
                let min = *load.iter().min().unwrap() as f64;
                let mean = n as f64 / shards as f64;
                prop_assert!(max <= 2.0 * mean, "max {max} mean {mean} ({})", p.name());
                prop_assert!(min >= mean / 4.0, "min {min} mean {mean} ({})", p.name());
                prop_assert!(
                    max / min.max(1.0) <= 8.0,
                    "ratio {} ({})", max / min.max(1.0), p.name()
                );
            }
        }
    }

    fn test_coordinator(shards: usize, policy: xtract_types::ShardPolicy) -> Arc<ShardCoordinator> {
        Arc::new(ShardCoordinator::new(
            policy,
            xtract_obs::Obs::new(),
            shards,
        ))
    }

    fn migrant(id: u64, from: u64) -> Migrant {
        Migrant {
            family: Family::new(
                fam(id),
                Vec::new(),
                vec![xtract_types::Group::new(
                    xtract_types::GroupId::new(id),
                    Vec::new(),
                )],
                xtract_types::EndpointId::new(0),
            ),
            steps: Vec::new(),
            charges: 0,
            from,
        }
    }

    #[test]
    fn custody_tracks_deliveries_until_acked() {
        let c = test_coordinator(2, xtract_types::ShardPolicy::sharded(2));
        c.deliver(1, migrant(7, 0));
        c.deliver(1, migrant(8, 0));
        assert_eq!(c.stolen(), 2);
        let drained = c.drain(1);
        assert_eq!(drained.len(), 2);
        // Drained but unacked: still in custody.
        c.ack(1, &[fam(7)]);
        let leftovers = c.take_custody(1);
        assert_eq!(leftovers.len(), 1);
        assert_eq!(leftovers[0].family.id, fam(8));
        assert!(c.take_custody(1).is_empty());
    }

    #[test]
    fn idle_pull_targets_the_most_loaded_running_shard() {
        let mut policy = xtract_types::ShardPolicy::sharded(3);
        policy.steal_min_pending = 2;
        let c = test_coordinator(3, policy);
        c.heartbeat(0, 1, 3);
        c.heartbeat(1, 1, 9);
        // Shard 2 drains and parks; its idle_wait scan should set a
        // steal directive on shard 1 (the heavier donor).
        let c2 = Arc::clone(&c);
        let parked = std::thread::spawn(move || ShardCtl::new(c2, 2).idle_wait());
        let deadline = Instant::now() + Duration::from_secs(5);
        let steal = loop {
            if let Some(s) = c.steal_of(1) {
                break s;
            }
            assert!(Instant::now() < deadline, "no steal directive appeared");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(steal.to, 2);
        assert_eq!(steal.max, 4); // half of 9, rounded down
        assert!(c.steal_of(0).is_none(), "light shard must not be a victim");
        // Consuming the directive and delivering wakes the idler.
        assert!(c.take_steal(1).is_some());
        c.deliver(2, migrant(3, 1));
        assert_eq!(parked.join().unwrap(), IdleVerdict::Adopt);
    }

    #[test]
    fn quantile_lag_flags_a_stuck_shard() {
        let mut policy = xtract_types::ShardPolicy::sharded(2);
        policy.min_lag_samples = 4;
        policy.lag_quantile = 0.5;
        policy.lag_multiplier = 2.0;
        let c = test_coordinator(2, policy);
        // Shard 0 turns several fast waves: its beats build the sample
        // set (sub-millisecond wave durations).
        for wave in 1..=6 {
            c.heartbeat(0, wave, 4);
        }
        // Shard 1 started a wave long ago and never beat again.
        c.heartbeat(1, 1, 6);
        std::thread::sleep(Duration::from_millis(60));
        // Any heartbeat triggers a scan on the fresh clock.
        c.heartbeat(0, 7, 4);
        let steal = c.steal_of(1).expect("lagging shard must be marked");
        assert_eq!(steal.to, 0);
        assert_eq!(steal.max, 3);
    }

    #[test]
    fn all_idle_shards_conclude_finished() {
        let c = test_coordinator(2, xtract_types::ShardPolicy::sharded(2));
        let handles: Vec<_> = (0..2)
            .map(|k| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || ShardCtl::new(c, k).idle_wait())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), IdleVerdict::Finished);
        }
    }

    /// Satellite regression: death detection is condvar-driven, not a
    /// fixed-interval poll — a shard that stops beating is reported
    /// within one heartbeat budget (plus scheduler slack), and the
    /// monitor returns immediately once every slot is terminal.
    #[test]
    fn heartbeat_timeout_detects_a_silent_shard_within_one_budget() {
        let c = test_coordinator(2, xtract_types::ShardPolicy::sharded(2));
        c.heartbeat(0, 1, 3);
        c.mark_done(1);
        let budget = Duration::from_millis(100);
        let t0 = Instant::now();
        let expired = c.await_timeout(budget, &[]);
        let waited = t0.elapsed();
        assert_eq!(expired, vec![0]);
        // One budget from the last beat, with generous CI slack — the
        // old 20ms polling grid would still pass this, but a regression
        // to sleep-per-interval scanning (or a lost wakeup) would not.
        assert!(
            waited >= Duration::from_millis(50),
            "woke early: {waited:?}"
        );
        assert!(
            waited < Duration::from_millis(1500),
            "detection took {waited:?}, bound is one ~100ms budget + slack"
        );
        // A muted (already-reported) slot is not re-reported; marking
        // it dead ends the watch immediately.
        let c2 = Arc::clone(&c);
        let monitor = std::thread::spawn(move || c2.await_timeout(budget, &[0]));
        std::thread::sleep(Duration::from_millis(20));
        c.mark_dead(0);
        assert!(monitor.join().unwrap().is_empty());
    }

    /// A fresh beat re-arms the deadline: a shard beating faster than
    /// the budget is never reported expired.
    #[test]
    fn steady_heartbeats_hold_off_the_timeout() {
        let c = test_coordinator(1, xtract_types::ShardPolicy::sharded(2));
        let beater = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for wave in 1..=20u64 {
                    c.heartbeat(0, wave, 1);
                    std::thread::sleep(Duration::from_millis(10));
                }
                c.mark_done(0);
            })
        };
        let expired = c.await_timeout(Duration::from_millis(500), &[]);
        beater.join().unwrap();
        assert!(expired.is_empty(), "live shard reported dead: {expired:?}");
    }

    #[test]
    fn dead_and_done_shards_are_not_adoption_targets() {
        let c = test_coordinator(3, xtract_types::ShardPolicy::sharded(3));
        c.heartbeat(0, 1, 5);
        c.heartbeat(1, 1, 2);
        c.heartbeat(2, 1, 0);
        assert_eq!(c.least_loaded_live(None), Some(2));
        c.mark_done(2);
        assert_eq!(c.least_loaded_live(None), Some(1));
        c.mark_dead(1);
        assert_eq!(c.least_loaded_live(None), Some(0));
        assert_eq!(c.least_loaded_live(Some(0)), None);
        assert_eq!(c.deaths(), 1);
    }

    #[test]
    fn fold_wal_applies_migrations_and_carried_state() {
        let fam_a = migrant(1, 0).family;
        let fam_b = migrant(2, 0).family;
        let step = MigratedStep {
            kind: xtract_types::ExtractorKind::Keyword,
            metadata: Arc::new(xtract_types::Metadata::default()),
            discoveries: Vec::new(),
        };
        let records = vec![
            RecoveryRecord::FamilyPlanned {
                family: fam_a.clone(),
            },
            RecoveryRecord::RetryCharged {
                family: fam_a.id,
                amount: 2,
            },
            // A left for shard 1...
            RecoveryRecord::FamilyMigrated {
                family: fam_a.clone(),
                from: 0,
                to: 1,
                adopted: false,
                steps: Vec::new(),
                charges: 2,
            },
            // ...and B arrived carrying one completed step and a
            // cross-shard total of 3 charges.
            RecoveryRecord::FamilyMigrated {
                family: fam_b.clone(),
                from: 2,
                to: 0,
                adopted: true,
                steps: vec![step.clone()],
                charges: 3,
            },
            RecoveryRecord::RetryCharged {
                family: fam_b.id,
                amount: 1,
            },
        ];
        let st = fold_wal(&records);
        assert_eq!(st.planned.len(), 1);
        assert_eq!(st.planned[0].id, fam_b.id);
        assert_eq!(st.steps[&fam_b.id].len(), 1);
        assert_eq!(st.charges[&fam_b.id], 4); // carried 3 + local 1
        assert_eq!(st.charges[&fam_a.id], 2); // history kept, harmless
    }
}
