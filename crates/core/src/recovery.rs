//! Durable crash recovery: a segmented, CRC32-framed write-ahead log.
//!
//! The paper's §5.8.1 checkpoint flag only protects against *endpoint*
//! loss — the orchestrator itself held every wave's progress in process
//! memory, so a client crash lost a whole campaign. funcX survives client
//! death because task state lives in a durable service, and λFS-style
//! serverless metadata pipelines lean on a persistent log to make
//! function crashes invisible. This module gives the orchestrator the
//! same property: every commit-worthy transition (crawl done, family
//! planned, step flushed, retry charged, hedge resolved, family
//! dead-lettered) is journaled to disk before the job advances past it,
//! and [`XtractService::resume_job`] replays the log to rebuild exactly
//! the state an uninterrupted run would hold.
//!
//! # Log format
//!
//! A log is a directory of segments `wal-<seq>.log`. Each record is one
//! frame:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: `len` bytes of JSON]
//! ```
//!
//! where the CRC (IEEE 802.3 polynomial, hand-rolled — no new deps)
//! covers the payload only. A crash mid-write leaves a *torn tail*: a
//! partial frame at the end of the active segment. [`RecoveryLog::open`]
//! truncates the segment back to its last whole, checksum-valid record
//! and reports the tear; torn bytes anywhere other than the tail of the
//! final segment are real corruption and surface as
//! [`XtractError::CheckpointCorrupt`].
//!
//! # Group commit
//!
//! [`RecoveryLog::append_batch`] frames every record into one buffer and
//! pays one mutex acquisition, one `write(2)`, and (per
//! [`RecoveryPolicy::sync_each_commit`]) one `fdatasync` for the whole
//! batch — the wave-loop hot path journals a wave's flushes at the cost
//! of a single commit.
//!
//! # Compaction
//!
//! Segments rotate at [`RecoveryPolicy::segment_bytes`]. When enough
//! accumulate, the log is compacted: live state is rewritten into a
//! fresh segment that *begins* with [`RecoveryRecord::SnapshotBoundary`],
//! the segment is synced, and only then are the superseded segments
//! unlinked ([`RecoveryLog::begin_compaction`] /
//! [`RecoveryLog::finish_compaction`]). Replay resets state at the last
//! boundary it sees, so a crash between sync and unlink is harmless —
//! the stale segments replay into state the boundary then discards, and
//! the next resume finishes the unlink.
//!
//! [`XtractService::resume_job`]: crate::service::XtractService::resume_job
//! [`XtractError::CheckpointCorrupt`]: xtract_types::XtractError::CheckpointCorrupt

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xtract_types::{
    DeadLetter, EndpointId, ExtractorKind, Family, FamilyId, FileType, JobSpec, Metadata,
    RecoveryPolicy, Result, XtractError,
};

/// Sanity cap on a single frame's payload: a length prefix above this is
/// treated as a torn/corrupt header, not an allocation request.
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Frame header size: `len` + `crc`, both little-endian `u32`s.
const HEADER_BYTES: usize = 8;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, hand-rolled — the workspace has no
// checksum crate and must not grow one.
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes`. Public so tests and external tools can
/// validate frames independently of this module's reader.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// FNV-1a over bytes (same algorithm the fault plan uses for path keys).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A stable fingerprint of a job spec, journaled at log creation and
/// verified at resume so a log can never replay into a different job.
///
/// The fault plan is excluded: it is test instrumentation (where to crash
/// next), not job identity — a chaos harness *changes* the schedule
/// between resumes of the same job.
pub fn spec_fingerprint(spec: &JobSpec) -> u64 {
    let mut identity = spec.clone();
    identity.fault_plan = None;
    let bytes = serde_json::to_vec(&identity).expect("job specs serialize");
    fnv1a(&bytes)
}

// ---------------------------------------------------------------------------
// Log-directory lease
// ---------------------------------------------------------------------------

/// Directories with a live lease, keyed by canonical path. `Vec` because
/// `parking_lot::Mutex::new` is const while `HashSet::new` is not; the
/// set is at most a handful of entries (one per in-flight recovery job).
static ACTIVE_LOG_DIRS: Mutex<Vec<PathBuf>> = Mutex::new(Vec::new());

/// True when a process with this id is currently alive. Linux: the
/// kernel exposes every live pid under `/proc`. On other platforms the
/// check degrades to "assume alive" — the conservative direction: a
/// stale lease then still refuses acquisition rather than risking two
/// writers.
pub fn pid_alive(pid: u32) -> bool {
    if pid == 0 {
        return false;
    }
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// The on-disk state of a lease file: the directory's epoch high-water
/// mark plus the current holder (pid 0 = released cleanly).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct LeaseFile {
    epoch: u64,
    pid: u32,
}

fn read_lease_file(path: &Path) -> LeaseFile {
    // Unreadable or missing ⇒ epoch floor 0, no holder. Torn contents
    // cannot occur under the atomic rename below; a hand-corrupted file
    // degrades to "never leased", which the caller then re-fences.
    std::fs::read(path)
        .ok()
        .and_then(|b| serde_json::from_slice(&b).ok())
        .unwrap_or(LeaseFile { epoch: 0, pid: 0 })
}

fn write_lease_file(path: &Path, state: LeaseFile) -> Result<()> {
    let bytes = serde_json::to_vec(&state).expect("lease state serializes");
    let tmp = path.with_extension("lease.tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| io_err("write lease", e))?;
    // rename(2) is atomic on POSIX: readers see the old epoch or the
    // new one, never a torn frame.
    std::fs::rename(&tmp, path).map_err(|e| io_err("publish lease", e))?;
    Ok(())
}

/// Exclusive claim on a recovery-log directory, fenced by an epoch.
///
/// Two jobs appending to one WAL directory interleave frames from
/// unrelated specs and poison each other's replay, so the job interface
/// takes a lease *synchronously at submit time* and holds it until the
/// job reaches a terminal status. A second submission against a held
/// directory fails immediately with [`XtractError::RecoveryLogBusy`]
/// rather than corrupting the log.
///
/// The lease is two-layered:
///
/// * an **in-process registry** (canonical-path keyed) catches two
///   threads of one process, synchronously and infallibly;
/// * an **on-disk lease file** (`wal.lease`, holder pid + epoch) extends
///   the claim across processes. A holder that died without releasing
///   is detected by pid liveness and *fenced* — the epoch bumps and the
///   directory is taken over — instead of blocking restart forever.
///
/// Every successful claim bumps the epoch; the file is never deleted
/// (release rewrites it with pid 0), so the epoch is monotonic across
/// the directory's whole life. [`RecoveryLog::set_fence`] checks the
/// holder's epoch against the file on every group commit — a zombie
/// writer whose lease was preempted gets [`XtractError::LeaseFenced`]
/// and not a byte lands.
#[derive(Debug)]
pub struct LogDirLease {
    key: PathBuf,
    file: PathBuf,
    epoch: u64,
}

impl LogDirLease {
    /// Claims `dir`, or fails with [`XtractError::RecoveryLogBusy`] if
    /// another live job already holds it — in this process (registry
    /// hit) or in another live process (lease file names a live pid).
    /// A lease left by a *dead* process is fenced: the epoch bumps and
    /// the claim succeeds. Paths are compared by canonical form when
    /// the directory exists, so `a/../b` and `b` conflict as they
    /// should.
    pub fn acquire(dir: &Path) -> Result<Self> {
        Self::claim(dir, false)
    }

    /// Forcibly fences `dir` even if the on-disk holder is still alive —
    /// the coordinator's takeover path for a worker it has declared
    /// dead (heartbeat timeout) but whose process may linger as a
    /// zombie. A claim held by *this* process is still refused: that is
    /// a programming error, not a zombie.
    pub fn preempt(dir: &Path) -> Result<Self> {
        Self::claim(dir, true)
    }

    fn claim(dir: &Path, force: bool) -> Result<Self> {
        let key = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
        let mut active = ACTIVE_LOG_DIRS.lock();
        if active.contains(&key) {
            return Err(XtractError::RecoveryLogBusy {
                dir: dir.display().to_string(),
            });
        }
        std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
        let file = dir.join("wal.lease");
        let prior = read_lease_file(&file);
        let me = std::process::id();
        if !force && prior.pid != 0 && prior.pid != me && pid_alive(prior.pid) {
            return Err(XtractError::RecoveryLogBusy {
                dir: dir.display().to_string(),
            });
        }
        let epoch = prior.epoch + 1;
        write_lease_file(&file, LeaseFile { epoch, pid: me })?;
        active.push(key.clone());
        Ok(Self { key, file, epoch })
    }

    /// The fencing token this claim holds. Monotonic per directory:
    /// strictly greater than every epoch any earlier claim ever held.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The lease file carrying the directory's current epoch.
    pub fn lease_path(&self) -> &Path {
        &self.file
    }
}

impl Drop for LogDirLease {
    fn drop(&mut self) {
        ACTIVE_LOG_DIRS.lock().retain(|k| k != &self.key);
        // Mark the on-disk lease released — but only if it still names
        // this claim. A successor that fenced us owns the file now; a
        // release must not resurrect our stale epoch over theirs.
        let cur = read_lease_file(&self.file);
        if cur.epoch == self.epoch && cur.pid == std::process::id() {
            let _ = write_lease_file(
                &self.file,
                LeaseFile {
                    epoch: self.epoch,
                    pid: 0,
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One journaled transition. Everything a resumed orchestrator needs to
/// avoid repeating work lives here; everything else is recomputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum RecoveryRecord {
    /// The job began under this spec fingerprint (always the first
    /// record of a fresh log, re-stated by every snapshot).
    JobStarted {
        /// [`spec_fingerprint`] of the owning spec.
        fingerprint: u64,
    },
    /// The crawl finished and its totals are final.
    CrawlCompleted {
        /// Files discovered.
        crawled_files: u64,
        /// Groups formed.
        groups: u64,
        /// Redundant file appearances across overlapping groups.
        redundant_files: u64,
    },
    /// One family of the plan, journaled in placement order. Replaying
    /// these skips the crawl *and* pins family identity: resumed ids
    /// match the original run even though the id allocator has moved on.
    FamilyPlanned {
        /// The planned family, in full.
        family: Family,
    },
    /// One `(family, extractor)` step completed and flushed.
    StepCompleted {
        /// The family.
        family: FamilyId,
        /// The extractor that ran.
        kind: ExtractorKind,
        /// The step's metadata output. Shared (`Arc`) with the
        /// checkpoint store's copy of the same step, so journaling a
        /// result costs a pointer bump, not a deep clone — and a record
        /// can be pushed to both the WAL batch and the wave's flush list
        /// without duplicating the payload. Serializes transparently:
        /// the on-disk frame is byte-identical to the pre-`Arc` format.
        metadata: Arc<Metadata>,
        /// Type discoveries the step reported — journaled so a resumed
        /// plan still extends with the extractors they imply (a replay
        /// that dropped these would never run a discovered extractor).
        #[serde(default)]
        discoveries: Vec<(String, FileType)>,
    },
    /// Retry-ledger charges against a family (batched: `amount` ≥ 1).
    RetryCharged {
        /// The family charged.
        family: FamilyId,
        /// Attempts charged.
        amount: u32,
    },
    /// A hedge race resolved.
    HedgeResolved {
        /// The hedged family.
        family: FamilyId,
        /// The endpoint whose attempt the resolution concerns.
        endpoint: EndpointId,
        /// `true` when the speculative duplicate won the race.
        won: bool,
    },
    /// A family was terminally abandoned.
    DeadLettered {
        /// The full dead letter, timeline included.
        letter: DeadLetter,
    },
    /// A whole wave's batch was committed (trailing marker; carries no
    /// state — the step/charge/hedge records before it do).
    WaveCommitted {
        /// Wave number within its run.
        wave: u64,
    },
    /// A family changed shards (work stealing or orphan adoption). The
    /// record is *symmetric*: the donor journals it with `adopted:
    /// false` before the family is handed over, the recipient journals
    /// it with `adopted: true` when it takes the family in. Replaying
    /// the donor's log drops the family from its plan; replaying the
    /// recipient's log adds it — so neither crash side ever
    /// double-dispatches. The record is self-contained (full family,
    /// completed steps, retry charges) so an adoption can be replayed
    /// from the recipient's log alone.
    FamilyMigrated {
        /// The migrated family, in full (the donor's planned view).
        family: Family,
        /// Donor shard index.
        from: u64,
        /// Recipient shard index.
        to: u64,
        /// False in the donor's log, true in the recipient's.
        adopted: bool,
        /// Steps the family had already completed on the donor; the
        /// recipient fast-forwards past them instead of re-running.
        steps: Vec<MigratedStep>,
        /// Retry-ledger attempts already charged for the family.
        charges: u32,
    },
    /// Coordinator-side custody journal (root WAL only): shard `shard`'s
    /// WAL lease reached `epoch`. Appended when a worker is admitted and
    /// when a dead worker's WAL is fenced for adoption, so a restarted
    /// coordinator can reconstruct the epoch floor each shard must
    /// exceed before it re-admits a worker there.
    ShardEpoch {
        /// The shard whose lease moved.
        shard: u64,
        /// The lease epoch now in force.
        epoch: u64,
    },
    /// Coordinator-side custody journal (root WAL only): the coordinator
    /// brokered custody of `family` from shard `from` to shard `to` — a
    /// work-stealing delivery or an orphan adoption. Lightweight (no
    /// payload: the shard WALs carry the full symmetric
    /// [`RecoveryRecord::FamilyMigrated`] pair); a restarted coordinator
    /// replays these as placement *hints* for families whose hand-over
    /// crashed between the donor's out-record and the recipient's
    /// in-record.
    CustodyMoved {
        /// The family whose custody moved.
        family: FamilyId,
        /// Donor shard index.
        from: u64,
        /// Recipient shard index.
        to: u64,
    },
    /// A scheduled chaos kill fired here. The count of these records is
    /// the cursor into [`FaultPlan::orchestrator_crashes`].
    ///
    /// [`FaultPlan::orchestrator_crashes`]: xtract_types::FaultPlan
    CrashRecorded {
        /// The crash point's stable name.
        point: String,
    },
    /// Compaction marker: replay discards everything before the *last*
    /// boundary — the records after it re-state all live state.
    SnapshotBoundary,
    /// The job ran to completion; a resume of this log is a no-op.
    JobCompleted,
}

impl RecoveryRecord {
    /// For a [`RecoveryRecord::FamilyMigrated`] record: the same
    /// migration as seen from the other side (`adopted` toggled). The
    /// coordinator uses this to repair a recipient's missing in-record
    /// from the donor's out-record when a crash interrupted the
    /// hand-over. Any other variant is returned unchanged.
    pub fn flip_side(self) -> Self {
        match self {
            RecoveryRecord::FamilyMigrated {
                family,
                from,
                to,
                adopted,
                steps,
                charges,
            } => RecoveryRecord::FamilyMigrated {
                family,
                from,
                to,
                adopted: !adopted,
                steps,
                charges,
            },
            other => other,
        }
    }
}

/// One completed `(extractor, metadata)` step carried inside a
/// [`RecoveryRecord::FamilyMigrated`] record — the same payload a
/// [`RecoveryRecord::StepCompleted`] holds, minus the family id (the
/// enclosing migration names it once).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigratedStep {
    /// The extractor that ran.
    pub kind: ExtractorKind,
    /// The step's metadata output (shared with the checkpoint store).
    pub metadata: Arc<Metadata>,
    /// Type discoveries the step reported.
    #[serde(default)]
    pub discoveries: Vec<(String, FileType)>,
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// What a scan of the log found: every valid record plus tear accounting.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// All valid records across all live segments, in append order.
    pub records: Vec<RecoveryRecord>,
    /// Live segments found.
    pub segments: u64,
    /// Torn frames discarded from the final segment's tail (0 or 1: a
    /// tear is one partially-written frame).
    pub truncated_records: u64,
    /// Bytes the tear spanned.
    pub truncated_bytes: u64,
    /// Sequence number of the segment that carried the tear, if any.
    pub truncated_segment: Option<u64>,
    /// Index into `records` of the last [`RecoveryRecord::SnapshotBoundary`].
    pub boundary: Option<usize>,
    /// Sequence number of the segment holding that boundary.
    pub boundary_segment: Option<u64>,
}

impl Replay {
    /// The records that constitute live state: everything after the last
    /// snapshot boundary (or the whole log when none exists).
    pub fn effective(&self) -> &[RecoveryRecord] {
        let start = self.boundary.map(|i| i + 1).unwrap_or(0);
        &self.records[start..]
    }

    /// Crashes recorded in the live view — the cursor into the fault
    /// plan's ordered crash schedule.
    pub fn crash_count(&self) -> u64 {
        self.effective()
            .iter()
            .filter(|r| matches!(r, RecoveryRecord::CrashRecorded { .. }))
            .count() as u64
    }

    /// True when the live view says the job already ran to completion.
    pub fn completed(&self) -> bool {
        self.effective()
            .iter()
            .any(|r| matches!(r, RecoveryRecord::JobCompleted))
    }

    /// The fingerprint the live view's `JobStarted` record carries.
    pub fn fingerprint(&self) -> Option<u64> {
        self.effective().iter().find_map(|r| match r {
            RecoveryRecord::JobStarted { fingerprint } => Some(*fingerprint),
            _ => None,
        })
    }
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

struct Writer {
    seq: u64,
    file: File,
    bytes: u64,
    /// When set, every write first re-reads the lease file and verifies
    /// it still carries this epoch: `(lease_path, held_epoch)`.
    fence: Option<(PathBuf, u64)>,
}

/// A segmented write-ahead log rooted at one directory.
///
/// All appends go through a single mutex; [`RecoveryLog::append_batch`]
/// is the group-commit path the wave loop uses.
pub struct RecoveryLog {
    dir: PathBuf,
    policy: RecoveryPolicy,
    inner: Mutex<Writer>,
}

impl std::fmt::Debug for RecoveryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryLog")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

fn io_err(context: &str, err: std::io::Error) -> XtractError {
    XtractError::Internal {
        reason: format!("recovery log {context}: {err}"),
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

/// Live segment sequence numbers under `dir`, sorted ascending.
fn list_segments(dir: &Path) -> Result<Vec<u64>> {
    let mut seqs = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("list", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        {
            if let Ok(seq) = stem.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Frames `record` into `buf` as `[len][crc][payload]`.
fn frame_into(buf: &mut Vec<u8>, record: &RecoveryRecord) -> Result<()> {
    let payload = serde_json::to_vec(record).map_err(|e| XtractError::Internal {
        reason: format!("recovery record serialization: {e}"),
    })?;
    if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(XtractError::Internal {
            reason: format!(
                "recovery record of {} bytes exceeds frame cap",
                payload.len()
            ),
        });
    }
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    Ok(())
}

/// Outcome of decoding one segment's bytes.
struct SegmentScan {
    records: Vec<RecoveryRecord>,
    /// Offset of the first invalid byte (== `buf.len()` when clean).
    valid_len: usize,
    torn: bool,
}

fn scan_segment(buf: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < buf.len() {
        let rest = buf.len() - off;
        if rest < HEADER_BYTES {
            return SegmentScan {
                records,
                valid_len: off,
                torn: true,
            };
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("4 bytes"));
        if len as u64 > MAX_FRAME_BYTES as u64 || rest - HEADER_BYTES < len {
            return SegmentScan {
                records,
                valid_len: off,
                torn: true,
            };
        }
        let payload = &buf[off + HEADER_BYTES..off + HEADER_BYTES + len];
        if crc32(payload) != crc {
            return SegmentScan {
                records,
                valid_len: off,
                torn: true,
            };
        }
        match serde_json::from_slice::<RecoveryRecord>(payload) {
            Ok(record) => records.push(record),
            Err(_) => {
                return SegmentScan {
                    records,
                    valid_len: off,
                    torn: true,
                }
            }
        }
        off += HEADER_BYTES + len;
    }
    SegmentScan {
        records,
        valid_len: off,
        torn: false,
    }
}

/// Read-only replay of the segments under `dir`: tolerates (and reports,
/// but does not repair) a torn tail on the final segment. Torn bytes in
/// any earlier segment are corruption.
fn scan_dir(dir: &Path) -> Result<Replay> {
    let seqs = list_segments(dir)?;
    let mut replay = Replay {
        segments: seqs.len() as u64,
        ..Replay::default()
    };
    let last = seqs.last().copied();
    for seq in &seqs {
        let path = segment_path(dir, *seq);
        let buf = std::fs::read(&path).map_err(|e| io_err("read segment", e))?;
        let scan = scan_segment(&buf);
        if scan.torn {
            if Some(*seq) != last {
                return Err(XtractError::CheckpointCorrupt {
                    reason: format!(
                        "recovery segment {seq} has invalid bytes at offset {} but is not \
                         the final segment",
                        scan.valid_len
                    ),
                });
            }
            replay.truncated_records = 1;
            replay.truncated_bytes = (buf.len() - scan.valid_len) as u64;
            replay.truncated_segment = Some(*seq);
        }
        for record in scan.records {
            if matches!(record, RecoveryRecord::SnapshotBoundary) {
                replay.boundary = Some(replay.records.len());
                replay.boundary_segment = Some(*seq);
            }
            replay.records.push(record);
        }
    }
    Ok(replay)
}

impl RecoveryLog {
    /// Opens (or creates) the log at `dir`, replaying whatever is there.
    ///
    /// A torn tail on the final segment is truncated on disk — repeated
    /// opens are idempotent — and reported in the returned [`Replay`].
    pub fn open(dir: impl Into<PathBuf>, policy: RecoveryPolicy) -> Result<(Self, Replay)> {
        policy
            .validate()
            .map_err(|reason| XtractError::InvalidJob { reason })?;
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create dir", e))?;
        let replay = scan_dir(&dir)?;
        let seqs = list_segments(&dir)?;
        let (seq, file, bytes) = match seqs.last() {
            None => {
                let path = segment_path(&dir, 0);
                let file = OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| io_err("create segment", e))?;
                (0, file, 0)
            }
            Some(&seq) => {
                let path = segment_path(&dir, seq);
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err("open segment", e))?;
                let len = file
                    .metadata()
                    .map_err(|e| io_err("stat segment", e))?
                    .len();
                let valid = len
                    - if replay.truncated_segment == Some(seq) {
                        replay.truncated_bytes
                    } else {
                        0
                    };
                if valid < len {
                    file.set_len(valid)
                        .map_err(|e| io_err("truncate tear", e))?;
                    file.sync_data().map_err(|e| io_err("sync truncation", e))?;
                }
                use std::io::Seek;
                let mut file = file;
                file.seek(std::io::SeekFrom::End(0))
                    .map_err(|e| io_err("seek", e))?;
                (seq, file, valid)
            }
        };
        Ok((
            Self {
                dir,
                policy,
                inner: Mutex::new(Writer {
                    seq,
                    file,
                    bytes,
                    fence: None,
                }),
            },
            replay,
        ))
    }

    /// Fences every future write to this log against `lease`: each group
    /// commit re-reads the lease file under the writer lock and fails
    /// with [`XtractError::LeaseFenced`] — before a single byte lands —
    /// if the directory's epoch has moved past the lease's. This is the
    /// zombie-writer guard for cross-process shard workers: a worker
    /// whose WAL was preempted and adopted by a sibling cannot corrupt
    /// the adopted log.
    pub fn set_fence(&self, lease: &LogDirLease) {
        self.inner.lock().fence = Some((lease.lease_path().to_path_buf(), lease.epoch()));
    }

    fn check_fence(&self, w: &Writer) -> Result<()> {
        if let Some((path, held)) = &w.fence {
            let current = read_lease_file(path).epoch;
            if current != *held {
                return Err(XtractError::LeaseFenced {
                    dir: self.dir.display().to_string(),
                    held: *held,
                    current,
                });
            }
        }
        Ok(())
    }

    /// Read-only scan of a log directory: replays every valid record and
    /// reports (without repairing) a torn tail. Tests use this to account
    /// for `recovery.replayed` / `recovery.truncated` independently of
    /// the orchestrator.
    pub fn scan(dir: impl AsRef<Path>) -> Result<Replay> {
        scan_dir(dir.as_ref())
    }

    /// The log's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The policy this log runs under.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Live segments on disk right now.
    pub fn segment_count(&self) -> Result<u64> {
        Ok(list_segments(&self.dir)?.len() as u64)
    }

    /// Appends one record (a group commit of one).
    pub fn append(&self, record: &RecoveryRecord) -> Result<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Group commit: frames every record into one buffer and pays one
    /// lock, one write, and at most one sync for the whole batch. Empty
    /// batches are free.
    pub fn append_batch(&self, records: &[RecoveryRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::with_capacity(records.len() * 64);
        for record in records {
            frame_into(&mut buf, record)?;
        }
        let mut w = self.inner.lock();
        self.check_fence(&w)?;
        if w.bytes >= self.policy.segment_bytes {
            self.rotate(&mut w)?;
        }
        w.file.write_all(&buf).map_err(|e| io_err("append", e))?;
        w.bytes += buf.len() as u64;
        if self.policy.sync_each_commit {
            w.file.sync_data().map_err(|e| io_err("sync", e))?;
        }
        Ok(())
    }

    /// Chaos hook: writes a deliberately torn frame — a valid header
    /// followed by a truncated payload — and syncs it, simulating a crash
    /// mid-`write(2)`. The next [`RecoveryLog::open`] must truncate
    /// exactly this frame. The caller is expected to abandon this log
    /// object immediately (the kill it simulates ends the run).
    pub fn append_torn(&self, record: &RecoveryRecord) -> Result<()> {
        let mut buf = Vec::new();
        frame_into(&mut buf, record)?;
        // Keep the header and half the payload: enough bytes that the
        // reader sees a frame, few enough that the CRC cannot match.
        let keep = HEADER_BYTES + (buf.len() - HEADER_BYTES) / 2;
        let mut w = self.inner.lock();
        self.check_fence(&w)?;
        w.file
            .write_all(&buf[..keep])
            .map_err(|e| io_err("append torn", e))?;
        w.bytes += keep as u64;
        w.file.sync_data().map_err(|e| io_err("sync torn", e))?;
        Ok(())
    }

    fn rotate(&self, w: &mut Writer) -> Result<()> {
        w.file
            .sync_data()
            .map_err(|e| io_err("sync on rotate", e))?;
        let seq = w.seq + 1;
        let path = segment_path(&self.dir, seq);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("rotate", e))?;
        self.sync_dir()?;
        w.seq = seq;
        w.file = file;
        w.bytes = 0;
        Ok(())
    }

    fn sync_dir(&self) -> Result<()> {
        // Make segment creation/removal durable before depending on it.
        let dir = File::open(&self.dir).map_err(|e| io_err("open dir", e))?;
        dir.sync_all().map_err(|e| io_err("sync dir", e))?;
        Ok(())
    }

    /// Phase one of compaction: writes `snapshot` (prefixed with
    /// [`RecoveryRecord::SnapshotBoundary`]) into a fresh segment, syncs
    /// it durably, and moves the writer there. The superseded segments
    /// are *still on disk* — a crash here loses nothing, because replay
    /// resets at the boundary. Returns the snapshot segment's sequence
    /// number to pass to [`RecoveryLog::finish_compaction`].
    pub fn begin_compaction(&self, snapshot: &[RecoveryRecord]) -> Result<u64> {
        let mut buf = Vec::with_capacity(snapshot.len() * 64 + 64);
        frame_into(&mut buf, &RecoveryRecord::SnapshotBoundary)?;
        for record in snapshot {
            frame_into(&mut buf, record)?;
        }
        let mut w = self.inner.lock();
        self.check_fence(&w)?;
        let seq = w.seq + 1;
        let path = segment_path(&self.dir, seq);
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("create snapshot segment", e))?;
        file.write_all(&buf)
            .map_err(|e| io_err("write snapshot", e))?;
        // The snapshot is the new root of truth: always sync it (and the
        // directory entry) regardless of the per-commit sync policy.
        file.sync_data().map_err(|e| io_err("sync snapshot", e))?;
        self.sync_dir()?;
        w.seq = seq;
        w.file = file;
        w.bytes = buf.len() as u64;
        Ok(seq)
    }

    /// Phase two of compaction: unlinks every segment older than
    /// `keep_seq`. Safe to call on a later resume to finish a compaction
    /// a crash interrupted. Returns how many segments were removed.
    pub fn finish_compaction(&self, keep_seq: u64) -> Result<u64> {
        let mut removed = 0;
        for seq in list_segments(&self.dir)? {
            if seq < keep_seq {
                std::fs::remove_file(segment_path(&self.dir, seq))
                    .map_err(|e| io_err("unlink segment", e))?;
                removed += 1;
            }
        }
        if removed > 0 {
            self.sync_dir()?;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointImage, CheckpointStore};
    use proptest::prelude::*;
    use xtract_types::FailureReason;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xtract-recovery-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn md(k: &str) -> Metadata {
        let mut m = Metadata::new();
        m.insert(k, 1);
        m
    }

    fn step(f: u64, e: &str) -> RecoveryRecord {
        RecoveryRecord::StepCompleted {
            family: FamilyId::new(f),
            kind: ExtractorKind::Keyword,
            metadata: Arc::new(md(e)),
            discoveries: Vec::new(),
        }
    }

    /// The pre-`Arc` shape of `StepCompleted`, kept as a shadow type so
    /// this test proves the `Arc<Metadata>` de-churn changed nothing on
    /// disk: same JSON bytes out, and legacy bytes replay into the same
    /// record.
    #[test]
    fn arc_metadata_keeps_the_wal_frame_and_replay_unchanged() {
        #[derive(Serialize)]
        #[serde(tag = "type", rename_all = "snake_case")]
        #[allow(dead_code)] // fields exist only to be serialized
        enum LegacyRecord {
            StepCompleted {
                family: FamilyId,
                kind: ExtractorKind,
                metadata: Metadata,
                discoveries: Vec<(String, FileType)>,
            },
        }
        let discoveries = vec![("/f/a.csv".to_string(), FileType::Tabular)];
        let record = RecoveryRecord::StepCompleted {
            family: FamilyId::new(3),
            kind: ExtractorKind::Keyword,
            metadata: Arc::new(md("kw")),
            discoveries: discoveries.clone(),
        };
        let legacy = LegacyRecord::StepCompleted {
            family: FamilyId::new(3),
            kind: ExtractorKind::Keyword,
            metadata: md("kw"),
            discoveries,
        };
        let now = serde_json::to_vec(&record).unwrap();
        let before = serde_json::to_vec(&legacy).unwrap();
        assert_eq!(now, before, "Arc must serialize transparently");
        // Bytes written by a pre-Arc orchestrator replay bit-identically.
        let replayed: RecoveryRecord = serde_json::from_slice(&before).unwrap();
        assert_eq!(replayed, record);
        // And a log round trip through the real framing agrees too.
        let dir = tempdir("arc-frame");
        let policy = RecoveryPolicy::default();
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        log.append_batch(std::slice::from_ref(&record)).unwrap();
        drop(log);
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.records, vec![record]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tempdir("roundtrip");
        let policy = RecoveryPolicy::default();
        let (log, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert!(replay.records.is_empty());
        let records = vec![
            RecoveryRecord::JobStarted { fingerprint: 7 },
            RecoveryRecord::CrawlCompleted {
                crawled_files: 10,
                groups: 5,
                redundant_files: 1,
            },
            step(1, "keyword"),
            RecoveryRecord::WaveCommitted { wave: 0 },
        ];
        for r in &records {
            log.append(r).unwrap();
        }
        drop(log);
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.truncated_records, 0);
        assert_eq!(replay.fingerprint(), Some(7));
        assert!(!replay.completed());
    }

    #[test]
    fn group_commit_batches_replay_identically_to_singles() {
        let dir = tempdir("batch");
        let policy = RecoveryPolicy::default();
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        let batch = vec![
            step(1, "keyword"),
            step(1, "tabular"),
            RecoveryRecord::RetryCharged {
                family: FamilyId::new(1),
                amount: 2,
            },
            RecoveryRecord::WaveCommitted { wave: 3 },
        ];
        log.append_batch(&batch).unwrap();
        log.append_batch(&[]).unwrap(); // free no-op
        drop(log);
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.records, batch);
    }

    #[test]
    fn small_segments_rotate_and_replay_across_files() {
        let dir = tempdir("rotate");
        let policy = RecoveryPolicy {
            segment_bytes: 96,
            ..RecoveryPolicy::default()
        };
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        let records: Vec<RecoveryRecord> = (0..20).map(|i| step(i, "keyword")).collect();
        for r in &records {
            log.append(r).unwrap();
        }
        assert!(log.segment_count().unwrap() > 1, "rotation never happened");
        drop(log);
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.records, records);
        assert!(replay.segments > 1);
    }

    #[test]
    fn torn_tail_is_truncated_once_and_opens_are_idempotent() {
        let dir = tempdir("torn");
        let policy = RecoveryPolicy::default();
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        log.append(&step(1, "keyword")).unwrap();
        log.append(&step(2, "keyword")).unwrap();
        log.append_torn(&RecoveryRecord::WaveCommitted { wave: 1 })
            .unwrap();
        drop(log);
        // Scan sees the tear without repairing it.
        let scanned = RecoveryLog::scan(&dir).unwrap();
        assert_eq!(scanned.truncated_records, 1);
        assert_eq!(scanned.records.len(), 2);
        // Open truncates the tear on disk.
        let (log, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.truncated_records, 1);
        assert!(replay.truncated_bytes > 0);
        assert_eq!(replay.records, vec![step(1, "keyword"), step(2, "keyword")]);
        // Appends continue cleanly after the repair...
        log.append(&step(3, "keyword")).unwrap();
        drop(log);
        // ...and the next open sees no tear at all.
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.truncated_records, 0);
        assert_eq!(
            replay.records,
            vec![step(1, "keyword"), step(2, "keyword"), step(3, "keyword")]
        );
    }

    #[test]
    fn torn_bytes_in_a_non_final_segment_are_corruption() {
        let dir = tempdir("corrupt");
        let policy = RecoveryPolicy {
            segment_bytes: 64,
            ..RecoveryPolicy::default()
        };
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        for i in 0..8 {
            log.append(&step(i, "keyword")).unwrap();
        }
        assert!(log.segment_count().unwrap() > 1);
        drop(log);
        // Flip a payload byte in the FIRST segment.
        let first = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&first).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xff;
        std::fs::write(&first, bytes).unwrap();
        let err = RecoveryLog::open(&dir, policy).unwrap_err();
        assert!(
            matches!(err, XtractError::CheckpointCorrupt { .. }),
            "{err}"
        );
    }

    #[test]
    fn compaction_resets_replay_at_the_boundary() {
        let dir = tempdir("compact");
        let policy = RecoveryPolicy {
            segment_bytes: 96,
            ..RecoveryPolicy::default()
        };
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        for i in 0..20 {
            log.append(&step(i, "keyword")).unwrap();
        }
        let before = log.segment_count().unwrap();
        assert!(before > 1);
        let snapshot = vec![
            RecoveryRecord::JobStarted { fingerprint: 9 },
            step(100, "tabular"),
        ];
        let keep = log.begin_compaction(&snapshot).unwrap();
        let removed = log.finish_compaction(keep).unwrap();
        assert_eq!(removed, before);
        assert_eq!(log.segment_count().unwrap(), 1);
        // Post-compaction appends land after the snapshot.
        log.append(&step(101, "keyword")).unwrap();
        drop(log);
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(
            replay.effective(),
            &[
                RecoveryRecord::JobStarted { fingerprint: 9 },
                step(100, "tabular"),
                step(101, "keyword"),
            ]
        );
        assert_eq!(replay.fingerprint(), Some(9));
    }

    #[test]
    fn crash_between_snapshot_and_unlink_loses_nothing() {
        let dir = tempdir("midcompact");
        let policy = RecoveryPolicy {
            segment_bytes: 96,
            ..RecoveryPolicy::default()
        };
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        for i in 0..20 {
            log.append(&step(i, "keyword")).unwrap();
        }
        let stale = log.segment_count().unwrap();
        let snapshot = vec![RecoveryRecord::JobStarted { fingerprint: 3 }, step(7, "kw")];
        let keep = log.begin_compaction(&snapshot).unwrap();
        // Simulated crash: the log object dies before finish_compaction.
        drop(log);
        let (log, replay) = RecoveryLog::open(&dir, policy).unwrap();
        // Stale segments are still there, but the boundary hides them.
        assert_eq!(replay.segments, stale + 1);
        assert_eq!(replay.boundary_segment, Some(keep));
        assert_eq!(
            replay.effective(),
            &[RecoveryRecord::JobStarted { fingerprint: 3 }, step(7, "kw")]
        );
        // A later resume finishes the interrupted unlink.
        let removed = log
            .finish_compaction(replay.boundary_segment.unwrap())
            .unwrap();
        assert_eq!(removed, stale);
        assert_eq!(log.segment_count().unwrap(), 1);
    }

    #[test]
    fn crash_count_is_the_schedule_cursor_and_survives_compaction() {
        let dir = tempdir("crashcount");
        let policy = RecoveryPolicy::default();
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        log.append(&RecoveryRecord::CrashRecorded {
            point: "after-crawl".into(),
        })
        .unwrap();
        let keep = log
            .begin_compaction(&[RecoveryRecord::CrashRecorded {
                point: "after-crawl".into(),
            }])
            .unwrap();
        log.finish_compaction(keep).unwrap();
        log.append(&RecoveryRecord::CrashRecorded {
            point: "mid-wave".into(),
        })
        .unwrap();
        drop(log);
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.crash_count(), 2);
    }

    #[test]
    fn log_dir_lease_is_exclusive_until_dropped() {
        let dir = tempdir("lease-excl");
        let lease = LogDirLease::acquire(&dir).unwrap();
        // A second claim on the same directory — even spelled through a
        // relative hop — is refused with the typed busy error.
        let aliased = dir.join("sub").join("..");
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        let err = LogDirLease::acquire(&aliased).unwrap_err();
        assert!(matches!(err, XtractError::RecoveryLogBusy { .. }));
        // Distinct directories do not conflict.
        let other = tempdir("lease-other");
        let _unrelated = LogDirLease::acquire(&other).unwrap();
        drop(lease);
        let _reclaimed = LogDirLease::acquire(&dir).unwrap();
    }

    #[test]
    fn shard_subdir_leases_nest_under_the_root_lease() {
        // A sharded job holds the root lease (taken at submit) while each
        // shard runner leases its own `shard-{k}/` subdirectory. The
        // canonical-path keying must treat those as distinct claims: the
        // shards never collide with the root or with each other, but a
        // duplicate claim on one shard's subdir is still refused typed.
        let dir = tempdir("lease-nested");
        let root = LogDirLease::acquire(&dir).unwrap();
        let s0 = dir.join("shard-0");
        let s1 = dir.join("shard-1");
        std::fs::create_dir_all(&s0).unwrap();
        std::fs::create_dir_all(&s1).unwrap();
        let lease0 = LogDirLease::acquire(&s0).unwrap();
        let _lease1 = LogDirLease::acquire(&s1).unwrap();
        // A second writer on shard-0 — even via a relative hop — is the
        // exact collision the lease exists to prevent.
        let aliased = s1.join("..").join("shard-0");
        let err = LogDirLease::acquire(&aliased).unwrap_err();
        assert!(matches!(err, XtractError::RecoveryLogBusy { .. }), "{err}");
        // Releasing the shard lease frees the subdir while the root
        // lease stays held.
        drop(lease0);
        let _reclaimed = LogDirLease::acquire(&s0).unwrap();
        drop(root);
    }

    #[test]
    fn stale_lease_from_a_dead_process_is_fenced_not_busy() {
        // Regression: a lease file left by a SIGKILLed process used to
        // block restart forever with RecoveryLogBusy. A dead holder must
        // be *fenced* — epoch bumped, directory taken — instead.
        let dir = tempdir("lease-stale");
        // Fabricated corpse: no Linux kernel hands out pids this large
        // (pid_max caps at 2^22).
        std::fs::write(dir.join("wal.lease"), r#"{"epoch":7,"pid":999999999}"#).unwrap();
        let lease =
            LogDirLease::acquire(&dir).expect("dead holder must be fenced, not refused busy");
        assert_eq!(lease.epoch(), 8, "fencing bumps past the corpse's epoch");
        drop(lease);
        // Release keeps the epoch high-water mark on disk…
        let again = LogDirLease::acquire(&dir).unwrap();
        assert_eq!(again.epoch(), 9, "epochs are monotonic across releases");
    }

    #[test]
    fn lease_held_by_a_live_foreign_process_is_busy_until_preempted() {
        let dir = tempdir("lease-live");
        // pid 1 (init) is alive on any Linux host this test runs on.
        std::fs::write(dir.join("wal.lease"), r#"{"epoch":3,"pid":1}"#).unwrap();
        let err = LogDirLease::acquire(&dir).unwrap_err();
        assert!(matches!(err, XtractError::RecoveryLogBusy { .. }), "{err}");
        // The coordinator's takeover path fences even a live holder.
        let lease = LogDirLease::preempt(&dir).unwrap();
        assert_eq!(lease.epoch(), 4);
    }

    #[test]
    fn zombie_writer_is_fenced_before_a_byte_lands() {
        let dir = tempdir("lease-zombie");
        let policy = RecoveryPolicy::default();
        let zombie_lease = LogDirLease::acquire(&dir).unwrap();
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        log.set_fence(&zombie_lease);
        // Epoch current: writes land normally.
        log.append(&step(1, "keyword")).unwrap();
        let seg_len = std::fs::metadata(segment_path(&dir, 0)).unwrap().len();
        // A sibling process fences the directory (the coordinator
        // declared this writer dead and adopted its WAL). Simulated by
        // advancing the lease file the way a foreign preempt would.
        let usurped = zombie_lease.epoch() + 1;
        std::fs::write(
            dir.join("wal.lease"),
            format!(r#"{{"epoch":{usurped},"pid":1}}"#),
        )
        .unwrap();
        // Every write path is now rejected typed, with nothing written.
        let err = log.append(&step(2, "keyword")).unwrap_err();
        assert!(
            matches!(err, XtractError::LeaseFenced { held, current, .. }
                if held == zombie_lease.epoch() && current == usurped),
            "{err}"
        );
        let err = log.append_torn(&step(3, "keyword")).unwrap_err();
        assert!(matches!(err, XtractError::LeaseFenced { .. }), "{err}");
        let err = log.begin_compaction(&[step(4, "keyword")]).unwrap_err();
        assert!(matches!(err, XtractError::LeaseFenced { .. }), "{err}");
        assert_eq!(
            std::fs::metadata(segment_path(&dir, 0)).unwrap().len(),
            seg_len,
            "a fenced write must not land a single byte"
        );
        // The zombie's release must not clobber the successor's fence.
        drop(zombie_lease);
        let after = std::fs::read_to_string(dir.join("wal.lease")).unwrap();
        assert!(after.contains(&format!("\"epoch\":{usurped}")), "{after}");
        // And the adopted log replays only what landed before the fence.
        drop(log);
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.records, vec![step(1, "keyword")]);
    }

    #[test]
    fn family_migrated_round_trips_and_is_side_symmetric() {
        use xtract_types::Group;
        let dir = tempdir("migrate");
        let policy = RecoveryPolicy::default();
        let family = Family::new(
            FamilyId::new(5),
            Vec::new(),
            vec![Group::new(xtract_types::GroupId::new(1), Vec::new())],
            EndpointId::new(0),
        );
        let out = RecoveryRecord::FamilyMigrated {
            family: family.clone(),
            from: 1,
            to: 0,
            adopted: false,
            steps: vec![MigratedStep {
                kind: ExtractorKind::Keyword,
                metadata: Arc::new(md("kw")),
                discoveries: vec![("/data/a.csv".into(), FileType::Tabular)],
            }],
            charges: 2,
        };
        let RecoveryRecord::FamilyMigrated {
            family: f2,
            adopted,
            ..
        } = out.clone()
        else {
            unreachable!()
        };
        let inr = RecoveryRecord::FamilyMigrated {
            family: f2,
            from: 1,
            to: 0,
            adopted: !adopted,
            steps: vec![MigratedStep {
                kind: ExtractorKind::Keyword,
                metadata: Arc::new(md("kw")),
                discoveries: vec![("/data/a.csv".into(), FileType::Tabular)],
            }],
            charges: 2,
        };
        let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
        log.append_batch(&[out.clone(), inr.clone()]).unwrap();
        drop(log);
        let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
        assert_eq!(replay.records, vec![out, inr]);
        assert_eq!(replay.records[0], replay.records[1].clone().flip_side());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_fingerprint_ignores_the_fault_plan() {
        use xtract_types::{ContainerRuntime, EndpointSpec, FaultPlan};
        let ep = EndpointSpec {
            endpoint: EndpointId::new(0),
            read_path: "/data".into(),
            store_path: Some("/tmp/x".into()),
            available_bytes: 1 << 30,
            workers: Some(2),
            runtime: ContainerRuntime::Docker,
        };
        let spec = JobSpec::single_endpoint(ep, "/data");
        let base = spec_fingerprint(&spec);
        let mut chaotic = spec.clone();
        chaotic.fault_plan = Some(FaultPlan::new(17));
        // The crash schedule is instrumentation, not identity.
        assert_eq!(spec_fingerprint(&chaotic), base);
        let mut other = spec.clone();
        other.max_family_size = spec.max_family_size + 1;
        assert_ne!(spec_fingerprint(&other), base);
    }

    // -- proptest: CheckpointImage through JSON and through the log -----

    fn arb_metadata() -> impl Strategy<Value = Metadata> {
        proptest::collection::vec(("[a-z]{1,8}", -1000i64..1000), 0..4).prop_map(|pairs| {
            let mut m = Metadata::new();
            for (k, v) in pairs {
                m.insert(k, v);
            }
            m
        })
    }

    fn arb_reason() -> impl Strategy<Value = FailureReason> {
        prop_oneof![
            "[a-z ]{0,12}".prop_map(|reason| FailureReason::Internal { reason }),
            (0u64..8).prop_map(|e| FailureReason::NoHealthyEndpoint {
                endpoint: EndpointId::new(e)
            }),
            ("[a-z]{1,6}", "[a-z ]{0,12}").prop_map(|(schema, reason)| {
                FailureReason::ValidationRejected { schema, reason }
            }),
        ]
    }

    fn arb_dead_letter() -> impl Strategy<Value = DeadLetter> {
        (
            0u64..64,
            arb_reason(),
            0u32..50,
            proptest::collection::vec((0u64..9, 0u64..4, "[a-z ]{0,10}"), 0..3),
        )
            .prop_map(|(family, reason, attempts, events)| {
                let mut letter = DeadLetter::new(FamilyId::new(family), reason, attempts);
                letter.timeline = events
                    .into_iter()
                    .map(|(wave, ep, note)| xtract_types::FailureEvent {
                        wave,
                        endpoint: EndpointId::new(ep),
                        note,
                    })
                    .collect();
                letter
            })
    }

    fn arb_image() -> impl Strategy<Value = CheckpointImage> {
        (
            // Extractor names are drawn from the real taxonomy so the
            // image ↔ WAL mapping below can recover the typed kind.
            proptest::collection::vec(
                (0u64..64, 0usize..ExtractorKind::ALL.len(), arb_metadata()),
                0..12,
            ),
            proptest::collection::vec(arb_dead_letter(), 0..4),
        )
            .prop_map(|(entries, mut dead_letters)| {
                // The store the image came from holds one metadata per
                // (family, extractor) and one letter per family: dedupe
                // the raw generated lists the same way.
                let store = CheckpointStore::new();
                for (f, e, m) in entries {
                    store.flush(FamilyId::new(f), ExtractorKind::ALL[e].name(), Arc::new(m));
                }
                dead_letters.sort_by_key(|l| l.family);
                dead_letters.dedup_by_key(|l| l.family);
                let mut image = store.image();
                image.dead_letters = dead_letters;
                image
            })
    }

    fn kind_by_name(name: &str) -> ExtractorKind {
        ExtractorKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == name)
            .expect("image entries use taxonomy names")
    }

    /// An image encoded as WAL records, the way the service journals it.
    fn image_to_records(image: &CheckpointImage) -> Vec<RecoveryRecord> {
        let mut records = Vec::new();
        for e in &image.entries {
            records.push(RecoveryRecord::StepCompleted {
                family: e.family,
                kind: kind_by_name(&e.extractor),
                metadata: Arc::clone(&e.metadata),
                discoveries: Vec::new(),
            });
        }
        for l in &image.dead_letters {
            records.push(RecoveryRecord::DeadLettered { letter: l.clone() });
        }
        records
    }

    /// Rebuilds an image from replayed records.
    fn records_to_image(records: &[RecoveryRecord]) -> CheckpointImage {
        let store = CheckpointStore::new();
        for r in records {
            match r {
                RecoveryRecord::StepCompleted {
                    family,
                    kind,
                    metadata,
                    ..
                } => store.restore(*family, kind.name(), Arc::clone(metadata)),
                RecoveryRecord::DeadLettered { letter } => store.record_dead_letter(letter.clone()),
                _ => {}
            }
        }
        store.image()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn image_roundtrips_through_json(image in arb_image()) {
            let json = serde_json::to_vec(&image).unwrap();
            let back: CheckpointImage = serde_json::from_slice(&json).unwrap();
            prop_assert_eq!(back, image);
        }

        #[test]
        fn image_roundtrips_through_the_log(image in arb_image(), seg in 64u64..4096) {
            let dir = tempdir("prop-log");
            let policy = RecoveryPolicy { segment_bytes: seg, ..RecoveryPolicy::default() };
            let records = image_to_records(&image);
            {
                let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
                log.append_batch(&records).unwrap();
            }
            let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
            prop_assert_eq!(replay.truncated_records, 0);
            let mut sorted_letters = records_to_image(&replay.records);
            let mut expect = image.clone();
            // record_dead_letter preserves arrival order; the generated
            // image's letters are sorted by family already.
            sorted_letters.dead_letters.sort_by_key(|l| l.family);
            expect.dead_letters.sort_by_key(|l| l.family);
            prop_assert_eq!(sorted_letters, expect);
            std::fs::remove_dir_all(&dir).ok();
        }

        #[test]
        fn torn_tail_recovers_every_record_before_the_tear(
            image in arb_image(),
            torn_family in 0u64..64,
        ) {
            let dir = tempdir("prop-torn");
            let policy = RecoveryPolicy::default();
            let records = image_to_records(&image);
            {
                let (log, _) = RecoveryLog::open(&dir, policy).unwrap();
                log.append_batch(&records).unwrap();
                log.append_torn(&step(torn_family, "torn")).unwrap();
            }
            let (_, replay) = RecoveryLog::open(&dir, policy).unwrap();
            prop_assert_eq!(replay.truncated_records, 1);
            prop_assert_eq!(replay.records.len(), records.len());
            prop_assert_eq!(records_to_image(&replay.records), records_to_image(&records));
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
