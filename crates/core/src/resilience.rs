//! Recovery machinery: per-endpoint circuit breakers and per-family retry
//! ledgers.
//!
//! The paper's fault handling is reactive — funcX heartbeats surface lost
//! tasks and the orchestrator resubmits (§5.8.1). This module adds the
//! policy layer on top: a [`HealthTracker`] watches each endpoint and
//! opens a circuit breaker after consecutive failures so the orchestrator
//! stops sending work into a black hole (and can reroute families to a
//! healthy endpoint instead), and a [`RetryLedger`] bounds the total
//! attempts any one family may consume so a permanently-broken family
//! terminates in a dead letter rather than a livelock.
//!
//! Time is logical: the tracker ticks once per extraction wave (or sim
//! step), so breaker cooldowns are reproducible — no wall clocks.

use std::collections::HashMap;
use std::sync::Arc;
use xtract_obs::{Event, EventJournal};
use xtract_types::{EndpointId, FamilyId, HedgePolicy, QuotaResource, RetryPolicy};

use crate::tenancy::TenantCtx;

/// Circuit-breaker state for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow normally.
    Closed,
    /// Tripped: the endpoint receives no new work until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: one probe may go through; success re-closes,
    /// failure re-opens.
    HalfOpen,
}

#[derive(Debug, Default, Clone, Copy)]
struct EndpointHealth {
    consecutive_failures: u32,
    /// Tick at which the breaker last opened; `None` while closed.
    opened_at: Option<u64>,
    /// Lifetime failure count (observability).
    total_failures: u64,
    /// Whether this open cycle's half-open crossing has been journaled;
    /// cleared whenever the breaker (re-)opens or closes.
    reported_half_open: bool,
    /// Decaying straggler score: deadline breaches add
    /// [`HedgePolicy::breach_weight`], every tick and every clean
    /// completion multiplies by [`HedgePolicy::straggler_decay`]. Crossing
    /// [`HedgePolicy::quarantine_threshold`] quarantines the endpoint —
    /// the offloader deprioritizes it for new placements and hedges long
    /// before the hard-failure breaker would trip.
    straggler_score: f64,
}

/// Tracks endpoint health on a logical clock.
#[derive(Debug)]
pub struct HealthTracker {
    threshold: u32,
    cooldown: u64,
    clock: u64,
    breach_weight: f64,
    straggler_decay: f64,
    quarantine_threshold: f64,
    health: HashMap<EndpointId, EndpointHealth>,
    /// Optional sink for breaker state-transition events.
    journal: Option<Arc<EventJournal>>,
}

impl HealthTracker {
    /// A tracker with the policy's breaker settings and default
    /// quarantine scoring (see [`HealthTracker::with_quarantine`]).
    pub fn new(policy: &RetryPolicy) -> Self {
        let hedge = HedgePolicy::default();
        Self {
            threshold: policy.breaker_threshold.max(1),
            cooldown: policy.breaker_cooldown,
            clock: 0,
            breach_weight: hedge.breach_weight,
            straggler_decay: hedge.straggler_decay,
            quarantine_threshold: hedge.quarantine_threshold,
            health: HashMap::new(),
            journal: None,
        }
    }

    /// Adopts `hedge`'s straggler-scoring knobs (breach weight, decay,
    /// quarantine threshold).
    pub fn with_quarantine(mut self, hedge: &HedgePolicy) -> Self {
        self.breach_weight = hedge.breach_weight;
        self.straggler_decay = hedge.straggler_decay;
        self.quarantine_threshold = hedge.quarantine_threshold;
        self
    }

    /// Like [`HealthTracker::new`], but breaker transitions (open,
    /// half-open, close) are also recorded in `journal`.
    pub fn with_journal(policy: &RetryPolicy, journal: Arc<EventJournal>) -> Self {
        let mut tracker = Self::new(policy);
        tracker.journal = Some(journal);
        tracker
    }

    fn journal_event(&self, event: Event) {
        if let Some(journal) = &self.journal {
            journal.record(event);
        }
    }

    /// Advances the logical clock (call once per wave/step). Straggler
    /// scores decay here, so quarantine is a statement about *recent*
    /// slowness, not lifetime history.
    pub fn tick(&mut self) {
        self.clock += 1;
        let decay = self.straggler_decay;
        for h in self.health.values_mut() {
            h.straggler_score *= decay;
        }
        if self.journal.is_some() {
            // Report each open cycle's half-open crossing once. The state
            // (not an exact clock equality) decides: a zero cooldown makes
            // the breaker half-open at open time, and a re-open from a
            // failed probe restarts the cycle mid-window — both would slip
            // past a `clock == opened_at + cooldown` check.
            let clock = self.clock;
            let cooldown = self.cooldown;
            let newly_half_open: Vec<EndpointId> = self
                .health
                .iter_mut()
                .filter_map(|(ep, h)| {
                    let half_open = h.opened_at.is_some_and(|at| clock >= at + cooldown);
                    if half_open && !h.reported_half_open {
                        h.reported_half_open = true;
                        Some(*ep)
                    } else {
                        None
                    }
                })
                .collect();
            for endpoint in newly_half_open {
                self.journal_event(Event::BreakerHalfOpen { endpoint });
            }
        }
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Records a failure at `endpoint`; opens the breaker once the
    /// consecutive-failure threshold is reached, and re-opens it when a
    /// half-open probe fails.
    pub fn record_failure(&mut self, endpoint: EndpointId) {
        let was_half_open = self.state(endpoint) == BreakerState::HalfOpen;
        let threshold = self.threshold;
        let clock = self.clock;
        let h = self.health.entry(endpoint).or_default();
        h.consecutive_failures += 1;
        h.total_failures += 1;
        if was_half_open || (h.opened_at.is_none() && h.consecutive_failures >= threshold) {
            h.opened_at = Some(clock);
            h.reported_half_open = false;
            self.journal_event(Event::BreakerOpened { endpoint });
        }
    }

    /// Records a success at `endpoint`: the breaker closes and the
    /// consecutive-failure count resets. A clean completion also decays
    /// the straggler score, so a quarantined endpoint that starts meeting
    /// deadlines again earns its way back into the placement pool.
    pub fn record_success(&mut self, endpoint: EndpointId) {
        let decay = self.straggler_decay;
        let h = self.health.entry(endpoint).or_default();
        h.consecutive_failures = 0;
        h.straggler_score *= decay;
        let was_open = h.opened_at.take().is_some();
        h.reported_half_open = false;
        if was_open {
            self.journal_event(Event::BreakerClosed { endpoint });
        }
    }

    /// Records a deadline breach at `endpoint`: the straggler score grows
    /// by the configured fractional breach weight. Breaches are *soft*
    /// evidence — they never touch the consecutive-failure count, so a
    /// merely-slow endpoint is deprioritized (quarantined) without ever
    /// tripping the hard-failure breaker.
    pub fn record_breach(&mut self, endpoint: EndpointId) {
        let weight = self.breach_weight;
        let h = self.health.entry(endpoint).or_default();
        h.straggler_score += weight;
    }

    /// The current decaying straggler score at `endpoint`.
    pub fn straggler_score(&self, endpoint: EndpointId) -> f64 {
        self.health
            .get(&endpoint)
            .map(|h| h.straggler_score)
            .unwrap_or(0.0)
    }

    /// True while `endpoint`'s straggler score sits at or above the
    /// quarantine threshold: the endpoint still accepts work (its breaker
    /// may be closed) but placement and hedging prefer any non-quarantined
    /// alternative.
    pub fn quarantined(&self, endpoint: EndpointId) -> bool {
        self.straggler_score(endpoint) >= self.quarantine_threshold
    }

    /// The breaker state at the current logical time. Unknown endpoints
    /// are healthy.
    pub fn state(&self, endpoint: EndpointId) -> BreakerState {
        match self.health.get(&endpoint).and_then(|h| h.opened_at) {
            None => BreakerState::Closed,
            Some(at) if self.clock >= at + self.cooldown => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// True when new work may be routed to `endpoint` (closed breaker or a
    /// half-open probe slot).
    pub fn available(&self, endpoint: EndpointId) -> bool {
        self.state(endpoint) != BreakerState::Open
    }

    /// Lifetime failures recorded at `endpoint`.
    pub fn failures(&self, endpoint: EndpointId) -> u64 {
        self.health
            .get(&endpoint)
            .map(|h| h.total_failures)
            .unwrap_or(0)
    }
}

/// Bounds the total retry attempts a family may consume across all of its
/// stages (transfers and extraction steps combined).
///
/// When the owning job belongs to a tenant, the ledger also charges each
/// attempt against the tenant's [`QuotaResource::RetryBudget`]: the
/// per-job budget still applies, but a tenant whose jobs collectively
/// burn through the tenant-wide allowance has further retries refused
/// across *all* of its jobs.
#[derive(Debug)]
pub struct RetryLedger {
    budget: u32,
    spent: HashMap<FamilyId, u32>,
    tenant: Option<Arc<TenantCtx>>,
}

impl RetryLedger {
    /// A ledger enforcing the policy's per-family budget.
    pub fn new(policy: &RetryPolicy) -> Self {
        Self {
            budget: policy.family_budget,
            spent: HashMap::new(),
            tenant: None,
        }
    }

    /// A ledger that additionally draws every attempt from `tenant`'s
    /// retry-budget quota.
    pub fn with_tenant(policy: &RetryPolicy, tenant: Arc<TenantCtx>) -> Self {
        Self {
            budget: policy.family_budget,
            spent: HashMap::new(),
            tenant: Some(tenant),
        }
    }

    /// Charges one attempt against `family`; returns `true` while the
    /// family is still within budget *and* the owning tenant (if any)
    /// still has tenant-wide retry allowance. A tenant-level refusal
    /// marks the family exhausted so callers see one consistent verdict.
    pub fn charge(&mut self, family: FamilyId) -> bool {
        let n = self.spent.entry(family).or_insert(0);
        *n += 1;
        if *n > self.budget {
            return false;
        }
        match &self.tenant {
            Some(t) if t.charge(QuotaResource::RetryBudget, 1).is_err() => {
                *n = self.budget + 1;
                false
            }
            _ => true,
        }
    }

    /// Attempts charged so far.
    pub fn attempts(&self, family: FamilyId) -> u32 {
        self.spent.get(&family).copied().unwrap_or(0)
    }

    /// Pre-charges `n` attempts against `family` without consulting the
    /// budget verdict: log replay re-applying charges a previous run
    /// already made (and already acted on). A family the previous run
    /// exhausted stays exhausted after rehydration.
    pub fn precharge(&mut self, family: FamilyId, n: u32) {
        *self.spent.entry(family).or_insert(0) += n;
    }

    /// True once the family has exhausted its budget.
    pub fn exhausted(&self, family: FamilyId) -> bool {
        self.attempts(family) > self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            breaker_threshold: 3,
            breaker_cooldown: 2,
            family_budget: 4,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut t = HealthTracker::new(&policy());
        let ep = EndpointId::new(1);
        assert_eq!(t.state(ep), BreakerState::Closed);
        t.record_failure(ep);
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::Closed);
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::Open);
        assert!(!t.available(ep));
        assert_eq!(t.failures(ep), 3);
    }

    #[test]
    fn cooldown_promotes_to_half_open_and_probe_decides() {
        let mut t = HealthTracker::new(&policy());
        let ep = EndpointId::new(1);
        for _ in 0..3 {
            t.record_failure(ep);
        }
        assert_eq!(t.state(ep), BreakerState::Open);
        t.tick();
        assert_eq!(t.state(ep), BreakerState::Open);
        t.tick();
        assert_eq!(t.state(ep), BreakerState::HalfOpen);
        assert!(t.available(ep));
        // A failed probe re-opens for a fresh cooldown.
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::Open);
        t.tick();
        t.tick();
        assert_eq!(t.state(ep), BreakerState::HalfOpen);
        // A successful probe closes.
        t.record_success(ep);
        assert_eq!(t.state(ep), BreakerState::Closed);
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut t = HealthTracker::new(&policy());
        let ep = EndpointId::new(0);
        t.record_failure(ep);
        t.record_failure(ep);
        t.record_success(ep);
        t.record_failure(ep);
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::Closed);
    }

    #[test]
    fn endpoints_are_tracked_independently() {
        let mut t = HealthTracker::new(&policy());
        for _ in 0..3 {
            t.record_failure(EndpointId::new(1));
        }
        assert_eq!(t.state(EndpointId::new(1)), BreakerState::Open);
        assert_eq!(t.state(EndpointId::new(2)), BreakerState::Closed);
    }

    #[test]
    fn journal_sees_every_breaker_transition() {
        let journal = Arc::new(EventJournal::default());
        let mut t = HealthTracker::with_journal(&policy(), journal.clone());
        let ep = EndpointId::new(9);
        for _ in 0..3 {
            t.record_failure(ep);
        }
        t.tick();
        t.tick(); // cooldown=2: breaker crosses into half-open here
        t.record_success(ep);
        // A later tick must not re-report the (now closed) breaker.
        t.tick();

        let kinds: Vec<&'static str> = journal
            .events()
            .iter()
            .map(|r| match r.event {
                Event::BreakerOpened { .. } => "opened",
                Event::BreakerHalfOpen { .. } => "half_open",
                Event::BreakerClosed { .. } => "closed",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["opened", "half_open", "closed"]);
    }

    fn journal_kinds(journal: &EventJournal) -> Vec<&'static str> {
        journal
            .events()
            .iter()
            .map(|r| match r.event {
                Event::BreakerOpened { .. } => "opened",
                Event::BreakerHalfOpen { .. } => "half_open",
                Event::BreakerClosed { .. } => "closed",
                _ => "other",
            })
            .collect()
    }

    #[test]
    fn zero_cooldown_half_open_is_still_journaled() {
        // Regression: the half-open report used to require the clock to
        // equal `opened_at + cooldown` exactly, so a zero-cooldown breaker
        // (half-open at open time) never journaled the transition.
        let journal = Arc::new(EventJournal::default());
        let p = RetryPolicy {
            breaker_threshold: 1,
            breaker_cooldown: 0,
            family_budget: 4,
            ..RetryPolicy::default()
        };
        let mut t = HealthTracker::with_journal(&p, journal.clone());
        let ep = EndpointId::new(3);
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::HalfOpen);
        t.tick();
        assert_eq!(journal_kinds(&journal), vec!["opened", "half_open"]);
        // Later ticks must not re-report the same open cycle.
        t.tick();
        t.tick();
        assert_eq!(journal_kinds(&journal), vec!["opened", "half_open"]);
    }

    #[test]
    fn reopened_breaker_journals_a_fresh_half_open() {
        let journal = Arc::new(EventJournal::default());
        let mut t = HealthTracker::with_journal(&policy(), journal.clone());
        let ep = EndpointId::new(4);
        for _ in 0..3 {
            t.record_failure(ep);
        }
        t.tick();
        t.tick(); // cooldown=2: half-open journaled here
        t.record_failure(ep); // failed probe re-opens a fresh cycle
        t.tick();
        t.tick(); // second cooldown elapses: half-open again
        t.record_success(ep);
        assert_eq!(
            journal_kinds(&journal),
            vec!["opened", "half_open", "opened", "half_open", "closed"]
        );
    }

    #[test]
    fn breaches_quarantine_without_tripping_the_breaker() {
        let hedge = HedgePolicy {
            breach_weight: 0.5,
            straggler_decay: 0.5,
            quarantine_threshold: 2.0,
            ..HedgePolicy::default()
        };
        let mut t = HealthTracker::new(&policy()).with_quarantine(&hedge);
        let ep = EndpointId::new(5);
        assert!(!t.quarantined(ep));
        for _ in 0..4 {
            t.record_breach(ep);
        }
        assert_eq!(t.straggler_score(ep), 2.0);
        assert!(t.quarantined(ep));
        // Soft evidence only: the hard-failure breaker stays closed.
        assert_eq!(t.state(ep), BreakerState::Closed);
        assert!(t.available(ep));
    }

    #[test]
    fn straggler_score_decays_on_ticks_and_clean_completions() {
        let hedge = HedgePolicy {
            breach_weight: 1.0,
            straggler_decay: 0.5,
            quarantine_threshold: 2.0,
            ..HedgePolicy::default()
        };
        let mut t = HealthTracker::new(&policy()).with_quarantine(&hedge);
        let ep = EndpointId::new(6);
        for _ in 0..4 {
            t.record_breach(ep);
        }
        assert!(t.quarantined(ep));
        t.tick();
        assert_eq!(t.straggler_score(ep), 2.0);
        assert!(t.quarantined(ep));
        // A clean completion decays the score further and lifts the
        // quarantine.
        t.record_success(ep);
        assert_eq!(t.straggler_score(ep), 1.0);
        assert!(!t.quarantined(ep));
    }

    #[test]
    fn ledger_enforces_budget() {
        let mut l = RetryLedger::new(&policy());
        let fam = FamilyId::new(7);
        for i in 1..=4 {
            assert!(l.charge(fam), "attempt {i} should fit the budget");
        }
        assert!(!l.charge(fam));
        assert!(l.exhausted(fam));
        assert_eq!(l.attempts(fam), 5);
        // Other families are unaffected.
        assert!(!l.exhausted(FamilyId::new(8)));
        assert!(l.charge(FamilyId::new(8)));
    }

    #[test]
    fn precharge_rehydrates_spent_attempts() {
        let mut l = RetryLedger::new(&policy()); // family_budget = 4
        let fam = FamilyId::new(9);
        l.precharge(fam, 3);
        assert_eq!(l.attempts(fam), 3);
        assert!(!l.exhausted(fam));
        // One live charge fits; the next one exhausts — exactly as if the
        // first three charges had happened in this process.
        assert!(l.charge(fam));
        assert!(!l.charge(fam));
        assert!(l.exhausted(fam));
        // Pre-charging past the budget leaves the family exhausted.
        let fam2 = FamilyId::new(10);
        l.precharge(fam2, 5);
        assert!(l.exhausted(fam2));
    }

    #[test]
    fn tenant_retry_quota_caps_charges_across_families() {
        use crate::tenancy::TenantRegistry;
        use xtract_types::{TenantQuota, TenantSpec};
        let registry = TenantRegistry::new(xtract_obs::Obs::new());
        let id = registry
            .register(TenantSpec::new("t", 1).with_quota(TenantQuota {
                max_retry_attempts: Some(3),
                ..TenantQuota::unlimited()
            }))
            .unwrap();
        let tenant = registry.get(id).unwrap();
        let mut l = RetryLedger::with_tenant(&policy(), tenant.clone());
        // Three attempts fit the tenant allowance, spread over families
        // that are each well inside their per-family budget of 4.
        assert!(l.charge(FamilyId::new(0)));
        assert!(l.charge(FamilyId::new(1)));
        assert!(l.charge(FamilyId::new(2)));
        // The fourth is refused by the tenant quota, and the refused
        // family reads as exhausted from then on.
        assert!(!l.charge(FamilyId::new(3)));
        assert!(l.exhausted(FamilyId::new(3)));
        assert_eq!(tenant.ledger().spent(QuotaResource::RetryBudget), 3);
        // A second ledger for another of the tenant's jobs sees the same
        // drained allowance immediately.
        let mut l2 = RetryLedger::with_tenant(&policy(), tenant);
        assert!(!l2.charge(FamilyId::new(9)));
    }
}
