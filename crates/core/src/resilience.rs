//! Recovery machinery: per-endpoint circuit breakers and per-family retry
//! ledgers.
//!
//! The paper's fault handling is reactive — funcX heartbeats surface lost
//! tasks and the orchestrator resubmits (§5.8.1). This module adds the
//! policy layer on top: a [`HealthTracker`] watches each endpoint and
//! opens a circuit breaker after consecutive failures so the orchestrator
//! stops sending work into a black hole (and can reroute families to a
//! healthy endpoint instead), and a [`RetryLedger`] bounds the total
//! attempts any one family may consume so a permanently-broken family
//! terminates in a dead letter rather than a livelock.
//!
//! Time is logical: the tracker ticks once per extraction wave (or sim
//! step), so breaker cooldowns are reproducible — no wall clocks.

use std::collections::HashMap;
use xtract_types::{EndpointId, FamilyId, RetryPolicy};

/// Circuit-breaker state for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow normally.
    Closed,
    /// Tripped: the endpoint receives no new work until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: one probe may go through; success re-closes,
    /// failure re-opens.
    HalfOpen,
}

#[derive(Debug, Default, Clone, Copy)]
struct EndpointHealth {
    consecutive_failures: u32,
    /// Tick at which the breaker last opened; `None` while closed.
    opened_at: Option<u64>,
    /// Lifetime failure count (observability).
    total_failures: u64,
}

/// Tracks endpoint health on a logical clock.
#[derive(Debug)]
pub struct HealthTracker {
    threshold: u32,
    cooldown: u64,
    clock: u64,
    health: HashMap<EndpointId, EndpointHealth>,
}

impl HealthTracker {
    /// A tracker with the policy's breaker settings.
    pub fn new(policy: &RetryPolicy) -> Self {
        Self {
            threshold: policy.breaker_threshold.max(1),
            cooldown: policy.breaker_cooldown,
            clock: 0,
            health: HashMap::new(),
        }
    }

    /// Advances the logical clock (call once per wave/step).
    pub fn tick(&mut self) {
        self.clock += 1;
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Records a failure at `endpoint`; opens the breaker once the
    /// consecutive-failure threshold is reached, and re-opens it when a
    /// half-open probe fails.
    pub fn record_failure(&mut self, endpoint: EndpointId) {
        let was_half_open = self.state(endpoint) == BreakerState::HalfOpen;
        let h = self.health.entry(endpoint).or_default();
        h.consecutive_failures += 1;
        h.total_failures += 1;
        if was_half_open || (h.opened_at.is_none() && h.consecutive_failures >= self.threshold) {
            h.opened_at = Some(self.clock);
        }
    }

    /// Records a success at `endpoint`: the breaker closes and the
    /// consecutive-failure count resets.
    pub fn record_success(&mut self, endpoint: EndpointId) {
        let h = self.health.entry(endpoint).or_default();
        h.consecutive_failures = 0;
        h.opened_at = None;
    }

    /// The breaker state at the current logical time. Unknown endpoints
    /// are healthy.
    pub fn state(&self, endpoint: EndpointId) -> BreakerState {
        match self.health.get(&endpoint).and_then(|h| h.opened_at) {
            None => BreakerState::Closed,
            Some(at) if self.clock >= at + self.cooldown => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// True when new work may be routed to `endpoint` (closed breaker or a
    /// half-open probe slot).
    pub fn available(&self, endpoint: EndpointId) -> bool {
        self.state(endpoint) != BreakerState::Open
    }

    /// Lifetime failures recorded at `endpoint`.
    pub fn failures(&self, endpoint: EndpointId) -> u64 {
        self.health
            .get(&endpoint)
            .map(|h| h.total_failures)
            .unwrap_or(0)
    }
}

/// Bounds the total retry attempts a family may consume across all of its
/// stages (transfers and extraction steps combined).
#[derive(Debug)]
pub struct RetryLedger {
    budget: u32,
    spent: HashMap<FamilyId, u32>,
}

impl RetryLedger {
    /// A ledger enforcing the policy's per-family budget.
    pub fn new(policy: &RetryPolicy) -> Self {
        Self {
            budget: policy.family_budget,
            spent: HashMap::new(),
        }
    }

    /// Charges one attempt against `family`; returns `true` while the
    /// family is still within budget.
    pub fn charge(&mut self, family: FamilyId) -> bool {
        let n = self.spent.entry(family).or_insert(0);
        *n += 1;
        *n <= self.budget
    }

    /// Attempts charged so far.
    pub fn attempts(&self, family: FamilyId) -> u32 {
        self.spent.get(&family).copied().unwrap_or(0)
    }

    /// True once the family has exhausted its budget.
    pub fn exhausted(&self, family: FamilyId) -> bool {
        self.attempts(family) > self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            breaker_threshold: 3,
            breaker_cooldown: 2,
            family_budget: 4,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut t = HealthTracker::new(&policy());
        let ep = EndpointId::new(1);
        assert_eq!(t.state(ep), BreakerState::Closed);
        t.record_failure(ep);
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::Closed);
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::Open);
        assert!(!t.available(ep));
        assert_eq!(t.failures(ep), 3);
    }

    #[test]
    fn cooldown_promotes_to_half_open_and_probe_decides() {
        let mut t = HealthTracker::new(&policy());
        let ep = EndpointId::new(1);
        for _ in 0..3 {
            t.record_failure(ep);
        }
        assert_eq!(t.state(ep), BreakerState::Open);
        t.tick();
        assert_eq!(t.state(ep), BreakerState::Open);
        t.tick();
        assert_eq!(t.state(ep), BreakerState::HalfOpen);
        assert!(t.available(ep));
        // A failed probe re-opens for a fresh cooldown.
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::Open);
        t.tick();
        t.tick();
        assert_eq!(t.state(ep), BreakerState::HalfOpen);
        // A successful probe closes.
        t.record_success(ep);
        assert_eq!(t.state(ep), BreakerState::Closed);
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut t = HealthTracker::new(&policy());
        let ep = EndpointId::new(0);
        t.record_failure(ep);
        t.record_failure(ep);
        t.record_success(ep);
        t.record_failure(ep);
        t.record_failure(ep);
        assert_eq!(t.state(ep), BreakerState::Closed);
    }

    #[test]
    fn endpoints_are_tracked_independently() {
        let mut t = HealthTracker::new(&policy());
        for _ in 0..3 {
            t.record_failure(EndpointId::new(1));
        }
        assert_eq!(t.state(EndpointId::new(1)), BreakerState::Open);
        assert_eq!(t.state(EndpointId::new(2)), BreakerState::Closed);
    }

    #[test]
    fn ledger_enforces_budget() {
        let mut l = RetryLedger::new(&policy());
        let fam = FamilyId::new(7);
        for i in 1..=4 {
            assert!(l.charge(fam), "attempt {i} should fit the budget");
        }
        assert!(!l.charge(fam));
        assert!(l.exhausted(fam));
        assert_eq!(l.attempts(fam), 5);
        // Other families are unaffected.
        assert!(!l.exhausted(FamilyId::new(8)));
        assert!(l.charge(FamilyId::new(8)));
    }
}
