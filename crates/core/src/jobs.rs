//! The asynchronous job interface (§3 "Xtract User Interface").
//!
//! "Xtract offers an asynchronous interface via which users can ...
//! execute extraction and validation jobs; monitor the status of
//! extraction jobs; and retrieve or deposit the extracted metadata" —
//! Listing 2's `xmc.submit(...)`, `get_crawl_status`, `get_extract_status`
//! flow.
//!
//! [`JobManager`] wraps the synchronous [`XtractService`] in a background
//! worker per job: `submit` returns a [`JobId`] immediately; status reads
//! observe live crawl/extraction counters (shared with the service's
//! crawler metrics); results become available when the job completes.
//! The retrieved report's [`JobReport::phases`] are overlap-aware: with
//! the concurrent staging pool, `Stage` is the union of the pool's
//! concurrent spans, so the phase total stays within the job's wall
//! clock even while prefetch and extraction run at the same time.

use crate::service::{JobReport, XtractService};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use xtract_datafabric::Token;
use xtract_types::id::IdAllocator;
use xtract_types::{JobId, JobSpec, Result, XtractError};

/// Observable lifecycle of a submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Queued, not yet started.
    Pending,
    /// Crawling and extracting (the two overlap: "file groups are
    /// returned asynchronously", §5.8.1).
    Running,
    /// Finished; the report is available.
    Complete {
        /// Validated record count.
        records: u64,
        /// Permanent failures.
        failures: u64,
    },
    /// The job failed before producing a report.
    Failed {
        /// The error's description.
        reason: String,
    },
}

impl JobStatus {
    /// True for Complete/Failed.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Complete { .. } | JobStatus::Failed { .. })
    }
}

#[derive(Default)]
struct JobSlot {
    status: Option<JobStatus>,
    report: Option<std::result::Result<JobReport, String>>,
}

struct Shared {
    slots: Mutex<HashMap<JobId, JobSlot>>,
    cv: Condvar,
}

/// The asynchronous job manager.
pub struct JobManager {
    service: Arc<XtractService>,
    shared: Arc<Shared>,
    ids: IdAllocator,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobManager {
    /// A manager over a service.
    pub fn new(service: Arc<XtractService>) -> Self {
        Self {
            service,
            shared: Arc::new(Shared {
                slots: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            }),
            ids: IdAllocator::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Submits a job; returns immediately with its id (Listing 2's
    /// `task_id = xmc.submit(...)`). Validation errors surface here, not
    /// in the background.
    pub fn submit(&self, token: Token, spec: JobSpec) -> Result<JobId> {
        self.submit_inner(token, spec, None)
    }

    /// Submits a job that journals to a durable recovery log at `log_dir`.
    /// If the directory already holds a prior run's log, the job resumes
    /// from it — completed steps are replayed, not re-executed — and the
    /// retrieved report carries `resumed` / `replayed_records`. The same
    /// call therefore serves both "start durably" and "pick up where the
    /// killed orchestrator left off".
    pub fn submit_with_recovery(
        &self,
        token: Token,
        spec: JobSpec,
        log_dir: impl Into<PathBuf>,
    ) -> Result<JobId> {
        self.submit_inner(token, spec, Some(log_dir.into()))
    }

    fn submit_inner(&self, token: Token, spec: JobSpec, log_dir: Option<PathBuf>) -> Result<JobId> {
        spec.validate()
            .map_err(|reason| XtractError::InvalidJob { reason })?;
        let id = JobId::new(self.ids.next());
        {
            let mut slots = self.shared.slots.lock();
            slots.insert(
                id,
                JobSlot {
                    status: Some(JobStatus::Pending),
                    report: None,
                },
            );
        }
        let service = self.service.clone();
        let shared = self.shared.clone();
        let handle = std::thread::spawn(move || {
            {
                let mut slots = shared.slots.lock();
                if let Some(slot) = slots.get_mut(&id) {
                    slot.status = Some(JobStatus::Running);
                }
            }
            let outcome = match &log_dir {
                Some(dir) => service.run_job_with_recovery(token, &spec, dir),
                None => service.run_job(token, &spec),
            };
            let mut slots = shared.slots.lock();
            if let Some(slot) = slots.get_mut(&id) {
                match outcome {
                    Ok(report) => {
                        slot.status = Some(JobStatus::Complete {
                            records: report.records.len() as u64,
                            failures: report.failures.len() as u64,
                        });
                        slot.report = Some(Ok(report));
                    }
                    Err(e) => {
                        slot.status = Some(JobStatus::Failed {
                            reason: e.to_string(),
                        });
                        slot.report = Some(Err(e.to_string()));
                    }
                }
            }
            shared.cv.notify_all();
        });
        self.handles.lock().push(handle);
        Ok(id)
    }

    /// Current status (Listing 2's `get_crawl_status` /
    /// `get_extract_status` rolled into one view).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared
            .slots
            .lock()
            .get(&id)
            .and_then(|s| s.status.clone())
    }

    /// Blocks until the job is terminal or `timeout` passes; returns the
    /// final status on success.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slots = self.shared.slots.lock();
        loop {
            match slots.get(&id).and_then(|s| s.status.clone()) {
                Some(status) if status.is_terminal() => return Some(status),
                None => return None,
                _ => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return slots.get(&id).and_then(|s| s.status.clone());
            }
            self.shared.cv.wait_for(&mut slots, deadline - now);
        }
    }

    /// Takes the finished report (Listing 2's metadata retrieval). `None`
    /// until terminal; consumes the report.
    pub fn take_report(&self, id: JobId) -> Option<std::result::Result<JobReport, String>> {
        self.shared
            .slots
            .lock()
            .get_mut(&id)
            .and_then(|s| s.report.take())
    }

    /// Ids of all known jobs, sorted.
    pub fn jobs(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self.shared.slots.lock().keys().copied().collect();
        ids.sort();
        ids
    }

    /// The underlying service's observability bundle: live metrics and the
    /// event journal accumulate across every job this manager runs.
    pub fn obs(&self) -> &xtract_obs::Obs {
        self.service.obs()
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xtract_datafabric::{AuthService, DataFabric, MemFs, Scope};
    use xtract_sim::RngStreams;
    use xtract_types::config::ContainerRuntime;
    use xtract_types::{EndpointId, EndpointSpec};

    fn rig(files: u64) -> (JobManager, Token, JobSpec) {
        let fabric = Arc::new(DataFabric::new());
        let ep = EndpointId::new(0);
        let fs = Arc::new(MemFs::new(ep));
        xtract_workloads::materialize::sample_repo(
            fs.as_ref(),
            "/data",
            files,
            &RngStreams::new(60),
        );
        fabric.register(ep, "midway", fs);
        let auth = Arc::new(AuthService::new());
        let token = auth.login(
            "async-user",
            &[
                Scope::Crawl,
                Scope::Extract,
                Scope::Transfer,
                Scope::Validate,
            ],
        );
        let service = Arc::new(XtractService::new(fabric, auth, 9));
        let spec = JobSpec::single_endpoint(
            EndpointSpec {
                endpoint: ep,
                read_path: "/data".into(),
                store_path: Some("/stage".into()),
                available_bytes: 1 << 30,
                workers: Some(4),
                runtime: ContainerRuntime::Docker,
            },
            "/data",
        );
        service.connect_endpoint(&spec.endpoints[0]).unwrap();
        (JobManager::new(service), token, spec)
    }

    #[test]
    fn submit_wait_take_report() {
        let (mgr, token, spec) = rig(20);
        let id = mgr.submit(token, spec).unwrap();
        let status = mgr.wait(id, Duration::from_secs(30)).unwrap();
        match status {
            JobStatus::Complete { records, failures } => {
                assert!(records > 0);
                assert_eq!(failures, 0);
            }
            other => panic!("unexpected status {other:?}"),
        }
        let report = mgr.take_report(id).unwrap().unwrap();
        assert!(!report.records.is_empty());
        // Reports are consumed once.
        assert!(mgr.take_report(id).is_none());
        // The shared observability bundle saw the job happen.
        let snap = mgr.obs().hub.snapshot();
        // crawl.* is labeled per endpoint; the aggregate is the label sum.
        assert!(snap.counter_sum("crawl.files") >= 20);
        assert!(!mgr.obs().journal.is_empty());
    }

    #[test]
    fn async_reports_carry_consistent_phase_timings() {
        let (mgr, token, spec) = rig(16);
        let started = std::time::Instant::now();
        let id = mgr.submit(token, spec).unwrap();
        mgr.wait(id, Duration::from_secs(30)).unwrap();
        let wall = started.elapsed().as_secs_f64();
        let report = mgr.take_report(id).unwrap().unwrap();
        let total = report.phases.total();
        assert!(total > 0.0, "no phase time recorded");
        // Stage is the union of the staging pool's concurrent spans, so
        // even through the async interface no phase accounting can exceed
        // the wall clock (slop covers submit/notify scheduling).
        assert!(
            total <= wall + 0.25,
            "phase total {total}s exceeds wall clock {wall}s"
        );
    }

    #[test]
    fn invalid_jobs_fail_at_submit_not_in_background() {
        let (mgr, token, mut spec) = rig(2);
        spec.max_family_size = 0;
        assert!(matches!(
            mgr.submit(token, spec),
            Err(XtractError::InvalidJob { .. })
        ));
        assert!(mgr.jobs().is_empty());
    }

    #[test]
    fn concurrent_jobs_are_isolated() {
        let (mgr, token, spec) = rig(24);
        let a = mgr.submit(token, spec.clone()).unwrap();
        let b = mgr.submit(token, spec).unwrap();
        assert_ne!(a, b);
        assert_eq!(mgr.jobs().len(), 2);
        let sa = mgr.wait(a, Duration::from_secs(30)).unwrap();
        let sb = mgr.wait(b, Duration::from_secs(30)).unwrap();
        assert!(sa.is_terminal() && sb.is_terminal());
        let ra = mgr.take_report(a).unwrap().unwrap();
        let rb = mgr.take_report(b).unwrap().unwrap();
        assert_eq!(ra.records.len(), rb.records.len());
    }

    #[test]
    fn recovery_jobs_resume_through_the_async_interface() {
        let (mgr, token, spec) = rig(12);
        let dir = std::env::temp_dir().join(format!(
            "xtract-jobs-recovery-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let a = mgr.submit_with_recovery(token, spec.clone(), &dir).unwrap();
        assert!(mgr.wait(a, Duration::from_secs(30)).unwrap().is_terminal());
        let first = mgr.take_report(a).unwrap().unwrap();
        assert!(!first.resumed);
        assert!(!first.records.is_empty());

        // Resubmitting against the same log replays the finished job:
        // nothing re-executes, the same records come back.
        let b = mgr.submit_with_recovery(token, spec, &dir).unwrap();
        assert!(mgr.wait(b, Duration::from_secs(30)).unwrap().is_terminal());
        let second = mgr.take_report(b).unwrap().unwrap();
        assert!(second.resumed);
        assert!(second.replayed_records > 0);
        assert!(
            second.invocations.is_empty(),
            "resume of a finished job re-invoked extractors: {:?}",
            second.invocations
        );
        assert_eq!(first.records.len(), second.records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_job_has_no_status() {
        let (mgr, _token, _spec) = rig(2);
        assert!(mgr.status(JobId::new(99)).is_none());
        assert!(mgr
            .wait(JobId::new(99), Duration::from_millis(10))
            .is_none());
    }

    #[test]
    fn bad_token_surfaces_as_failed_job() {
        let (mgr, _token, spec) = rig(4);
        let foreign = AuthService::new().login("other", &[Scope::Crawl]);
        let id = mgr.submit(foreign, spec).unwrap();
        match mgr.wait(id, Duration::from_secs(30)).unwrap() {
            JobStatus::Failed { reason } => assert!(reason.contains("authorization")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(mgr.take_report(id).unwrap().is_err());
    }
}
