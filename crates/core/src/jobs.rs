//! The asynchronous job interface (§3 "Xtract User Interface").
//!
//! "Xtract offers an asynchronous interface via which users can ...
//! execute extraction and validation jobs; monitor the status of
//! extraction jobs; and retrieve or deposit the extracted metadata" —
//! Listing 2's `xmc.submit(...)`, `get_crawl_status`, `get_extract_status`
//! flow.
//!
//! Two shells wrap the synchronous [`XtractService`]:
//!
//! * [`JobManager`] — the single-user shell: one background worker per
//!   job, `submit` returns a [`JobId`] immediately, results become
//!   available when the job completes. Finished worker handles are
//!   reaped on every submit, so the handle table stays bounded no matter
//!   how many jobs a long-lived manager runs.
//! * [`JobService`] — the multi-tenant shell the paper's shared service
//!   deployment implies: a bounded worker pool drains a weighted
//!   fair-share [`JobQueue`], admission control rejects (with a
//!   retry-after hint) when a tenant's quota is already exhausted,
//!   overload sheds only lower-priority *pending* jobs, and every
//!   admission decision lands in the journal and the `service.*`
//!   counters.
//!
//! Jobs that journal to a recovery log hold a [`LogDirLease`] from
//! submit until they reach a terminal status, so two live jobs can never
//! interleave frames in one WAL directory — and because the lease drops
//! *before* the terminal status is published, wait-then-resubmit against
//! the same directory always succeeds.

use crate::queue::{Admission, JobQueue};
use crate::recovery::LogDirLease;
use crate::service::{JobReport, XtractService};
use crate::tenancy::{TenantCtx, TenantRegistry};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xtract_datafabric::Token;
use xtract_obs::Event;
use xtract_types::id::IdAllocator;
use xtract_types::{JobId, JobSpec, Result, ServicePolicy, TenantId, TenantSpec, XtractError};

/// Why a job failed, as a matchable kind alongside the human-readable
/// reason. Callers that react differently to "the service turned you
/// away" vs. "your quota ran dry mid-run" vs. "the orchestrator itself
/// errored" branch on this instead of parsing strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFailureKind {
    /// Admission control refused the job before it ran.
    Admission,
    /// A tenant quota was exhausted (at admission or mid-run).
    Quota,
    /// The job's recovery-log directory was leased to another live job.
    RecoveryLogBusy,
    /// Any other orchestrator error (auth, transfer, fabric, a shard
    /// worker dying with no live sibling to adopt its families, ...).
    /// Orchestrator failures of sharded jobs are retryable with
    /// `resume_job`: every shard's WAL survives the crash.
    Orchestrator,
}

impl JobFailureKind {
    /// Maps an error to its failure kind.
    pub fn classify(err: &XtractError) -> Self {
        match err {
            XtractError::AdmissionRejected { .. } => JobFailureKind::Admission,
            XtractError::QuotaExhausted { .. } => JobFailureKind::Quota,
            XtractError::RecoveryLogBusy { .. } => JobFailureKind::RecoveryLogBusy,
            _ => JobFailureKind::Orchestrator,
        }
    }
}

/// Observable lifecycle of a submitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Queued, not yet started.
    Pending,
    /// Crawling and extracting (the two overlap: "file groups are
    /// returned asynchronously", §5.8.1).
    Running,
    /// Finished; the report is available.
    Complete {
        /// Validated record count.
        records: u64,
        /// Permanent failures.
        failures: u64,
    },
    /// The job failed before producing a report.
    Failed {
        /// The failure's matchable kind.
        kind: JobFailureKind,
        /// The error's description.
        reason: String,
    },
    /// Evicted from the pending queue by overload shedding before it
    /// ever ran. Resubmit after the hint; a job with a recovery log
    /// resumes from wherever its log left off.
    Shed {
        /// Why it was shed.
        reason: String,
        /// Suggested resubmission delay.
        retry_after_ms: u64,
    },
}

impl JobStatus {
    /// True for Complete/Failed/Shed.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Complete { .. } | JobStatus::Failed { .. } | JobStatus::Shed { .. }
        )
    }
}

#[derive(Default)]
struct JobSlot {
    status: Option<JobStatus>,
    report: Option<std::result::Result<JobReport, String>>,
}

struct Shared {
    slots: Mutex<HashMap<JobId, JobSlot>>,
    cv: Condvar,
}

impl Shared {
    fn status(&self, id: JobId) -> Option<JobStatus> {
        self.slots.lock().get(&id).and_then(|s| s.status.clone())
    }

    fn wait(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slots = self.slots.lock();
        loop {
            match slots.get(&id).and_then(|s| s.status.clone()) {
                Some(status) if status.is_terminal() => return Some(status),
                None => return None,
                _ => {}
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return slots.get(&id).and_then(|s| s.status.clone());
            }
            self.cv.wait_for(&mut slots, deadline - now);
        }
    }

    fn take_report(&self, id: JobId) -> Option<std::result::Result<JobReport, String>> {
        self.slots.lock().get_mut(&id).and_then(|s| s.report.take())
    }

    fn jobs(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self.slots.lock().keys().copied().collect();
        ids.sort();
        ids
    }

    fn finish(&self, id: JobId, outcome: std::result::Result<JobReport, XtractError>) {
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(&id) {
            match outcome {
                Ok(report) => {
                    slot.status = Some(JobStatus::Complete {
                        records: report.records.len() as u64,
                        failures: report.failures.len() as u64,
                    });
                    slot.report = Some(Ok(report));
                }
                Err(e) => {
                    slot.status = Some(JobStatus::Failed {
                        kind: JobFailureKind::classify(&e),
                        reason: e.to_string(),
                    });
                    slot.report = Some(Err(e.to_string()));
                }
            }
        }
        drop(slots);
        self.cv.notify_all();
    }
}

/// The asynchronous single-user job manager: one worker thread per job.
pub struct JobManager {
    service: Arc<XtractService>,
    shared: Arc<Shared>,
    ids: IdAllocator,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobManager {
    /// A manager over a service.
    pub fn new(service: Arc<XtractService>) -> Self {
        Self {
            service,
            shared: Arc::new(Shared {
                slots: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            }),
            ids: IdAllocator::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Submits a job; returns immediately with its id (Listing 2's
    /// `task_id = xmc.submit(...)`). Validation errors surface here, not
    /// in the background.
    pub fn submit(&self, token: Token, spec: JobSpec) -> Result<JobId> {
        self.submit_inner(token, spec, None)
    }

    /// Submits a job that journals to a durable recovery log at `log_dir`.
    /// If the directory already holds a prior run's log, the job resumes
    /// from it — completed steps are replayed, not re-executed — and the
    /// retrieved report carries `resumed` / `replayed_records`. The same
    /// call therefore serves both "start durably" and "pick up where the
    /// killed orchestrator left off".
    ///
    /// The directory is leased for the job's lifetime: submitting a
    /// second job against a directory whose job is still live fails
    /// *here*, synchronously, with [`XtractError::RecoveryLogBusy`] —
    /// two jobs interleaving frames in one WAL would poison its replay.
    pub fn submit_with_recovery(
        &self,
        token: Token,
        spec: JobSpec,
        log_dir: impl Into<PathBuf>,
    ) -> Result<JobId> {
        self.submit_inner(token, spec, Some(log_dir.into()))
    }

    fn submit_inner(&self, token: Token, spec: JobSpec, log_dir: Option<PathBuf>) -> Result<JobId> {
        spec.validate()
            .map_err(|reason| XtractError::InvalidJob { reason })?;
        // The lease is taken synchronously so a conflicting submit fails
        // deterministically at the call site, never in the background.
        let lease = match &log_dir {
            Some(dir) => Some(LogDirLease::acquire(dir)?),
            None => None,
        };
        let id = JobId::new(self.ids.next());
        {
            let mut slots = self.shared.slots.lock();
            slots.insert(
                id,
                JobSlot {
                    status: Some(JobStatus::Pending),
                    report: None,
                },
            );
        }
        let service = self.service.clone();
        let shared = self.shared.clone();
        let handle = std::thread::spawn(move || {
            {
                let mut slots = shared.slots.lock();
                if let Some(slot) = slots.get_mut(&id) {
                    slot.status = Some(JobStatus::Running);
                }
            }
            let outcome = match &log_dir {
                Some(dir) => service.run_job_with_recovery(token, &spec, dir),
                None => service.run_job(token, &spec),
            };
            // Release the WAL directory before the terminal status is
            // visible: a waiter that observes Complete/Failed can
            // resubmit against the same directory without racing the
            // lease.
            drop(lease);
            shared.finish(id, outcome);
        });
        // Reap finished workers so the handle table stays bounded over a
        // long-lived manager's life; Drop still joins the stragglers.
        let mut handles = self.handles.lock();
        handles.retain(|h| !h.is_finished());
        handles.push(handle);
        Ok(id)
    }

    /// Current status (Listing 2's `get_crawl_status` /
    /// `get_extract_status` rolled into one view).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.status(id)
    }

    /// Blocks until the job is terminal or `timeout` passes; returns the
    /// final status on success.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        self.shared.wait(id, timeout)
    }

    /// Takes the finished report (Listing 2's metadata retrieval). `None`
    /// until terminal; consumes the report.
    pub fn take_report(&self, id: JobId) -> Option<std::result::Result<JobReport, String>> {
        self.shared.take_report(id)
    }

    /// Ids of all known jobs, sorted.
    pub fn jobs(&self) -> Vec<JobId> {
        self.shared.jobs()
    }

    /// Worker handles still tracked (live workers plus any finished ones
    /// not yet reaped). Reaps before counting, so a quiesced manager
    /// reports zero.
    pub fn worker_backlog(&self) -> usize {
        let mut handles = self.handles.lock();
        handles.retain(|h| !h.is_finished());
        handles.len()
    }

    /// The underlying service's observability bundle: live metrics and the
    /// event journal accumulate across every job this manager runs.
    pub fn obs(&self) -> &xtract_obs::Obs {
        self.service.obs()
    }

    /// The live serving index, once any managed job has opted into index
    /// ingest (`spec.index.enabled`). Queries run lock-free against
    /// per-shard snapshots while jobs keep ingesting.
    pub fn index(&self) -> Option<Arc<xtract_index::SearchIndex>> {
        self.service.index()
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The multi-tenant job service
// ---------------------------------------------------------------------------

/// What a queued job needs to run, carried through the queue. Dropping
/// the payload (shed, shutdown) releases its WAL lease.
struct QueuedPayload {
    token: Token,
    spec: JobSpec,
    log_dir: Option<PathBuf>,
    lease: Option<LogDirLease>,
    tenant: Arc<TenantCtx>,
}

struct ServiceState {
    queue: JobQueue<QueuedPayload>,
}

struct ServiceInner {
    state: Mutex<ServiceState>,
    shared: Shared,
    shutdown: AtomicBool,
}

/// The long-lived multi-tenant job service: [`JobManager`]'s interface,
/// shared fairly between registered tenants.
///
/// * **Admission control** — a submission from a tenant whose quota is
///   already exhausted is rejected immediately with
///   [`XtractError::AdmissionRejected`] carrying the policy's
///   retry-after hint; nothing is queued.
/// * **Fair share** — a bounded worker pool (sized by
///   [`ServicePolicy::workers`]) drains a stride-scheduled [`JobQueue`]:
///   dispatch slots divide proportionally to tenant weights, and no
///   nonzero-weight tenant starves.
/// * **Quotas** — invocations, transfer bytes, and retry attempts are
///   charged against the owning tenant's ledger *before* consumption
///   (see [`TenantCtx::charge`]); per-tenant concurrent-job caps hold
///   jobs in the queue rather than dispatching them.
/// * **Graceful shedding** — when the pending queue is full, a new
///   submission may evict the lowest-priority *pending* job (never a
///   running one), and only if it strictly outranks it; the victim
///   surfaces as [`JobStatus::Shed`] and, if it had a recovery log, its
///   resubmission resumes from the WAL.
///
/// Every decision is journaled ([`Event::JobAdmitted`] /
/// [`Event::JobRejected`] / [`Event::JobShed`] / [`Event::JobDispatched`]
/// / [`Event::JobFinished`]) and counted under `service.*`, labeled by
/// tenant name.
pub struct JobService {
    service: Arc<XtractService>,
    registry: TenantRegistry,
    policy: ServicePolicy,
    inner: Arc<ServiceInner>,
    ids: IdAllocator,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobService {
    /// Spins up the worker pool over `service` under `policy`.
    pub fn new(service: Arc<XtractService>, policy: ServicePolicy) -> Result<Self> {
        policy.validate()?;
        let inner = Arc::new(ServiceInner {
            state: Mutex::new(ServiceState {
                queue: JobQueue::new(policy.queue_capacity),
            }),
            shared: Shared {
                slots: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            },
            shutdown: AtomicBool::new(false),
        });
        let registry = TenantRegistry::new(service.obs().clone());
        let mut workers = Vec::with_capacity(policy.workers);
        for _ in 0..policy.workers {
            let service = service.clone();
            let inner = inner.clone();
            workers.push(std::thread::spawn(move || worker_loop(service, inner)));
        }
        Ok(Self {
            service,
            registry,
            policy,
            inner,
            ids: IdAllocator::new(),
            workers: Mutex::new(workers),
        })
    }

    /// Registers a tenant; returns its id. The tenant's weight drives
    /// fair-share dispatch and its quota's concurrent-job cap bounds how
    /// many of its jobs run at once.
    pub fn register_tenant(&self, spec: TenantSpec) -> Result<TenantId> {
        let weight = spec.weight;
        let max_concurrent = spec.quota.max_concurrent_jobs;
        let id = self.registry.register(spec)?;
        self.inner
            .state
            .lock()
            .queue
            .register_tenant(id, weight, max_concurrent);
        Ok(id)
    }

    /// The live context (ledger, spec, shared health) for a registered
    /// tenant.
    pub fn tenant(&self, id: TenantId) -> Option<Arc<TenantCtx>> {
        self.registry.get(id)
    }

    /// Submits a job on behalf of `tenant` at `priority` (higher
    /// dispatches first within the tenant, and outranks others' pending
    /// jobs under overload shedding).
    pub fn submit(
        &self,
        tenant: TenantId,
        priority: u8,
        token: Token,
        spec: JobSpec,
    ) -> Result<JobId> {
        self.submit_inner(tenant, priority, token, spec, None)
    }

    /// As [`Self::submit`], journaling to a recovery log at `log_dir`
    /// (leased for the job's lifetime — see
    /// [`JobManager::submit_with_recovery`]). A shed job's resubmission
    /// against the same directory resumes from the WAL.
    pub fn submit_with_recovery(
        &self,
        tenant: TenantId,
        priority: u8,
        token: Token,
        spec: JobSpec,
        log_dir: impl Into<PathBuf>,
    ) -> Result<JobId> {
        self.submit_inner(tenant, priority, token, spec, Some(log_dir.into()))
    }

    fn submit_inner(
        &self,
        tenant: TenantId,
        priority: u8,
        token: Token,
        spec: JobSpec,
        log_dir: Option<PathBuf>,
    ) -> Result<JobId> {
        spec.validate()
            .map_err(|reason| XtractError::InvalidJob { reason })?;
        let obs = self.service.obs();
        let Some(tctx) = self.registry.get(tenant) else {
            return Err(XtractError::AdmissionRejected {
                tenant,
                reason: "unknown tenant".to_string(),
                retry_after_ms: 0,
            });
        };
        let label = tctx.spec().name.clone();
        // Admission gate: a tenant that has already spent a consumable
        // quota to its limit cannot make progress — turn the job away
        // now with a hint instead of queueing guaranteed failure.
        if tctx.any_exhausted() {
            let reason = "tenant quota exhausted".to_string();
            obs.journal.record(Event::JobRejected {
                tenant,
                reason: reason.clone(),
                retry_after_ms: self.policy.retry_after_ms,
            });
            obs.hub
                .counter_with("service.rejected", Some(&label))
                .incr();
            return Err(XtractError::AdmissionRejected {
                tenant,
                reason,
                retry_after_ms: self.policy.retry_after_ms,
            });
        }
        let lease = match &log_dir {
            Some(dir) => Some(LogDirLease::acquire(dir)?),
            None => None,
        };
        let id = JobId::new(self.ids.next());
        let payload = QueuedPayload {
            token,
            spec,
            log_dir,
            lease,
            tenant: tctx,
        };
        let mut state = self.inner.state.lock();
        match state.queue.push(tenant, id, priority, payload) {
            Admission::Admitted { victims } => {
                let mut slots = self.inner.shared.slots.lock();
                for v in victims {
                    // The victim's payload (and its WAL lease) drops
                    // here; its slot records why it never ran.
                    let vlabel = v.payload.tenant.spec().name.clone();
                    let reason = format!(
                        "shed by {label} priority {priority} (victim priority {})",
                        v.priority
                    );
                    if let Some(slot) = slots.get_mut(&v.job) {
                        slot.status = Some(JobStatus::Shed {
                            reason: reason.clone(),
                            retry_after_ms: self.policy.retry_after_ms,
                        });
                    }
                    obs.journal.record(Event::JobShed {
                        tenant: v.tenant,
                        job: v.job,
                        reason,
                    });
                    obs.hub.counter_with("service.shed", Some(&vlabel)).incr();
                }
                slots.insert(
                    id,
                    JobSlot {
                        status: Some(JobStatus::Pending),
                        report: None,
                    },
                );
                drop(slots);
                drop(state);
                obs.journal.record(Event::JobAdmitted { tenant, job: id });
                obs.hub
                    .counter_with("service.admitted", Some(&label))
                    .incr();
                self.inner.shared.cv.notify_all();
                Ok(id)
            }
            Admission::Rejected { reason } => {
                drop(state);
                obs.journal.record(Event::JobRejected {
                    tenant,
                    reason: reason.clone(),
                    retry_after_ms: self.policy.retry_after_ms,
                });
                obs.hub
                    .counter_with("service.rejected", Some(&label))
                    .incr();
                Err(XtractError::AdmissionRejected {
                    tenant,
                    reason,
                    retry_after_ms: self.policy.retry_after_ms,
                })
            }
        }
    }

    /// Current status of a job.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.inner.shared.status(id)
    }

    /// Blocks until the job is terminal or `timeout` passes.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        self.inner.shared.wait(id, timeout)
    }

    /// Takes the finished report; `None` until terminal. Consumes it.
    pub fn take_report(&self, id: JobId) -> Option<std::result::Result<JobReport, String>> {
        self.inner.shared.take_report(id)
    }

    /// Ids of all known jobs, sorted.
    pub fn jobs(&self) -> Vec<JobId> {
        self.inner.shared.jobs()
    }

    /// The service policy in force.
    pub fn policy(&self) -> &ServicePolicy {
        &self.policy
    }

    /// The underlying service's observability bundle.
    pub fn obs(&self) -> &xtract_obs::Obs {
        self.service.obs()
    }

    /// The live serving index, once any tenant's job has opted into
    /// index ingest (`spec.index.enabled`). The index is shared across
    /// tenants — it is the downstream search service every job feeds.
    pub fn index(&self) -> Option<Arc<xtract_index::SearchIndex>> {
        self.service.index()
    }
}

fn worker_loop(service: Arc<XtractService>, inner: Arc<ServiceInner>) {
    let obs = service.obs().clone();
    loop {
        let (tenant_id, job, payload) = {
            let mut state = inner.state.lock();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(next) = state.queue.pop_next() {
                    break next;
                }
                inner.shared.cv.wait(&mut state);
            }
        };
        let label = payload.tenant.spec().name.clone();
        {
            let mut slots = inner.shared.slots.lock();
            if let Some(slot) = slots.get_mut(&job) {
                slot.status = Some(JobStatus::Running);
            }
        }
        obs.journal.record(Event::JobDispatched {
            tenant: tenant_id,
            job,
        });
        obs.hub
            .counter_with("service.dispatched", Some(&label))
            .incr();
        let outcome = match &payload.log_dir {
            Some(dir) => service.run_job_with_recovery_as(
                payload.token,
                &payload.spec,
                dir,
                Some(&payload.tenant),
            ),
            None => service.run_job_as(payload.token, &payload.spec, Some(&payload.tenant)),
        };
        let ok = outcome.is_ok();
        // Lease before status, status before slot free: a waiter that
        // sees the terminal status may immediately resubmit against the
        // same WAL directory.
        drop(payload.lease);
        inner.shared.finish(job, outcome);
        obs.journal.record(Event::JobFinished {
            tenant: tenant_id,
            job,
            ok,
        });
        obs.hub
            .counter_with(
                if ok {
                    "service.completed"
                } else {
                    "service.failed"
                },
                Some(&label),
            )
            .incr();
        inner.state.lock().queue.note_done(tenant_id);
        // A concurrency slot freed: wake workers blocked on an
        // at-cap tenant's pending work.
        inner.shared.cv.notify_all();
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.shared.cv.notify_all();
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xtract_datafabric::{AuthService, DataFabric, MemFs, Scope};
    use xtract_sim::RngStreams;
    use xtract_types::config::ContainerRuntime;
    use xtract_types::{EndpointId, EndpointSpec, QuotaResource, TenantQuota};

    fn rig(files: u64) -> (JobManager, Token, JobSpec) {
        let (service, token, spec) = service_rig(files);
        (JobManager::new(service), token, spec)
    }

    fn service_rig(files: u64) -> (Arc<XtractService>, Token, JobSpec) {
        let fabric = Arc::new(DataFabric::new());
        let ep = EndpointId::new(0);
        let fs = Arc::new(MemFs::new(ep));
        xtract_workloads::materialize::sample_repo(
            fs.as_ref(),
            "/data",
            files,
            &RngStreams::new(60),
        );
        fabric.register(ep, "midway", fs);
        let auth = Arc::new(AuthService::new());
        let token = auth.login(
            "async-user",
            &[
                Scope::Crawl,
                Scope::Extract,
                Scope::Transfer,
                Scope::Validate,
            ],
        );
        let service = Arc::new(XtractService::new(fabric, auth, 9));
        let spec = JobSpec::single_endpoint(
            EndpointSpec {
                endpoint: ep,
                read_path: "/data".into(),
                store_path: Some("/stage".into()),
                available_bytes: 1 << 30,
                workers: Some(4),
                runtime: ContainerRuntime::Docker,
            },
            "/data",
        );
        service.connect_endpoint(&spec.endpoints[0]).unwrap();
        (service, token, spec)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xtract-jobs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn submit_wait_take_report() {
        let (mgr, token, spec) = rig(20);
        let id = mgr.submit(token, spec).unwrap();
        let status = mgr.wait(id, Duration::from_secs(30)).unwrap();
        match status {
            JobStatus::Complete { records, failures } => {
                assert!(records > 0);
                assert_eq!(failures, 0);
            }
            other => panic!("unexpected status {other:?}"),
        }
        let report = mgr.take_report(id).unwrap().unwrap();
        assert!(!report.records.is_empty());
        // Reports are consumed once.
        assert!(mgr.take_report(id).is_none());
        // The shared observability bundle saw the job happen.
        let snap = mgr.obs().hub.snapshot();
        // crawl.* is labeled per endpoint; the aggregate is the label sum.
        assert!(snap.counter_sum("crawl.files") >= 20);
        assert!(!mgr.obs().journal.is_empty());
    }

    #[test]
    fn async_reports_carry_consistent_phase_timings() {
        let (mgr, token, spec) = rig(16);
        let started = std::time::Instant::now();
        let id = mgr.submit(token, spec).unwrap();
        mgr.wait(id, Duration::from_secs(30)).unwrap();
        let wall = started.elapsed().as_secs_f64();
        let report = mgr.take_report(id).unwrap().unwrap();
        let total = report.phases.total();
        assert!(total > 0.0, "no phase time recorded");
        // Stage is the union of the staging pool's concurrent spans, so
        // even through the async interface no phase accounting can exceed
        // the wall clock (slop covers submit/notify scheduling).
        assert!(
            total <= wall + 0.25,
            "phase total {total}s exceeds wall clock {wall}s"
        );
    }

    #[test]
    fn invalid_jobs_fail_at_submit_not_in_background() {
        let (mgr, token, mut spec) = rig(2);
        spec.max_family_size = 0;
        assert!(matches!(
            mgr.submit(token, spec),
            Err(XtractError::InvalidJob { .. })
        ));
        assert!(mgr.jobs().is_empty());
    }

    #[test]
    fn concurrent_jobs_are_isolated() {
        let (mgr, token, spec) = rig(24);
        let a = mgr.submit(token, spec.clone()).unwrap();
        let b = mgr.submit(token, spec).unwrap();
        assert_ne!(a, b);
        assert_eq!(mgr.jobs().len(), 2);
        let sa = mgr.wait(a, Duration::from_secs(30)).unwrap();
        let sb = mgr.wait(b, Duration::from_secs(30)).unwrap();
        assert!(sa.is_terminal() && sb.is_terminal());
        let ra = mgr.take_report(a).unwrap().unwrap();
        let rb = mgr.take_report(b).unwrap().unwrap();
        assert_eq!(ra.records.len(), rb.records.len());
    }

    #[test]
    fn finished_worker_handles_are_reaped_not_hoarded() {
        let (mgr, token, spec) = rig(4);
        // N sequential terminal jobs must not leave N handles behind: the
        // submit-time reap and the reaping backlog probe keep the table
        // bounded regardless of job count.
        for _ in 0..8 {
            let id = mgr.submit(token, spec.clone()).unwrap();
            assert!(mgr.wait(id, Duration::from_secs(30)).unwrap().is_terminal());
        }
        // The final worker may still be between publishing its terminal
        // status and exiting; give the probe a moment to observe it done.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let backlog = mgr.worker_backlog();
            if backlog == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "handle table not reaped: {backlog} handles after 8 terminal jobs"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn recovery_jobs_resume_through_the_async_interface() {
        let (mgr, token, spec) = rig(12);
        let dir = temp_dir("recovery");

        let a = mgr.submit_with_recovery(token, spec.clone(), &dir).unwrap();
        assert!(mgr.wait(a, Duration::from_secs(30)).unwrap().is_terminal());
        let first = mgr.take_report(a).unwrap().unwrap();
        assert!(!first.resumed);
        assert!(!first.records.is_empty());

        // Resubmitting against the same log replays the finished job:
        // nothing re-executes, the same records come back.
        let b = mgr.submit_with_recovery(token, spec, &dir).unwrap();
        assert!(mgr.wait(b, Duration::from_secs(30)).unwrap().is_terminal());
        let second = mgr.take_report(b).unwrap().unwrap();
        assert!(second.resumed);
        assert!(second.replayed_records > 0);
        assert!(
            second.invocations.is_empty(),
            "resume of a finished job re-invoked extractors: {:?}",
            second.invocations
        );
        assert_eq!(first.records.len(), second.records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_submits_to_one_log_dir_are_refused() {
        let (mgr, token, spec) = rig(6);
        let dir = temp_dir("lease");
        // Deterministic conflict: while the directory is leased (here by
        // a directly-held lease standing in for a live job), a second
        // submission fails synchronously with the typed busy error — it
        // never reaches the background where it could corrupt the WAL.
        let held = LogDirLease::acquire(&dir).unwrap();
        let err = mgr
            .submit_with_recovery(token, spec.clone(), &dir)
            .unwrap_err();
        assert!(matches!(err, XtractError::RecoveryLogBusy { .. }));
        assert!(
            mgr.jobs().is_empty(),
            "refused submit must not leave a slot"
        );
        drop(held);
        // With the lease free the submit goes through; and because a
        // finishing job releases its lease *before* its terminal status
        // publishes, wait-then-resubmit always succeeds.
        let a = mgr.submit_with_recovery(token, spec.clone(), &dir).unwrap();
        assert!(mgr.wait(a, Duration::from_secs(30)).unwrap().is_terminal());
        let b = mgr.submit_with_recovery(token, spec, &dir).unwrap();
        assert!(mgr.wait(b, Duration::from_secs(30)).unwrap().is_terminal());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_death_classifies_as_orchestrator_failure() {
        // A stranded shard death is an orchestrator-side fault: the
        // async interface reports it as retryable (resume replays the
        // shard WALs), not as admission/quota back-pressure.
        let err = XtractError::ShardDied {
            shard: 2,
            point: "wave-3".into(),
        };
        assert_eq!(JobFailureKind::classify(&err), JobFailureKind::Orchestrator);
    }

    #[test]
    fn unknown_job_has_no_status() {
        let (mgr, _token, _spec) = rig(2);
        assert!(mgr.status(JobId::new(99)).is_none());
        assert!(mgr
            .wait(JobId::new(99), Duration::from_millis(10))
            .is_none());
    }

    #[test]
    fn bad_token_surfaces_as_failed_job() {
        let (mgr, _token, spec) = rig(4);
        let foreign = AuthService::new().login("other", &[Scope::Crawl]);
        let id = mgr.submit(foreign, spec).unwrap();
        match mgr.wait(id, Duration::from_secs(30)).unwrap() {
            JobStatus::Failed { kind, reason } => {
                assert_eq!(kind, JobFailureKind::Orchestrator);
                assert!(reason.contains("authorization"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(mgr.take_report(id).unwrap().is_err());
    }

    // -- JobService ---------------------------------------------------------

    #[test]
    fn tenant_jobs_run_through_the_shared_pool() {
        let (service, token, spec) = service_rig(16);
        let svc = JobService::new(service, ServicePolicy::default()).unwrap();
        let acme = svc.register_tenant(TenantSpec::new("acme", 2)).unwrap();
        let id = svc.submit(acme, 0, token, spec).unwrap();
        match svc.wait(id, Duration::from_secs(30)).unwrap() {
            JobStatus::Complete { records, .. } => assert!(records > 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(svc.take_report(id).unwrap().is_ok());
        let snap = svc.obs().hub.snapshot();
        assert_eq!(snap.counter_with("service.admitted", Some("acme")), 1);
        assert_eq!(snap.counter_with("service.dispatched", Some("acme")), 1);
        assert_eq!(snap.counter_with("service.completed", Some("acme")), 1);
    }

    #[test]
    fn unknown_tenants_are_rejected_at_admission() {
        let (service, token, spec) = service_rig(2);
        let svc = JobService::new(service, ServicePolicy::default()).unwrap();
        assert!(matches!(
            svc.submit(TenantId::new(7), 0, token, spec),
            Err(XtractError::AdmissionRejected { .. })
        ));
    }

    #[test]
    fn exhausted_tenants_are_turned_away_with_retry_after() {
        let (service, token, spec) = service_rig(2);
        let svc = JobService::new(service, ServicePolicy::default()).unwrap();
        let broke = svc
            .register_tenant(TenantSpec::new("broke", 1).with_quota(TenantQuota {
                max_invocations: Some(1),
                ..TenantQuota::unlimited()
            }))
            .unwrap();
        // Drain the allowance, then submit: admission refuses up front.
        let ctx = svc.tenant(broke).unwrap();
        ctx.charge(QuotaResource::Invocations, 1).unwrap();
        match svc.submit(broke, 0, token, spec) {
            Err(XtractError::AdmissionRejected { retry_after_ms, .. }) => {
                assert_eq!(retry_after_ms, ServicePolicy::default().retry_after_ms);
            }
            other => panic!("unexpected {other:?}"),
        }
        let snap = svc.obs().hub.snapshot();
        assert_eq!(snap.counter_with("service.rejected", Some("broke")), 1);
        assert_eq!(snap.counter_with("service.admitted", Some("broke")), 0);
    }

    #[test]
    fn quota_exhaustion_mid_run_fails_with_the_typed_kind() {
        let (service, token, spec) = service_rig(12);
        let svc = JobService::new(service, ServicePolicy::default()).unwrap();
        // Enough invocation quota to pass admission but never enough to
        // run the extraction plan: the failure surfaces mid-run as the
        // typed Quota kind, not a stringly-typed Internal error.
        let pinched = svc
            .register_tenant(TenantSpec::new("pinched", 1).with_quota(TenantQuota {
                max_invocations: Some(1),
                ..TenantQuota::unlimited()
            }))
            .unwrap();
        let id = svc.submit(pinched, 0, token, spec).unwrap();
        match svc.wait(id, Duration::from_secs(30)).unwrap() {
            JobStatus::Failed { kind, .. } => assert_eq!(kind, JobFailureKind::Quota),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn overload_sheds_pending_low_priority_with_typed_status() {
        let (service, token, spec) = service_rig(160);
        // One worker, room for two pending jobs: the worker occupies
        // itself with the first job while the queue fills behind it.
        let svc = JobService::new(
            service,
            ServicePolicy {
                workers: 1,
                queue_capacity: 2,
                retry_after_ms: 77,
            },
        )
        .unwrap();
        let t = svc.register_tenant(TenantSpec::new("t", 1)).unwrap();
        let running = svc.submit(t, 5, token, spec.clone()).unwrap();
        // The queue-pressure dance below assumes the first job holds the
        // worker: wait until it has left the pending queue. Its 160-file
        // extraction keeps the worker busy far longer than the
        // microseconds of submission calls that follow.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !matches!(svc.status(running), Some(JobStatus::Running)) {
            assert!(
                std::time::Instant::now() < deadline,
                "first job never dispatched"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        let low = svc.submit(t, 1, token, spec.clone()).unwrap();
        let mid = svc.submit(t, 2, token, spec.clone()).unwrap();
        // Queue full (low, mid pending). Equal priority: rejected.
        assert!(matches!(
            svc.submit(t, 1, token, spec.clone()),
            Err(XtractError::AdmissionRejected { .. })
        ));
        // Higher priority: the lowest-priority pending job is shed.
        let high = svc.submit(t, 9, token, spec.clone()).unwrap();
        match svc.status(low).unwrap() {
            JobStatus::Shed { retry_after_ms, .. } => assert_eq!(retry_after_ms, 77),
            other => panic!("victim status {other:?}"),
        }
        for id in [running, mid, high] {
            assert!(matches!(
                svc.wait(id, Duration::from_secs(60)).unwrap(),
                JobStatus::Complete { .. }
            ));
        }
        // Counters reconcile exactly with what happened: 4 admitted
        // (running, low, mid, high), 1 rejected, 1 shed, 3 completed.
        let snap = svc.obs().hub.snapshot();
        assert_eq!(snap.counter_with("service.admitted", Some("t")), 4);
        assert_eq!(snap.counter_with("service.rejected", Some("t")), 1);
        assert_eq!(snap.counter_with("service.shed", Some("t")), 1);
        assert_eq!(snap.counter_with("service.completed", Some("t")), 3);
        assert_eq!(snap.counter_with("service.dispatched", Some("t")), 3);
    }
}
