//! The parallel breadth-first crawler.
//!
//! A shared work queue of directory paths feeds `workers` threads; each
//! thread lists one directory, types its files (path sniffing — the only
//! information a crawler has, §4.1), applies the grouping function, emits
//! a [`CrawledDirectory`] to the consumer channel, and enqueues
//! subdirectories. Termination uses an outstanding-work counter: the
//! crawl is done when the queue is empty *and* no directory is being
//! listed.

use crate::grouping::group_directory;
use crate::metrics::CrawlMetrics;
use crossbeam_channel::Sender;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtract_types::id::IdAllocator;
use xtract_types::{
    sniff_path, EndpointId, FileRecord, Group, GroupingStrategy, Result, XtractError,
};

use xtract_datafabric::StorageBackend;

/// One listed directory with its grouped files — what the crawler streams
/// to the Xtract service ("the crawler asynchronously enqueues it for
/// processing", §4.3.1).
#[derive(Debug, Clone)]
pub struct CrawledDirectory {
    /// Directory path.
    pub path: String,
    /// Storage system crawled.
    pub endpoint: EndpointId,
    /// Files directly in this directory.
    pub files: Vec<FileRecord>,
    /// Groups produced by the grouping function.
    pub groups: Vec<Group>,
}

/// Crawler configuration.
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// Worker thread count (swept 2–32 in Fig. 4).
    pub workers: usize,
    /// Grouping function.
    pub grouping: GroupingStrategy,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            grouping: GroupingStrategy::SingleFile,
        }
    }
}

struct WorkQueue {
    queue: Mutex<VecDeque<String>>,
    cv: Condvar,
    outstanding: AtomicU64, // queued + in-flight directories
}

impl WorkQueue {
    fn push(&self, path: String) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push_back(path);
        self.cv.notify_one();
    }

    /// Pops the next directory, or `None` when the crawl has drained.
    fn pop(&self) -> Option<String> {
        let mut q = self.queue.lock();
        loop {
            if let Some(p) = q.pop_front() {
                return Some(p);
            }
            if self.outstanding.load(Ordering::SeqCst) == 0 {
                return None;
            }
            self.cv.wait(&mut q);
        }
    }

    /// Marks one directory finished; wakes sleepers if that drained the
    /// crawl.
    ///
    /// The notify happens *under the queue lock*: a waiter reads
    /// `outstanding` while holding the lock and then parks atomically, so
    /// firing the wakeup lock-free could land in the gap between its read
    /// and its park — a missed wakeup that leaves the waiter (and the
    /// crawl) hung forever. Taking the lock forces the decrement-notify
    /// to serialize against the check-then-wait.
    fn finish(&self) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.queue.lock();
            self.cv.notify_all();
        }
    }
}

/// How often (in directories listed) a crawl worker journals progress.
/// The first directory always reports, so short crawls still leave a
/// trace.
const PROGRESS_STRIDE: u64 = 128;

/// The crawler service for one extraction job.
pub struct Crawler {
    config: CrawlerConfig,
    metrics: Arc<CrawlMetrics>,
    group_ids: Arc<IdAllocator>,
    obs: Option<xtract_obs::Obs>,
}

impl Crawler {
    /// A crawler with the given configuration and private counters.
    pub fn new(config: CrawlerConfig) -> Self {
        assert!(config.workers > 0, "need at least one crawl worker");
        Self {
            config,
            metrics: Arc::new(CrawlMetrics::new()),
            group_ids: Arc::new(IdAllocator::new()),
            obs: None,
        }
    }

    /// A crawler whose counters live in `obs.hub` (as unlabeled
    /// `crawl.*`) and which journals
    /// [`xtract_obs::Event::CrawlProgress`] as it walks.
    pub fn with_obs(config: CrawlerConfig, obs: xtract_obs::Obs) -> Self {
        Self::with_obs_labeled(config, obs, None)
    }

    /// Like [`Crawler::with_obs`], but the `crawl.*` counters carry
    /// `label`. The orchestrator passes each endpoint's display form so
    /// the hub snapshot keeps per-endpoint crawl rates apart and
    /// `CrawlProgress` events report the counts of the endpoint they
    /// name rather than a federation-wide total.
    pub fn with_obs_labeled(
        config: CrawlerConfig,
        obs: xtract_obs::Obs,
        label: Option<&str>,
    ) -> Self {
        assert!(config.workers > 0, "need at least one crawl worker");
        Self {
            config,
            metrics: Arc::new(CrawlMetrics::in_hub_labeled(&obs.hub, label)),
            group_ids: Arc::new(IdAllocator::new()),
            obs: Some(obs),
        }
    }

    /// Live metrics (shared; safe to read while crawling).
    pub fn metrics(&self) -> Arc<CrawlMetrics> {
        self.metrics.clone()
    }

    /// Crawls `roots` on `backend` (owned by `endpoint`), streaming
    /// results into `sink`. Blocks until the crawl completes; returns the
    /// first hard error if any worker hit one (listing a vanished
    /// directory is *not* hard — repositories mutate under crawls).
    pub fn crawl(
        &self,
        endpoint: EndpointId,
        backend: &Arc<dyn StorageBackend>,
        roots: &[String],
        sink: Sender<CrawledDirectory>,
    ) -> Result<()> {
        let wq = Arc::new(WorkQueue {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            outstanding: AtomicU64::new(0),
        });
        for r in roots {
            wq.push(r.clone());
        }
        let first_error: Arc<Mutex<Option<XtractError>>> = Arc::new(Mutex::new(None));
        std::thread::scope(|s| {
            for _ in 0..self.config.workers {
                let wq = wq.clone();
                let sink = sink.clone();
                let backend = backend.clone();
                let metrics = self.metrics.clone();
                let ids = self.group_ids.clone();
                let grouping = self.config.grouping;
                let first_error = first_error.clone();
                let obs = self.obs.clone();
                s.spawn(move || {
                    while let Some(dir) = wq.pop() {
                        match backend.list(&dir) {
                            Ok(entries) => {
                                let mut files = Vec::new();
                                for e in entries {
                                    let child = if dir == "/" {
                                        format!("/{}", e.name)
                                    } else {
                                        format!("{dir}/{}", e.name)
                                    };
                                    if e.is_dir {
                                        wq.push(child);
                                    } else {
                                        files.push(FileRecord {
                                            hint: sniff_path(&child),
                                            path: child,
                                            size: e.size,
                                            endpoint,
                                            created_at: 0,
                                        });
                                    }
                                }
                                let groups = group_directory(grouping, &files, &ids);
                                let bytes: u64 = files.iter().map(|f| f.size).sum();
                                // record_dir returns this worker's own
                                // post-increment count, so each stride
                                // crossing journals exactly once even when
                                // concurrent workers race the counter past
                                // the boundary.
                                let dirs = metrics.record_dir(
                                    files.len() as u64,
                                    bytes,
                                    groups.len() as u64,
                                );
                                if let Some(obs) = &obs {
                                    if dirs % PROGRESS_STRIDE == 1 {
                                        obs.journal.record(xtract_obs::Event::CrawlProgress {
                                            endpoint,
                                            directories: dirs,
                                            files: metrics.files.get(),
                                        });
                                    }
                                }
                                // A closed sink means the consumer is gone;
                                // stop producing but keep draining the
                                // queue so termination stays correct.
                                let _ = sink.send(CrawledDirectory {
                                    path: dir,
                                    endpoint,
                                    files,
                                    groups,
                                });
                            }
                            Err(XtractError::NotFound { .. }) => {
                                // Deleted underneath us: skip.
                            }
                            Err(e) => {
                                first_error.lock().get_or_insert(e);
                            }
                        }
                        wq.finish();
                    }
                });
            }
        });
        let error = first_error.lock().take();
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crossbeam_channel::unbounded;
    use xtract_datafabric::MemFs;

    fn fs_with(paths: &[&str]) -> Arc<dyn StorageBackend> {
        let fs = MemFs::new(EndpointId::new(0));
        for p in paths {
            fs.write(p, Bytes::from_static(b"x")).unwrap();
        }
        Arc::new(fs)
    }

    fn crawl_all(
        backend: &Arc<dyn StorageBackend>,
        workers: usize,
        grouping: GroupingStrategy,
    ) -> Vec<CrawledDirectory> {
        let crawler = Crawler::new(CrawlerConfig { workers, grouping });
        let (tx, rx) = unbounded();
        crawler
            .crawl(EndpointId::new(0), backend, &["/".to_string()], tx)
            .unwrap();
        rx.into_iter().collect()
    }

    #[test]
    fn finds_every_file_once() {
        let backend = fs_with(&[
            "/a/1.txt",
            "/a/2.csv",
            "/a/deep/3.json",
            "/b/4.txt",
            "/5.txt",
        ]);
        let dirs = crawl_all(&backend, 4, GroupingStrategy::SingleFile);
        let mut files: Vec<String> = dirs
            .iter()
            .flat_map(|d| d.files.iter().map(|f| f.path.clone()))
            .collect();
        files.sort();
        assert_eq!(
            files,
            vec![
                "/5.txt",
                "/a/1.txt",
                "/a/2.csv",
                "/a/deep/3.json",
                "/b/4.txt"
            ]
        );
        // Every group id unique across directories.
        let mut gids: Vec<_> = dirs
            .iter()
            .flat_map(|d| d.groups.iter().map(|g| g.id))
            .collect();
        gids.sort();
        gids.dedup();
        assert_eq!(gids.len(), 5);
    }

    #[test]
    fn worker_counts_agree() {
        let backend = fs_with(&["/x/a.txt", "/x/b.txt", "/y/c.txt", "/y/z/d.txt", "/w/e.txt"]);
        let single: usize = crawl_all(&backend, 1, GroupingStrategy::SingleFile)
            .iter()
            .map(|d| d.files.len())
            .sum();
        let many: usize = crawl_all(&backend, 8, GroupingStrategy::SingleFile)
            .iter()
            .map(|d| d.files.len())
            .sum();
        assert_eq!(single, 5);
        assert_eq!(many, 5);
    }

    #[test]
    fn metrics_match_reality() {
        let backend = fs_with(&["/d/a.txt", "/d/b.txt", "/e/c.txt"]);
        let crawler = Crawler::new(CrawlerConfig {
            workers: 2,
            grouping: GroupingStrategy::Directory,
        });
        let (tx, rx) = unbounded();
        crawler
            .crawl(EndpointId::new(0), &backend, &["/".to_string()], tx)
            .unwrap();
        drop(rx);
        let snap = crawler.metrics().snapshot();
        assert_eq!(snap.directories, 3); // "/", "/d", "/e"
        assert_eq!(snap.files, 3);
        assert_eq!(snap.bytes, 3);
        assert_eq!(snap.groups, 2); // one per non-empty directory
        assert_eq!(snap.list_ops, 3); // MemFs never paginates
    }

    #[test]
    fn obs_backed_crawl_reports_into_hub_and_journal() {
        let backend = fs_with(&["/d/a.txt", "/d/b.txt", "/e/c.txt"]);
        let obs = xtract_obs::Obs::new();
        let crawler = Crawler::with_obs(
            CrawlerConfig {
                workers: 2,
                grouping: GroupingStrategy::Directory,
            },
            obs.clone(),
        );
        let (tx, rx) = unbounded();
        crawler
            .crawl(EndpointId::new(0), &backend, &["/".to_string()], tx)
            .unwrap();
        drop(rx);
        assert_eq!(obs.hub.counter_value("crawl.files", None), 3);
        assert_eq!(obs.hub.counter_value("crawl.directories", None), 3);
        let progressed = obs.journal.events().iter().any(|r| {
            matches!(
                r.event,
                xtract_obs::Event::CrawlProgress { endpoint, .. }
                    if endpoint == EndpointId::new(0)
            )
        });
        assert!(progressed, "no CrawlProgress event journaled");
    }

    #[test]
    fn progress_strides_are_never_skipped_under_concurrency() {
        // Regression: the stride decision used to re-read the shared
        // directory counter after record_dir, so two racing workers could
        // both observe a post-crossing value and the crossing journaled
        // nothing. Deriving it from record_dir's own return makes the
        // event count exact: 301 directories (root + 300) cross the
        // stride at 1, 129, and 257.
        let paths: Vec<String> = (0..300).map(|i| format!("/d{i}/f.txt")).collect();
        let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
        let backend = fs_with(&refs);
        for _ in 0..20 {
            let obs = xtract_obs::Obs::new();
            let crawler = Crawler::with_obs(
                CrawlerConfig {
                    workers: 8,
                    grouping: GroupingStrategy::SingleFile,
                },
                obs.clone(),
            );
            let (tx, rx) = unbounded();
            crawler
                .crawl(EndpointId::new(0), &backend, &["/".to_string()], tx)
                .unwrap();
            drop(rx);
            let progress_events = obs
                .journal
                .events()
                .iter()
                .filter(|r| matches!(r.event, xtract_obs::Event::CrawlProgress { .. }))
                .count();
            assert_eq!(progress_events, 3, "a stride crossing was missed");
        }
    }

    #[test]
    fn labeled_crawlers_keep_per_endpoint_rates_apart() {
        let backend_a = fs_with(&["/a/1.txt", "/a/2.txt"]);
        let backend_b = fs_with(&["/b/3.txt"]);
        let obs = xtract_obs::Obs::new();
        for (ep, backend) in [(0u64, &backend_a), (1u64, &backend_b)] {
            let ep = EndpointId::new(ep);
            let label = ep.to_string();
            let crawler = Crawler::with_obs_labeled(
                CrawlerConfig {
                    workers: 2,
                    grouping: GroupingStrategy::SingleFile,
                },
                obs.clone(),
                Some(&label),
            );
            let (tx, rx) = unbounded();
            crawler.crawl(ep, backend, &["/".to_string()], tx).unwrap();
            drop(rx);
        }
        let a = EndpointId::new(0).to_string();
        let b = EndpointId::new(1).to_string();
        assert_eq!(obs.hub.counter_value("crawl.files", Some(&a)), 2);
        assert_eq!(obs.hub.counter_value("crawl.files", Some(&b)), 1);
        assert_eq!(obs.hub.counter_value("crawl.files", None), 0);
        assert_eq!(obs.hub.snapshot().counter_sum("crawl.files"), 3);
    }

    #[test]
    fn file_types_are_sniffed_at_crawl_time() {
        let backend = fs_with(&["/r/INCAR", "/r/obs.csv"]);
        let dirs = crawl_all(&backend, 2, GroupingStrategy::SingleFile);
        let all: Vec<&FileRecord> = dirs.iter().flat_map(|d| d.files.iter()).collect();
        let incar = all.iter().find(|f| f.path == "/r/INCAR").unwrap();
        assert!(incar.hint.is_materials());
        let csv = all.iter().find(|f| f.path == "/r/obs.csv").unwrap();
        assert_eq!(csv.hint, xtract_types::FileType::Tabular);
    }

    #[test]
    fn missing_root_is_a_hard_error() {
        let backend = fs_with(&["/real/a.txt"]);
        let crawler = Crawler::new(CrawlerConfig::default());
        let (tx, _rx) = unbounded();
        // A root that is a *file* (wrong kind) is a hard error...
        let err = crawler.crawl(
            EndpointId::new(0),
            &backend,
            &["/real/a.txt".to_string()],
            tx,
        );
        assert!(matches!(err, Err(XtractError::WrongKind { .. })));
    }

    #[test]
    fn drain_race_stress() {
        // Regression test for a missed-wakeup deadlock at crawl drain:
        // `finish`'s notify used to fire without the queue lock, so a
        // worker could read `outstanding == 1`, lose the race to the
        // decrement, and park forever. Many short many-worker crawls make
        // the window reachable; with the fix this completes instantly.
        let backend = fs_with(&["/a/x.txt", "/b/y.txt", "/z.txt"]);
        for round in 0..300 {
            let crawler = Crawler::new(CrawlerConfig {
                workers: 16,
                grouping: GroupingStrategy::SingleFile,
            });
            let (tx, rx) = unbounded();
            crawler
                .crawl(EndpointId::new(0), &backend, &["/".to_string()], tx)
                .unwrap();
            let files: usize = rx.into_iter().map(|d| d.files.len()).sum();
            assert_eq!(files, 3, "round {round}");
        }
    }

    #[test]
    fn crawl_scales_to_generated_repositories() {
        let fs: Arc<dyn StorageBackend> = Arc::new(MemFs::new(EndpointId::new(0)));
        let stats = xtract_workloads::mdf::generate_tree(
            fs.as_ref(),
            2_000,
            &xtract_sim::RngStreams::new(4),
        );
        let dirs = crawl_all(&fs, 8, GroupingStrategy::MaterialsAware);
        let found: usize = dirs.iter().map(|d| d.files.len()).sum();
        assert_eq!(found as u64, stats.files);
        // Materials-aware grouping must produce VASP groups with the
        // dataset README attached (overlap).
        let has_overlap = dirs.iter().any(|d| {
            let counts: std::collections::HashMap<&str, usize> = d
                .groups
                .iter()
                .flat_map(|g| g.files.iter())
                .fold(std::collections::HashMap::new(), |mut m, p| {
                    *m.entry(p.as_str()).or_insert(0) += 1;
                    m
                });
            counts.values().any(|&c| c > 1)
        });
        assert!(has_overlap, "materials-aware grouping produced no overlap");
    }
}
