//! # xtract-crawler
//!
//! The elastic parallel crawler (§3 "Crawling", §4.1 "The crawler").
//!
//! "The crawler service deploys a pool of crawl worker threads and a
//! shared work queue for each metadata extraction job ... Worker threads
//! retrieve a path from the queue, perform a list operation on it, apply
//! the grouping function to discovered files, and add newly-discovered
//! directories to the work queue."
//!
//! Three pieces:
//!
//! * [`grouping`] — the crawl-time grouping functions (§3: from
//!   "single file group" to whole directories, including the
//!   materials-aware function that creates the *overlapping* groups
//!   min-transfers exists for);
//! * [`crawl`] — the multi-threaded breadth-first crawler over any
//!   [`xtract_datafabric::StorageBackend`], streaming
//!   [`crawl::CrawledDirectory`] records to a consumer as they are
//!   produced ("le groups are returned asynchronously", §5.8.1);
//! * [`metrics`] — counters the Fig. 4 experiment reads, optionally
//!   interned in an [`xtract_obs::MetricsHub`].

#![cfg_attr(not(test), warn(clippy::print_stdout, clippy::print_stderr))]

pub mod crawl;
pub mod grouping;
pub mod metrics;

pub use crawl::{CrawledDirectory, Crawler, CrawlerConfig};
pub use grouping::group_directory;
pub use metrics::{CrawlMetrics, CrawlSnapshot};
