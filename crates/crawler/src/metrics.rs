//! Crawl metrics — the counters behind Fig. 4 and the §5.8.1 crawl-rate
//! claims.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe crawl counters.
#[derive(Debug, Default)]
pub struct CrawlMetrics {
    /// Directories listed.
    pub directories: AtomicU64,
    /// Files discovered.
    pub files: AtomicU64,
    /// Bytes represented by discovered files.
    pub bytes: AtomicU64,
    /// Groups emitted by the grouping function.
    pub groups: AtomicU64,
    /// List operations issued (≥ directories when stores paginate).
    pub list_ops: AtomicU64,
}

impl CrawlMetrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot as plain numbers `(directories, files, bytes, groups)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.directories.load(Ordering::Relaxed),
            self.files.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed),
            self.groups.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn record_dir(&self, files: u64, bytes: u64, groups: u64) {
        self.directories.fetch_add(1, Ordering::Relaxed);
        self.files.fetch_add(files, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.groups.fetch_add(groups, Ordering::Relaxed);
        self.list_ops.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let m = CrawlMetrics::new();
        m.record_dir(10, 1000, 3);
        m.record_dir(5, 500, 2);
        assert_eq!(m.snapshot(), (2, 15, 1500, 5));
        assert_eq!(m.list_ops.load(Ordering::Relaxed), 2);
    }
}
