//! Crawl metrics — the counters behind Fig. 4 and the §5.8.1 crawl-rate
//! claims.
//!
//! Counters are [`xtract_obs::Counter`] handles, so a crawler created with
//! an [`xtract_obs::MetricsHub`] shares its numbers with every other
//! substrate reporting into the same hub (named `crawl.*`), while a
//! standalone crawler still gets free private counters.

use serde::{Deserialize, Serialize};
use xtract_obs::{Counter, MetricsHub};

/// Shared, thread-safe crawl counters.
#[derive(Debug, Default, Clone)]
pub struct CrawlMetrics {
    /// Directories listed.
    pub directories: Counter,
    /// Files discovered.
    pub files: Counter,
    /// Bytes represented by discovered files.
    pub bytes: Counter,
    /// Groups emitted by the grouping function.
    pub groups: Counter,
    /// List operations issued (≥ directories when stores paginate).
    pub list_ops: Counter,
}

/// A point-in-time copy of every crawl counter.
///
/// Named fields replace the old positional tuple: the tuple silently
/// dropped `list_ops`, hiding pagination overhead from every caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CrawlSnapshot {
    /// Directories listed.
    pub directories: u64,
    /// Files discovered.
    pub files: u64,
    /// Bytes represented by discovered files.
    pub bytes: u64,
    /// Groups emitted by the grouping function.
    pub groups: u64,
    /// List operations issued (≥ directories when stores paginate).
    pub list_ops: u64,
}

impl CrawlMetrics {
    /// Fresh private counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters interned in `hub` under the `crawl.*` names, so the hub's
    /// snapshot and the crawler's view are the same numbers.
    pub fn in_hub(hub: &MetricsHub) -> Self {
        Self::in_hub_labeled(hub, None)
    }

    /// Like [`CrawlMetrics::in_hub`], but each `crawl.*` counter carries
    /// `label` (normally an endpoint's display form). The orchestrator
    /// labels per endpoint so the hub snapshot can recover per-endpoint
    /// crawl rates (Fig. 4, §5.8.1); sum across labels (e.g.
    /// [`xtract_obs::MetricsSnapshot::counter_sum`]) for the
    /// federation-wide aggregate.
    pub fn in_hub_labeled(hub: &MetricsHub, label: Option<&str>) -> Self {
        Self {
            directories: hub.counter_with("crawl.directories", label),
            files: hub.counter_with("crawl.files", label),
            bytes: hub.counter_with("crawl.bytes", label),
            groups: hub.counter_with("crawl.groups", label),
            list_ops: hub.counter_with("crawl.list_ops", label),
        }
    }

    /// A copy of every counter, including `list_ops`.
    pub fn snapshot(&self) -> CrawlSnapshot {
        CrawlSnapshot {
            directories: self.directories.get(),
            files: self.files.get(),
            bytes: self.bytes.get(),
            groups: self.groups.get(),
            list_ops: self.list_ops.get(),
        }
    }

    /// Records one listed directory and returns the post-increment
    /// directory count. The return value is this call's own crossing —
    /// concurrent workers each see a distinct count, so stride-based
    /// progress reporting derived from it never skips a crossing (a
    /// re-read of the shared counter can).
    pub(crate) fn record_dir(&self, files: u64, bytes: u64, groups: u64) -> u64 {
        let dirs = self.directories.add_fetch(1);
        self.files.add(files);
        self.bytes.add(bytes);
        self.groups.add(groups);
        self.list_ops.incr();
        dirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let m = CrawlMetrics::new();
        m.record_dir(10, 1000, 3);
        m.record_dir(5, 500, 2);
        assert_eq!(
            m.snapshot(),
            CrawlSnapshot {
                directories: 2,
                files: 15,
                bytes: 1500,
                groups: 5,
                list_ops: 2,
            }
        );
    }

    #[test]
    fn snapshot_reports_list_ops() {
        // Regression: the old tuple snapshot dropped list_ops entirely.
        let m = CrawlMetrics::new();
        m.record_dir(1, 1, 1);
        // A paginated store issues extra list calls beyond one per dir.
        m.list_ops.add(3);
        let snap = m.snapshot();
        assert_eq!(snap.directories, 1);
        assert_eq!(snap.list_ops, 4);
    }

    #[test]
    fn hub_backed_metrics_share_the_hub_numbers() {
        let hub = MetricsHub::new();
        let m = CrawlMetrics::in_hub(&hub);
        m.record_dir(7, 700, 2);
        assert_eq!(hub.counter_value("crawl.files", None), 7);
        assert_eq!(hub.counter_value("crawl.list_ops", None), 1);
        assert_eq!(m.snapshot().bytes, 700);
    }

    #[test]
    fn record_dir_returns_each_crossing_once() {
        let m = CrawlMetrics::new();
        assert_eq!(m.record_dir(1, 1, 1), 1);
        assert_eq!(m.record_dir(1, 1, 1), 2);
        // Clones share cells, so the count keeps advancing.
        assert_eq!(m.clone().record_dir(0, 0, 0), 3);
    }

    #[test]
    fn labeled_metrics_keep_endpoints_separate() {
        let hub = MetricsHub::new();
        let a = CrawlMetrics::in_hub_labeled(&hub, Some("ep-0"));
        let b = CrawlMetrics::in_hub_labeled(&hub, Some("ep-1"));
        a.record_dir(2, 20, 1);
        b.record_dir(3, 30, 1);
        assert_eq!(hub.counter_value("crawl.files", Some("ep-0")), 2);
        assert_eq!(hub.counter_value("crawl.files", Some("ep-1")), 3);
        // The federation-wide aggregate is the sum across labels.
        assert_eq!(hub.snapshot().counter_sum("crawl.files"), 5);
    }
}
