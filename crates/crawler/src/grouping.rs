//! Crawl-time grouping functions.
//!
//! §4.1: "grouping functions consider only metadata available from the
//! crawler (e.g., filenames, extensions, paths, size)" — no bytes are
//! read. A grouping function maps one directory's files to a set of
//! groups; group membership is non-exclusive (§2.1), which is what makes
//! min-transfers (§4.3.1) worthwhile.

use xtract_types::id::IdAllocator;
use xtract_types::{FileRecord, Group, GroupId, GroupingStrategy};

/// VASP-style run members that belong to one atomistic-simulation group.
fn is_vasp_member(f: &FileRecord) -> bool {
    f.hint.is_materials()
}

/// Descriptive files that contextualize *every* group in their directory
/// (READMEs, metadata sidecars, manifest spreadsheets) — the §2.1 example
/// of a file in more than one group.
fn is_descriptive(f: &FileRecord) -> bool {
    let name = f.name().to_ascii_lowercase();
    name.starts_with("readme")
        || name == "metadata.json"
        || name == "manifest.csv"
        || name.ends_with(".md")
}

/// Applies the grouping function to one directory's files, minting group
/// ids from `ids`.
pub fn group_directory(
    strategy: GroupingStrategy,
    files: &[FileRecord],
    ids: &IdAllocator,
) -> Vec<Group> {
    match strategy {
        GroupingStrategy::SingleFile => files
            .iter()
            .map(|f| Group::new(GroupId::new(ids.next()), vec![f.path.clone()]))
            .collect(),
        GroupingStrategy::Directory => {
            if files.is_empty() {
                Vec::new()
            } else {
                vec![Group::new(
                    GroupId::new(ids.next()),
                    files.iter().map(|f| f.path.clone()).collect(),
                )]
            }
        }
        GroupingStrategy::Extension => {
            let mut by_ext: std::collections::BTreeMap<String, Vec<String>> = Default::default();
            for f in files {
                by_ext
                    .entry(f.extension().unwrap_or_else(|| "<none>".to_string()))
                    .or_default()
                    .push(f.path.clone());
            }
            by_ext
                .into_values()
                .map(|paths| Group::new(GroupId::new(ids.next()), paths))
                .collect()
        }
        GroupingStrategy::MaterialsAware => materials_aware(files, ids),
    }
}

/// The materials-aware grouping function (§4.2): VASP members form one
/// run-group; remaining files group by extension; descriptive files join
/// **every** group in the directory, creating the overlaps min-transfers
/// later collapses.
fn materials_aware(files: &[FileRecord], ids: &IdAllocator) -> Vec<Group> {
    let mut vasp: Vec<String> = Vec::new();
    let mut descriptive: Vec<String> = Vec::new();
    let mut by_ext: std::collections::BTreeMap<String, Vec<String>> = Default::default();
    for f in files {
        if is_vasp_member(f) {
            vasp.push(f.path.clone());
        } else if is_descriptive(f) {
            descriptive.push(f.path.clone());
        } else {
            by_ext
                .entry(f.extension().unwrap_or_else(|| "<none>".to_string()))
                .or_default()
                .push(f.path.clone());
        }
    }
    let mut groups: Vec<Group> = Vec::new();
    if !vasp.is_empty() {
        groups.push(Group::new(GroupId::new(ids.next()), vasp));
    }
    for paths in by_ext.into_values() {
        groups.push(Group::new(GroupId::new(ids.next()), paths));
    }
    if groups.is_empty() {
        if !descriptive.is_empty() {
            groups.push(Group::new(GroupId::new(ids.next()), descriptive));
        }
        return groups;
    }
    for g in &mut groups {
        g.files.extend(descriptive.iter().cloned());
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtract_types::{sniff_path, EndpointId};

    fn rec(path: &str) -> FileRecord {
        FileRecord::new(path, 10, EndpointId::new(0), sniff_path(path))
    }

    fn files(paths: &[&str]) -> Vec<FileRecord> {
        paths.iter().map(|p| rec(p)).collect()
    }

    #[test]
    fn single_file_grouping() {
        let ids = IdAllocator::new();
        let groups = group_directory(
            GroupingStrategy::SingleFile,
            &files(&["/d/a.txt", "/d/b.csv"]),
            &ids,
        );
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn directory_grouping() {
        let ids = IdAllocator::new();
        let groups = group_directory(
            GroupingStrategy::Directory,
            &files(&["/d/a.txt", "/d/b.csv"]),
            &ids,
        );
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
        assert!(group_directory(GroupingStrategy::Directory, &[], &ids).is_empty());
    }

    #[test]
    fn extension_grouping() {
        let ids = IdAllocator::new();
        let groups = group_directory(
            GroupingStrategy::Extension,
            &files(&["/d/a.csv", "/d/b.csv", "/d/c.txt", "/d/noext"]),
            &ids,
        );
        assert_eq!(groups.len(), 3); // csv, txt, <none>
        let csv = groups.iter().find(|g| g.len() == 2).unwrap();
        assert!(csv.files.iter().all(|p| p.ends_with(".csv")));
    }

    #[test]
    fn materials_aware_creates_overlap() {
        let ids = IdAllocator::new();
        let groups = group_directory(
            GroupingStrategy::MaterialsAware,
            &files(&[
                "/d/INCAR",
                "/d/POSCAR",
                "/d/OUTCAR",
                "/d/plot.png",
                "/d/data.csv",
                "/d/README.md",
            ]),
            &ids,
        );
        // VASP group + png group + csv group, each containing the README.
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert!(
                g.files.contains(&"/d/README.md".to_string()),
                "README missing from {:?}",
                g.files
            );
        }
        let total_memberships: usize = groups.iter().map(Group::len).sum();
        // 6 files but 8 memberships: README counted 3×.
        assert_eq!(total_memberships, 5 + 3);
    }

    #[test]
    fn descriptive_only_directory_forms_one_group() {
        let ids = IdAllocator::new();
        let groups = group_directory(
            GroupingStrategy::MaterialsAware,
            &files(&["/d/README.md", "/d/notes.md"]),
            &ids,
        );
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn group_ids_are_unique_across_calls() {
        let ids = IdAllocator::new();
        let a = group_directory(GroupingStrategy::SingleFile, &files(&["/x/1.txt"]), &ids);
        let b = group_directory(GroupingStrategy::SingleFile, &files(&["/y/2.txt"]), &ids);
        assert_ne!(a[0].id, b[0].id);
    }
}
