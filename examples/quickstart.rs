//! Quickstart: extract metadata from a small mixed-type repository on a
//! single endpoint, end to end, in-memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use xtract::prelude::*;
use xtract_core::XtractService;
use xtract_datafabric::{AuthService, DataFabric, MemFs, Scope};
use xtract_sim::RngStreams;
use xtract_types::config::ContainerRuntime;

fn main() {
    // 1. A storage endpoint with a freshly synthesized scientific
    //    repository: prose, CSV tables, JSON/YAML/XML, VASP runs, images,
    //    HDF-like containers — all real, parseable bytes.
    let fabric = Arc::new(DataFabric::new());
    let endpoint = EndpointId::new(0);
    let fs = Arc::new(MemFs::new(endpoint));
    let (_, stats) = xtract_workloads::materialize::sample_repo(
        fs.as_ref(),
        "/science",
        60,
        &RngStreams::new(2026),
    );
    fabric.register(endpoint, "midway", fs);
    println!(
        "repository: {} files, {} groups, {:.1} KB",
        stats.files,
        stats.groups,
        stats.bytes as f64 / 1e3
    );

    // 2. Authenticate (Globus-Auth style) and stand up the service.
    let auth = Arc::new(AuthService::new());
    let token = auth.login(
        "you@university.edu",
        &[
            Scope::Crawl,
            Scope::Extract,
            Scope::Transfer,
            Scope::Validate,
        ],
    );
    let service = XtractService::new(fabric, auth, 7);

    // 3. Describe the job: one endpoint with both a data layer and a
    //    4-worker compute layer; materials-aware grouping; MDF-schema
    //    validation.
    let mut job = JobSpec::single_endpoint(
        EndpointSpec {
            endpoint,
            read_path: "/science".into(),
            store_path: Some("/stage".into()),
            available_bytes: 32 << 30,
            workers: Some(4),
            runtime: ContainerRuntime::Docker,
        },
        "/science",
    );
    job.grouping = GroupingStrategy::MaterialsAware;
    job.validation = ValidationSchema::Mdf("mdf-generic".into());
    service
        .connect_endpoint(&job.endpoints[0])
        .expect("endpoint connects");

    // 4. Run it.
    let report = service.run_job(token, &job).expect("job succeeds");
    println!(
        "crawled {} files -> {} groups -> {} families -> {} records ({} waves)",
        report.crawled_files,
        report.groups,
        report.families,
        report.records.len(),
        report.waves
    );
    println!("extractor invocations: {:?}", {
        let mut v: Vec<_> = report.invocations.iter().collect();
        v.sort();
        v
    });

    // 5. Peek at one record: a complete VASP run synthesized from its
    //    INCAR + POSCAR + OUTCAR group.
    let vasp = report
        .records
        .iter()
        .find(|r| {
            r.document
                .get("extracted")
                .and_then(|e| e.get("matio"))
                .and_then(|m| m.get("complete_vasp_run"))
                == Some(&serde_json::json!(true))
        })
        .expect("a VASP record exists");
    let matio = &vasp.document.get("extracted").unwrap()["matio"];
    println!(
        "example record {}: formula={} energy={} eV converged={}",
        vasp.family, matio["formula"], matio["final_energy_ev"], matio["converged"],
    );
}
