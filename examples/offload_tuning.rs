//! Offload-percentage tuning (§4.3.3, Table 2): sweep the RAND policy
//! from 0 % to 40 % and watch the queueing-vs-saturation equilibrium the
//! paper finds at 10 %.
//!
//! ```text
//! cargo run --release --example offload_tuning
//! ```

use xtract_core::campaign::{Campaign, CampaignConfig, PrefetchPlan};
use xtract_sim::{sites, RngStreams};
use xtract_tika::TIKA_SLOWDOWN;
use xtract_workloads::cdiac;

/// Runs the two-site split: `pct`% of 100 k files offloaded from a
/// 56-worker Midway endpoint to a 10-worker Jetstream endpoint, Table 2
/// style. Returns (transfer seconds, completion seconds).
fn run_split(pct: f64, slowdown: f64) -> (f64, f64) {
    let streams = RngStreams::new(17);
    let profiles: Vec<_> = cdiac::profiles(100_000, &streams).collect();
    let n_off = (profiles.len() as f64 * pct / 100.0) as usize;
    let (offloaded, local) = profiles.split_at(n_off);

    // Local work on Midway (56 workers).
    let local_cfg = CampaignConfig::new(sites::midway(), 56, 18);
    let local_report = Campaign::new(local_cfg, local.to_vec()).run();

    // Offloaded work: transfer Midway→Jetstream, then 10 workers.
    let mut transfer_finish = 0.0f64;
    let mut off_makespan = 0.0f64;
    if !offloaded.is_empty() {
        let mut off_cfg = CampaignConfig::new(sites::jetstream(), 10, 19);
        off_cfg.prefetch = Some(PrefetchPlan {
            link: sites::link("midway", "jetstream"),
            slots: 10,
            families_per_job: 512,
        });
        let off_report = Campaign::new(off_cfg, offloaded.to_vec()).run();
        transfer_finish = off_report.transfer_finish;
        off_makespan = off_report.makespan;
    }
    let completion = local_report.makespan.max(off_makespan) * slowdown;
    (transfer_finish, completion)
}

fn main() {
    println!("RAND offloading sweep: 100k files, Midway(56 workers) -> Jetstream(10 workers)");
    println!("(Table 2 reports: Xtract 1696/1560/1662 s at 0/10/20 %; Tika 2032/1868/1935 s)\n");
    println!("  system   offload%   transfer(s)   completion(s)");
    for system in ["xtract", "tika"] {
        let slowdown = if system == "tika" { TIKA_SLOWDOWN } else { 1.0 };
        for pct in [0.0, 5.0, 10.0, 20.0, 30.0, 40.0] {
            let (xfer, total) = run_split(pct, slowdown);
            println!("  {system:<7}  {pct:>7.0}   {xfer:>11.0}   {total:>13.0}");
        }
        println!();
    }
    println!("the equilibrium: too little offload leaves Midway queued; too much saturates");
    println!("Jetstream's 10 workers and pays transfer for nothing (§5.6).");
}
