//! The full-MDF campaign (§5.8.1 / Fig. 8), simulated: 2.5 M file groups
//! extracted on 4 096 Theta workers under six-hour allocations with
//! checkpoint/restart.
//!
//! ```text
//! cargo run --release --example mdf_campaign           # full 2.5M groups
//! cargo run --release --example mdf_campaign -- 200000 # reduced scale
//! ```

use xtract_core::campaign::{Campaign, CampaignConfig};
use xtract_core::crawlmodel::CrawlModel;
use xtract_sim::{sites, RngStreams};
use xtract_workloads::mdf;

fn main() {
    let groups: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_500_000);
    println!("simulating full-MDF campaign over {groups} groups on Theta (4096 workers)");

    let streams = RngStreams::new(588);
    let profiles: Vec<_> = mdf::profiles(groups, &streams).collect();

    // Crawl shape scaled to the group count (full MDF: 2.5 M groups from
    // ~33.5 k directories, §5.8.1's 26.3-minute 16-crawler crawl).
    let dirs = (groups as f64 * 33_500.0 / 2_500_000.0) as u64;
    let crawl = CrawlModel::from_stats(dirs.max(1), groups, groups);

    let mut cfg = CampaignConfig::new(sites::theta(), 4096, 42);
    cfg.crawl = Some((crawl, 16));
    cfg.checkpoint = true; // the §5.8.1 checkpoint flag
    let report = Campaign::new(cfg, profiles).run();

    println!(
        "crawl finished at {:.1} min (paper: 26.3 min at full scale)",
        report.crawl_finish / 60.0
    );
    println!(
        "extraction walltime {:.2} h (paper: 6.4 h), {:.0} core-hours (paper: 26 200)",
        report.makespan / 3600.0,
        report.core_hours()
    );
    println!(
        "restarts: {} | families lost & resubmitted: {} | funcX requests: {}",
        report.restarts, report.lost_families, report.ws_requests
    );

    // Fig. 8 top: throughput + cumulative over time.
    println!("\n  time(s)   groups/s   cumulative");
    let timeline = report.completion_timeline(600.0);
    let mut cumulative = 0u64;
    for (t, n) in &timeline {
        cumulative += n;
        println!("  {t:>7.0}   {:>8.1}   {cumulative:>10}", *n as f64 / 600.0);
    }

    // Fig. 8 bottom: longest-running families by class.
    let mut by_class: std::collections::BTreeMap<&str, (u64, f64)> = Default::default();
    for o in &report.outcomes {
        let e = by_class.entry(o.class).or_insert((0, 0.0));
        e.0 += 1;
        e.1 = e.1.max(o.service);
    }
    println!("\n  class   families   longest-family(s)");
    for (class, (n, longest)) in by_class {
        println!("  {class:<6}  {n:>8}   {longest:>12.0}");
    }
}
