//! The Google Drive case study (§5.8.2, Table 3), live: a Drive-like
//! store with no compute layer, extraction on River-style workers, bytes
//! moved per family.
//!
//! ```text
//! cargo run --release --example gdrive_audit
//! ```
//!
//! Runs at 1/10 of the paper's census by default (live mode parses real
//! bytes); pass a scale factor to change it.

use std::sync::Arc;
use xtract::prelude::*;
use xtract_core::XtractService;
use xtract_datafabric::{AuthService, DataFabric, DriveStore, MemFs, Scope};
use xtract_sim::RngStreams;
use xtract_types::config::ContainerRuntime;
use xtract_workloads::gdrive;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.1);
    let census = gdrive::PAPER_CENSUS.scaled(scale);
    println!(
        "auditing a Drive of {} files (scale {scale} of the paper's 4443)",
        census.total()
    );

    // The Drive endpoint: data layer only — "compute is not available on
    // Google Drive" (§5.8.2).
    let fabric = Arc::new(DataFabric::new());
    let drive_ep = EndpointId::new(0);
    let river_ep = EndpointId::new(1);
    let drive = Arc::new(DriveStore::new(drive_ep));
    // Live mode needs real bytes: materialize a matching mixed repository
    // inside the Drive tree shape.
    let files_needed = census.total().min(600);
    xtract_workloads::materialize::sample_repo(
        drive.as_ref(),
        "/drive",
        files_needed,
        &RngStreams::new(31),
    );
    fabric.register(drive_ep, "gdrive", drive.clone());
    fabric.register(river_ep, "river", Arc::new(MemFs::new(river_ep)));

    let auth = Arc::new(AuthService::new());
    let token = auth.login(
        "grad-student@uchicago.edu",
        &[
            Scope::Crawl,
            Scope::Extract,
            Scope::Transfer,
            Scope::Validate,
        ],
    );
    let service = XtractService::new(fabric.clone(), auth, 3);

    // 30 Kubernetes pods on River (§5.8.2).
    let mut job = JobSpec::single_endpoint(
        EndpointSpec {
            endpoint: river_ep,
            read_path: "/".into(),
            store_path: Some("/pod-scratch".into()),
            available_bytes: 64 << 30,
            workers: Some(30),
            runtime: ContainerRuntime::Docker,
        },
        "/drive",
    );
    job.roots = vec![(drive_ep, "/drive".to_string())];
    job.endpoints.push(EndpointSpec {
        endpoint: drive_ep,
        read_path: "/drive".into(),
        store_path: None, // no compute, no staging at the Drive
        available_bytes: 0,
        workers: None,
        runtime: ContainerRuntime::Docker,
    });
    job.delete_after_extraction = true; // pods do not keep copies
    service
        .connect_endpoint(&job.endpoints[0])
        .expect("river connects");

    let report = service.run_job(token, &job).expect("audit succeeds");

    println!(
        "\ncrawled {} files ({} Drive API pages) -> {} records, {} failures",
        report.crawled_files,
        drive.pages_served(),
        report.records.len(),
        report.failures.len()
    );
    println!(
        "bytes pulled from the Drive: {:.1} MB across {} extraction waves",
        report.bytes_prefetched as f64 / 1e6,
        report.waves
    );
    println!("\nTable-3-style invocation census:");
    println!("  extractor         invocations");
    let mut rows: Vec<_> = report.invocations.iter().collect();
    rows.sort();
    for (name, count) in rows {
        println!("  {name:<16}  {count:>10}");
    }
    let total: u64 = report.invocations.values().sum();
    println!(
        "  total             {total:>10}  (> {} files: multi-extractor plans, §5.8.2)",
        report.crawled_files
    );
}
