//! The payoff: extract a repository, ingest the validated records into
//! the search index, and answer the paper's §1 motivating question —
//! make poorly-organized files *findable*.
//!
//! ```text
//! cargo run --release --example search_index
//! ```

use serde_json::json;
use std::sync::Arc;
use xtract::prelude::*;
use xtract_core::XtractService;
use xtract_datafabric::{AuthService, DataFabric, MemFs, Scope};
use xtract_index::{Filter, Query, SearchIndex};
use xtract_sim::RngStreams;
use xtract_types::config::ContainerRuntime;

fn main() {
    // Extract a repository end to end.
    let fabric = Arc::new(DataFabric::new());
    let ep = EndpointId::new(0);
    let fs = Arc::new(MemFs::new(ep));
    let (_, stats) = xtract_workloads::materialize::sample_repo(
        fs.as_ref(),
        "/lab-share",
        150,
        &RngStreams::new(777),
    );
    fabric.register(ep, "midway", fs);
    let auth = Arc::new(AuthService::new());
    let token = auth.login(
        "librarian",
        &[
            Scope::Crawl,
            Scope::Extract,
            Scope::Transfer,
            Scope::Validate,
        ],
    );
    let service = XtractService::new(fabric, auth, 5);
    let mut job = JobSpec::single_endpoint(
        EndpointSpec {
            endpoint: ep,
            read_path: "/lab-share".into(),
            store_path: Some("/stage".into()),
            available_bytes: 1 << 32,
            workers: Some(8),
            runtime: ContainerRuntime::Docker,
        },
        "/lab-share",
    );
    job.grouping = GroupingStrategy::MaterialsAware;
    service.connect_endpoint(&job.endpoints[0]).unwrap();
    let report = service.run_job(token, &job).expect("extraction succeeds");
    println!(
        "extracted {} files into {} records; ingesting into the search index...",
        stats.files,
        report.records.len()
    );

    // Ingest.
    let index = SearchIndex::new();
    index.ingest_all(report.records);
    let s = index.stats();
    println!(
        "index: {} documents, {} terms, {} postings\n",
        s.documents, s.terms, s.postings
    );

    // Query 1: free text — "who has perovskite data?"
    let hits = index.search(&Query::terms(&["perovskite"]));
    println!(
        "q1 'perovskite' -> {} hits; top: {:?}",
        hits.len(),
        hits.first()
            .map(|h| (h.family, (h.score * 1000.0).round() / 1000.0))
    );

    // Query 2: field filter — converged VASP runs only.
    let q = Query {
        terms: vec![],
        filters: vec![Filter::eq("matio.converged", json!(true))],
        require_all_terms: false,
        limit: 50,
    };
    let converged = index.search(&q);
    println!("q2 converged VASP runs -> {} hits", converged.len());
    if let Some(hit) = converged.first() {
        let rec = index.get(hit.family).unwrap();
        println!(
            "   e.g. {}: formula={} energy={} eV",
            hit.family,
            rec.document.get("matio").unwrap()["formula"],
            rec.document.get("matio").unwrap()["final_energy_ev"],
        );
    }

    // Query 3: numeric range — big tables.
    let q = Query {
        terms: vec![],
        filters: vec![Filter::gt("tabular.total_rows", 50.0)],
        require_all_terms: false,
        limit: 50,
    };
    println!("q3 tables with >50 rows -> {} hits", index.search(&q).len());

    // Facet-style census by extractor provenance.
    println!("q4 records by extractor facet:");
    for name in [
        "keyword",
        "tabular",
        "matio",
        "images",
        "hierarchical",
        "semi-structured",
    ] {
        let q = Query {
            terms: vec![],
            filters: vec![Filter::exists(name)],
            require_all_terms: false,
            limit: usize::MAX,
        };
        println!("   {name:<16} {:>4} records", index.search(&q).len());
    }
}
